"""Exact LRU cache simulation over precomputed id sequences.

The one part of a trace replay that numpy cannot express directly is
the cache state: whether access *i* hits depends on every access before
it.  What *can* be hoisted out of the sequential core is everything
else — which accesses reach the structure at all, which line each one
maps to, and (the big one) *run compression*: consecutive accesses to
the same line always hit and leave the LRU order unchanged, so only run
boundaries need simulating.  The paper's traces are exactly the
high-locality kind where this collapses tens of thousands of accesses
into a few hundred boundary decisions (the CTC's whole premise,
Section 4.3).

The boundary loop itself is a plain dict used as an ordered LRU list
(Python dicts preserve insertion order: re-inserting moves a key to the
MRU end, ``next(iter(...))`` is the LRU victim) — O(1) per boundary,
against the O(ways) victim scan of the reference
:class:`repro.mem.cache.SetAssociativeCache` model.

Semantics replicated exactly, validated by the equivalence harness:

* hit ⇔ resident; a miss fills the line, evicting the set's LRU line
  once the set holds ``ways`` lines;
* dirtiness: a write (hit or fill) marks the line dirty; evicting a
  dirty line counts a writeback;
* nothing is invalidated mid-sequence (true of every replay consumer),
  so residency only grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LruStats:
    """Counters of one simulated access sequence."""

    accesses: int
    hits: int
    misses: int
    evictions: int
    writebacks: int


def compress_runs(ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run-length encode a line-id sequence.

    Returns ``(starts, run_lengths)``: indices where a new run begins
    and each run's length.  Empty input yields empty arrays.
    """
    n = len(ids)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(ids[1:], ids[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    run_lengths = np.diff(np.append(starts, n))
    return starts, run_lengths


def simulate_lru(
    ids: np.ndarray,
    ways: int,
    num_sets: int = 1,
    writes: Optional[np.ndarray] = None,
) -> LruStats:
    """Exact set-associative LRU simulation of a line-id sequence.

    Args:
        ids: line numbers in access order (``num_sets=1`` models a
            fully associative structure keyed by any hashable id).
        ways: associativity (lines per set).
        num_sets: number of sets; a line maps to set ``id % num_sets``.
        writes: optional per-access write flags (dirty/writeback
            accounting); None models a read-only probe stream.

    Returns:
        :class:`LruStats` with exact hit/miss/eviction/writeback counts.
    """
    n = len(ids)
    if n == 0:
        return LruStats(0, 0, 0, 0, 0)
    starts, _ = compress_runs(ids)
    run_ids = ids[starts].tolist()
    if writes is None:
        run_writes = [False] * len(run_ids)
    else:
        writes = np.asarray(writes, dtype=bool)
        run_writes = np.logical_or.reduceat(writes, starts).tolist()

    hits = n - len(run_ids)  # within-run repeats always hit
    misses = 0
    evictions = 0
    writebacks = 0
    buckets = [dict() for _ in range(num_sets)]
    single = num_sets == 1
    bucket = buckets[0]
    for line, write in zip(run_ids, run_writes):
        if not single:
            bucket = buckets[line % num_sets]
        dirty = bucket.pop(line, None)
        if dirty is not None:
            hits += 1
            bucket[line] = dirty or write
            continue
        misses += 1
        if len(bucket) >= ways:
            victim = next(iter(bucket))
            if bucket.pop(victim):
                writebacks += 1
            evictions += 1
        bucket[line] = write
    return LruStats(
        accesses=n,
        hits=hits,
        misses=misses,
        evictions=evictions,
        writebacks=writebacks,
    )
