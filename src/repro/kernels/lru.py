"""Exact LRU cache simulation over precomputed id sequences.

The one part of a trace replay that numpy cannot express directly is
the cache state: whether access *i* hits depends on every access before
it.  What *can* be hoisted out of the sequential core is everything
else — which accesses reach the structure at all, which line each one
maps to, and (the big one) *run compression*: consecutive accesses to
the same line always hit and leave the LRU order unchanged, so only run
boundaries need simulating.  The paper's traces are exactly the
high-locality kind where this collapses tens of thousands of accesses
into a few hundred boundary decisions (the CTC's whole premise,
Section 4.3).

The boundary loop itself is a plain dict used as an ordered LRU list
(Python dicts preserve insertion order: re-inserting moves a key to the
MRU end, ``next(iter(...))`` is the LRU victim) — O(1) per boundary,
against the O(ways) victim scan of the reference
:class:`repro.mem.cache.SetAssociativeCache` model.

Semantics replicated exactly, validated by the equivalence harness:

* hit ⇔ resident; a miss fills the line, evicting the set's LRU line
  once the set holds ``ways`` lines;
* dirtiness: a write (hit or fill) marks the line dirty; evicting a
  dirty line counts a writeback;
* nothing is invalidated mid-sequence (true of every replay consumer),
  so residency only grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LruStats:
    """Counters of one simulated access sequence."""

    accesses: int
    hits: int
    misses: int
    evictions: int
    writebacks: int


class LruState:
    """Resumable LRU residency state for run-boundary simulation.

    Holds the per-set ordered dicts the boundary loop mutates, so a
    single logical access sequence can be fed in several consecutive
    chunks (shards) and accumulate exactly the counters one whole-window
    :func:`simulate_lru` call would.  Duplicating the id at a chunk
    boundary is harmless: the second occurrence is a guaranteed hit on
    the MRU-resident line, which exactly compensates the within-run hit
    the run compression loses by splitting the run in two, and the
    pop-reinsert of the MRU key leaves the eviction order unchanged.
    """

    __slots__ = ("ways", "num_sets", "buckets")

    def __init__(self, ways: int, num_sets: int = 1) -> None:
        self.ways = ways
        self.num_sets = num_sets
        self.buckets: List[dict] = [dict() for _ in range(num_sets)]

    def apply_runs(self, run_ids, run_writes=None) -> LruStats:
        """Feed one chunk of run-compressed boundaries through the state.

        ``run_ids`` are the line ids at run starts (one entry per run);
        ``run_writes`` the per-run dirty flags (None = read-only).  The
        returned :class:`LruStats` counts only the boundary decisions of
        this chunk — the caller adds the within-run hits it compressed
        away (``chunk_length - len(run_ids)``) and the chunk length.
        """
        if run_writes is None:
            run_writes = [False] * len(run_ids)
        hits = 0
        misses = 0
        evictions = 0
        writebacks = 0
        ways = self.ways
        buckets = self.buckets
        single = self.num_sets == 1
        bucket = buckets[0]
        for line, write in zip(run_ids, run_writes):
            if not single:
                bucket = buckets[line % self.num_sets]
            dirty = bucket.pop(line, None)
            if dirty is not None:
                hits += 1
                bucket[line] = dirty or write
                continue
            misses += 1
            if len(bucket) >= ways:
                victim = next(iter(bucket))
                if bucket.pop(victim):
                    writebacks += 1
                evictions += 1
            bucket[line] = write
        return LruStats(
            accesses=len(run_ids),
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )


def run_boundaries(
    ids: np.ndarray, writes: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Run-compress an id sequence to ``(run_ids, run_writes)``.

    ``run_writes`` ORs the write flags across each run (None in, None
    out) — the shard workers ship exactly this pair to the merge loop.
    """
    if len(ids) == 0:
        return np.empty(0, dtype=np.int64), (
            None if writes is None else np.empty(0, dtype=bool)
        )
    starts, _ = compress_runs(ids)
    run_ids = ids[starts]
    if writes is None:
        return run_ids, None
    writes = np.asarray(writes, dtype=bool)
    return run_ids, np.logical_or.reduceat(writes, starts)


def compress_runs(ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run-length encode a line-id sequence.

    Returns ``(starts, run_lengths)``: indices where a new run begins
    and each run's length.  Empty input yields empty arrays.
    """
    n = len(ids)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(ids[1:], ids[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    run_lengths = np.diff(np.append(starts, n))
    return starts, run_lengths


def simulate_lru(
    ids: np.ndarray,
    ways: int,
    num_sets: int = 1,
    writes: Optional[np.ndarray] = None,
) -> LruStats:
    """Exact set-associative LRU simulation of a line-id sequence.

    Args:
        ids: line numbers in access order (``num_sets=1`` models a
            fully associative structure keyed by any hashable id).
        ways: associativity (lines per set).
        num_sets: number of sets; a line maps to set ``id % num_sets``.
        writes: optional per-access write flags (dirty/writeback
            accounting); None models a read-only probe stream.

    Returns:
        :class:`LruStats` with exact hit/miss/eviction/writeback counts.
    """
    n = len(ids)
    if n == 0:
        return LruStats(0, 0, 0, 0, 0)
    run_ids, run_writes = run_boundaries(ids, writes)
    state = LruState(ways=ways, num_sets=num_sets)
    boundary = state.apply_runs(
        run_ids.tolist(),
        None if run_writes is None else run_writes.tolist(),
    )
    return LruStats(
        accesses=n,
        # Within-run repeats always hit, plus the boundary-loop hits.
        hits=(n - len(run_ids)) + boundary.hits,
        misses=boundary.misses,
        evictions=boundary.evictions,
        writebacks=boundary.writebacks,
    )
