"""Whole-window replay orchestration over the real model objects.

The scalar replay loops (``run_hlatch``, ``run_baseline``,
``measure_hw_rates``) drive a :class:`~repro.core.latch.LatchModule` /
:class:`~repro.hlatch.taint_cache.PreciseTaintCache` one access at a
time.  The functions here compute the *identical* counter outcomes with
the batch kernels and write them back into the very same stats objects
(:class:`~repro.core.latch.LatchStats`,
:class:`~repro.mem.cache.CacheStats`, …), so metric publication — and
therefore the :class:`~repro.obs.StatsSnapshot` the runner caches — is
shared verbatim with the scalar path.

Precondition shared by every function: the coarse state is *frozen* for
the duration of the window (no tag writes interleave with checks) and
the simulated structures start cold — exactly the state
``bulk_load_from_shadow`` / a fresh system leaves behind, and exactly
what the scalar replay loops rely on as well.  The cache *contents* are
not reconstructed, only their statistics; a replayed system is a
measurement artefact, not a warm simulator to keep driving access by
access afterwards.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels import classify, ctc as ctc_kernel, tcache as tcache_kernel
from repro.kernels import tlb as tlb_kernel
from repro.kernels.backend import observe_batch
from repro.kernels.lru import LruStats


def _apply_cache_stats(stats, kernel_stats: LruStats) -> None:
    """Accumulate kernel LRU counters into a live ``CacheStats``."""
    stats.accesses += kernel_stats.accesses
    stats.hits += kernel_stats.hits
    stats.misses += kernel_stats.misses
    stats.evictions += kernel_stats.evictions
    stats.writebacks += kernel_stats.writebacks


def replay_check_memory(
    latch, addresses, sizes
) -> np.ndarray:
    """Batch equivalent of ``latch.check_memory`` per access.

    Mutates ``latch``'s counters (its own :class:`LatchStats`, the CTC
    stats, the TLB taint-bit stats) exactly as the scalar loop would,
    and returns the per-access coarse-tainted flags.  The ``latch`` must
    be freshly (bulk-)loaded: cold CTC/TLB, static CTT.
    """
    addresses = classify.as_index_array(addresses) & 0xFFFFFFFF
    n = len(addresses)
    observe_batch("classify", n)
    effective = classify.effective_sizes(sizes)
    latch.stats.memory_checks += n
    if n == 0:
        return np.zeros(0, dtype=bool)

    geometry = latch.geometry
    ctt_index = classify.CttIndex(latch.ctt)

    if latch.tlb_bits is not None:
        screen = tlb_kernel.screen_window(
            addresses, effective, geometry, ctt_index,
            latch.tlb_bits.tlb.entries,
        )
        latch.tlb_bits.checks += screen.checks
        latch.tlb_bits.hot_checks += screen.hot_checks
        tlb_stats = latch.tlb_bits.tlb.stats
        tlb_stats.accesses += screen.accesses
        tlb_stats.hits += screen.hits
        tlb_stats.misses += screen.misses
        tlb_stats.evictions += screen.evictions
        page_hot = screen.page_hot
        latch.stats.resolved_by_tlb += n - int(page_hot.sum())
    else:
        page_hot = np.ones(n, dtype=bool)

    hot_addresses = addresses[page_hot]
    probe = ctc_kernel.probe_window(
        hot_addresses, effective[page_hot], geometry, ctt_index,
        latch.ctc.entries,
    )
    _apply_cache_stats(
        latch.ctc.stats,
        LruStats(probe.accesses, probe.hits, probe.misses,
                 probe.evictions, 0),
    )
    positives = int(probe.tainted.sum())
    latch.stats.sent_to_precise += positives
    latch.stats.resolved_by_ctc += len(hot_addresses) - positives
    if positives:
        latch.last_exception_address = int(hot_addresses[probe.tainted][-1])

    coarse = np.zeros(n, dtype=bool)
    coarse[page_hot] = probe.tainted
    return coarse


def replay_taint_cache(tcache, addresses, sizes, writes) -> None:
    """Batch equivalent of ``tcache.access`` per access (cold cache).

    ``tcache`` is a :class:`~repro.hlatch.taint_cache.PreciseTaintCache`
    whose stats are accumulated in place.
    """
    addresses = classify.as_index_array(addresses)
    effective = classify.effective_sizes(sizes)
    stats = tcache_kernel.simulate_window(
        addresses, effective, writes, tcache.config
    )
    _apply_cache_stats(tcache.stats, stats)


def replay_hlatch_window(system, addresses, sizes, writes) -> None:
    """Batch equivalent of ``HLatchSystem.access`` over a whole window.

    Coarse-positive accesses proceed to the precise taint cache, as in
    the scalar stack; the system must have just completed
    ``load_taint``.
    """
    addresses = classify.as_index_array(addresses)
    sizes = classify.as_index_array(sizes)
    writes = np.asarray(writes, dtype=bool)
    coarse = replay_check_memory(system.latch, addresses, sizes)
    if coarse.any():
        replay_taint_cache(
            system.tcache,
            addresses[coarse], sizes[coarse], writes[coarse],
        )
