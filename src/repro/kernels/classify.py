"""Stateless batch classification kernels.

Address → domain / CTT-word / page arithmetic over whole address
arrays, plus gathers against a frozen :class:`~repro.core.ctt.
CoarseTaintTable`.  These are the building blocks every replay kernel
shares: the coarse state is *static* while a trace window replays (no
tag writes happen mid-window), so classification is embarrassingly
parallel even though the cache simulations downstream are sequential.

All kernels follow the scalar arithmetic of
:class:`repro.core.domains.DomainGeometry` bit-for-bit, including its
32-bit address masking and wrap-around: an access whose byte range
crosses the top of the 32-bit space expands to the wrapped-around
domains under their canonical (masked) indices, exactly like the
scalar walk in :meth:`repro.core.latch.LatchModule.check_memory`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.domains import DOMAINS_PER_WORD

_MASK32 = 0xFFFFFFFF

#: log2(DOMAINS_PER_WORD) — CTT words pack 32 domain bits.
_WORD_SHIFT = DOMAINS_PER_WORD.bit_length() - 1


def as_index_array(values) -> np.ndarray:
    """Coerce to a contiguous int64 array (the kernels' index dtype)."""
    return np.ascontiguousarray(np.asarray(values, dtype=np.int64))


def effective_sizes(sizes) -> np.ndarray:
    """Per-access sizes with the scalar path's ``max(size, 1)`` floor."""
    return np.maximum(as_index_array(sizes), 1)


def domain_ids(addresses: np.ndarray, domain_size: int) -> np.ndarray:
    """Global domain index of each address (32-bit masked, like scalar)."""
    return (addresses & _MASK32) // domain_size


def word_ids_from_domains(domains: np.ndarray) -> np.ndarray:
    """CTT word index of each domain index."""
    return domains >> _WORD_SHIFT


def bit_offsets_from_domains(domains: np.ndarray) -> np.ndarray:
    """Bit position of each domain within its CTT word."""
    return domains & (DOMAINS_PER_WORD - 1)


def page_ids(addresses: np.ndarray, page_size: int) -> np.ndarray:
    """Page number of each address (unmasked, like :class:`repro.mem.tlb.TLB`)."""
    return addresses >> (page_size.bit_length() - 1)


# --------------------------------------------------------- ragged expansion


def expand_ranges(
    first: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten per-row ``range(first[i], first[i] + counts[i])`` values.

    Returns ``(flat, offsets)`` where ``offsets`` has ``len(first) + 1``
    entries and row *i*'s values live at ``flat[offsets[i]:offsets[i+1]]``.
    Rows with ``counts[i] <= 0`` contribute nothing.
    """
    counts = np.maximum(counts, 0)
    offsets = np.empty(len(counts) + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    flat = np.arange(total, dtype=np.int64)
    flat -= np.repeat(offsets[:-1], counts)
    flat += np.repeat(first, counts)
    return flat, offsets


def expand_domain_ids(
    addresses: np.ndarray, sizes: np.ndarray, domain_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Domain indices overlapped by each access, flattened in trace order.

    Mirrors the scalar CTC walk of ``check_memory``: one entry per
    domain step, first to last, with ranges that wrap past the top of
    the 32-bit space folded to their canonical domain indices (like
    ``DomainGeometry.domains_in_range``).  Returns
    ``(flat_domains, offsets)``.
    """
    masked = addresses & _MASK32
    first = masked // domain_size
    last = (masked + sizes - 1) // domain_size
    flat, offsets = expand_ranges(first, last - first + 1)
    flat %= (_MASK32 + 1) // domain_size
    return flat, offsets


# --------------------------------------------------------------- CTT gather


class CttIndex:
    """A frozen, gather-friendly view of a sparse CTT.

    Built once per replayed window; lookups are vectorised
    ``searchsorted`` gathers against the sorted non-zero word indices.
    """

    def __init__(self, ctt) -> None:
        items = sorted(ctt._words.items())
        self.word_indices = np.array(
            [index for index, _ in items], dtype=np.int64
        )
        self.word_values = np.array(
            [value for _, value in items], dtype=np.int64
        )

    def gather(self, word_ids: np.ndarray) -> np.ndarray:
        """CTT word value per queried word index (0 for absent words)."""
        if len(self.word_indices) == 0 or len(word_ids) == 0:
            return np.zeros(len(word_ids), dtype=np.int64)
        slots = np.searchsorted(self.word_indices, word_ids)
        slots[slots == len(self.word_indices)] = 0
        values = self.word_values[slots]
        return np.where(self.word_indices[slots] == word_ids, values, 0)


def domain_tainted_flags(
    flat_domains: np.ndarray, ctt_index: CttIndex
) -> np.ndarray:
    """Coarse taint bit of each domain in a flattened domain sequence."""
    words = ctt_index.gather(word_ids_from_domains(flat_domains))
    bits = bit_offsets_from_domains(flat_domains)
    return ((words >> bits) & 1).astype(bool)


def any_per_row(
    flags: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Per-row OR over a flattened ragged boolean array.

    ``offsets`` is the ``expand_ranges`` layout; empty rows yield False.
    """
    rows = len(offsets) - 1
    result = np.zeros(rows, dtype=bool)
    if len(flags) == 0 or rows == 0:
        return result
    counts = np.diff(offsets)
    nonempty = counts > 0
    if not nonempty.any():
        return result
    starts = offsets[:-1][nonempty]
    result[nonempty] = np.logical_or.reduceat(flags, starts)
    # reduceat wraps when a start index equals len(flags); starts of
    # non-empty rows are always < len(flags), so no correction needed.
    return result


def coarse_flags_window(
    addresses: np.ndarray,
    sizes: np.ndarray,
    domain_size: int,
    ctt_index: CttIndex,
) -> np.ndarray:
    """Per-access coarse verdicts for one window of memory accesses.

    Composes the primitives above — ragged domain expansion, CTT-word
    gather, per-row OR — into the pure-CTT classification the streaming
    pipeline's vector gate runs per micro-batch.  ``sizes`` should have
    the scalar ``max(size, 1)`` floor already applied (use
    :func:`effective_sizes`); the result matches the scalar CTC walk of
    ``check_memory`` verdict-for-verdict whenever the CTT is the ground
    truth (the immediate-clear discipline).
    """
    flat, offsets = expand_domain_ids(addresses, sizes, domain_size)
    flags = domain_tainted_flags(flat, ctt_index)
    return any_per_row(flags, offsets)


# ---------------------------------------------------- extent classification


def domains_from_extents(
    extents: Sequence[Tuple[int, int]], domain_size: int
) -> np.ndarray:
    """Sorted unique domain indices overlapping any ``(start, length)``.

    Vector twin of :meth:`repro.workloads.trace.TaintLayout.
    tainted_domains` — identical output array, including its treatment
    of zero-length extents (a zero-length extent at a domain-interior
    offset still marks its domain, exactly as the scalar ``range(first,
    last + 1)`` does).
    """
    if not len(extents):
        return np.empty(0, dtype=np.int64)
    pairs = as_index_array(extents).reshape(-1, 2)
    starts = pairs[:, 0]
    lengths = pairs[:, 1]
    first = starts // domain_size
    last = (starts + lengths - 1) // domain_size
    flat, _ = expand_ranges(first, last - first + 1)
    return np.unique(flat)
