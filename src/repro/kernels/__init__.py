"""repro.kernels — vectorized coarse-taint replay kernels.

Numpy batch implementations of the per-access hot paths that the
reproduction's replay loops spend their time in (ISSUE 3; the software
analogue of HardTaint's trace-buffer batching):

* :mod:`~repro.kernels.classify` — stateless domain/page/CTT-word
  classification of whole address arrays;
* :mod:`~repro.kernels.tlb` — TLB taint-bit screening, including the
  scalar path's short-circuit semantics;
* :mod:`~repro.kernels.ctc` — CTC hit/miss simulation over domain-id
  runs;
* :mod:`~repro.kernels.tcache` — precise taint-cache simulation;
* :mod:`~repro.kernels.epochs` — epoch segmentation and the Figure 5
  duration profile;
* :mod:`~repro.kernels.lru` — the shared run-compressed exact LRU core;
* :mod:`~repro.kernels.replay` — window replay over the real model
  objects (``run_hlatch`` / ``run_baseline`` / ``measure_hw_rates``).

Backend selection (``backend=`` argument > ``REPRO_KERNEL_BACKEND`` >
``"vector"``) lives in :mod:`~repro.kernels.backend`.  The scalar code
remains the executable reference; the two backends must produce
bit-identical :class:`~repro.obs.StatsSnapshot` payloads
(``tests/test_kernels_equivalence.py`` enforces the contract, and
``docs/KERNELS.md`` documents the batch model).
"""

from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    BACKENDS,
    DEFAULT_BACKEND,
    KERNEL_NAMES,
    kernel_registry,
    publish_metrics,
    record_dispatch,
    reset_kernel_metrics,
    resolve_backend,
)
from repro.kernels.classify import (
    CttIndex,
    coarse_flags_window,
    domains_from_extents,
)
from repro.kernels.epochs import (
    duration_profile,
    epoch_stream_from_trace,
    segment_epochs,
)
from repro.kernels.lru import (
    LruState,
    LruStats,
    compress_runs,
    run_boundaries,
    simulate_lru,
)
from repro.kernels.replay import (
    replay_check_memory,
    replay_hlatch_window,
    replay_taint_cache,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "KERNEL_NAMES",
    "CttIndex",
    "LruState",
    "LruStats",
    "coarse_flags_window",
    "compress_runs",
    "domains_from_extents",
    "duration_profile",
    "epoch_stream_from_trace",
    "kernel_registry",
    "publish_metrics",
    "record_dispatch",
    "replay_check_memory",
    "replay_hlatch_window",
    "replay_taint_cache",
    "reset_kernel_metrics",
    "resolve_backend",
    "run_boundaries",
    "segment_epochs",
    "simulate_lru",
]
