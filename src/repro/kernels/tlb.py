"""Batch TLB taint-bit screening (the Section 4.2 fast path).

The scalar check path consults one page-level taint bit per *page-level
domain part* the access overlaps, short-circuiting at the first hot
part (``any(...)`` in :meth:`repro.core.latch.LatchModule.
check_memory`).  Because the page-taint bits are derived purely from
the frozen CTT, a part's hot/clean outcome is static — so the whole
screen, including the short-circuit's effect on *which* TLB lookups
happen, can be computed up front; only the TLB's own LRU hit/miss
accounting needs the sequential core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import classify
from repro.kernels.backend import observe_batch
from repro.kernels.lru import simulate_lru

_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class TlbScreenResult:
    """Outcome of screening one access window through the TLB bits."""

    page_hot: np.ndarray  # bool per access: must proceed to the CTC
    checks: int           # page-domain taint-bit consultations
    hot_checks: int       # consultations that found a hot page-domain
    accesses: int         # TLB translations performed
    hits: int
    misses: int
    evictions: int


@dataclass(frozen=True)
class TlbScreenFlags:
    """The stateless half of a TLB screen (no LRU accounting yet).

    ``checked_pages`` is the page-id sequence the TLB would translate,
    in access order — the sharded replay run-compresses it and defers
    the LRU hit/miss accounting to a carry-over
    :class:`~repro.kernels.lru.LruState`.
    """

    page_hot: np.ndarray
    checks: int
    hot_checks: int
    checked_pages: np.ndarray


def screen_flags(
    addresses: np.ndarray,
    sizes: np.ndarray,
    geometry,
    ctt_index: classify.CttIndex,
) -> TlbScreenFlags:
    """Pure-CTT half of :func:`screen_window`: flags and the page-id
    sequence, without touching any LRU state.

    ``addresses``/``sizes`` are int64 arrays (sizes already floored to
    1); ``geometry`` is the :class:`repro.core.domains.DomainGeometry`
    shared with the CTT behind ``ctt_index``.
    """
    n = len(addresses)
    observe_batch("tlb_screen", n)
    if n == 0:
        empty_bool = np.zeros(0, dtype=bool)
        return TlbScreenFlags(
            empty_bool, 0, 0, np.empty(0, dtype=np.int64)
        )

    span = geometry.word_span
    total_words = (_MASK32 + 1) // span
    addresses = addresses & _MASK32
    first = addresses // span
    last = (addresses + sizes - 1) // span
    counts = last - first + 1

    if int(counts.max()) == 1:
        # Fast path: every access fits one page-level domain (true for
        # word-sized accesses at any paper configuration).
        hot = ctt_index.gather(first) != 0
        checked_pages = classify.page_ids(addresses, geometry.page_size)
        page_hot = hot
        checks = n
        hot_checks = int(hot.sum())
    else:
        flat_words, offsets = classify.expand_ranges(first, counts)
        # A range past the top of the address space wraps; fold word
        # indices to their canonical values before consulting the CTT
        # (the scalar _page_domain_parts masks its parts the same way).
        hot_flat = ctt_index.gather(flat_words % total_words) != 0
        position = np.arange(len(flat_words), dtype=np.int64)
        position -= np.repeat(offsets[:-1], counts)
        counts_flat = np.repeat(counts, counts)
        # Index (within the access) of the first hot part, or the part
        # count when every part is clean — the scalar any() consults
        # exactly first_hot + 1 parts.
        first_hot = np.minimum.reduceat(
            np.where(hot_flat, position, counts_flat), offsets[:-1]
        )
        page_hot = first_hot < counts
        checked_limit = np.minimum(first_hot + 1, counts)
        checked_mask = position < np.repeat(checked_limit, counts)
        # Part representative addresses: max(address, part_base), as in
        # _page_domain_parts — only the first part can be unaligned.
        part_addresses = np.maximum(
            flat_words * span, np.repeat(addresses, counts)
        ) & _MASK32
        checked_pages = classify.page_ids(
            part_addresses[checked_mask], geometry.page_size
        )
        checks = int(checked_mask.sum())
        hot_checks = int(page_hot.sum())

    return TlbScreenFlags(
        page_hot=page_hot,
        checks=checks,
        hot_checks=hot_checks,
        checked_pages=checked_pages,
    )


def screen_window(
    addresses: np.ndarray,
    sizes: np.ndarray,
    geometry,
    ctt_index: classify.CttIndex,
    tlb_entries: int,
) -> TlbScreenResult:
    """Screen an access window against page-level taint bits.

    Composes :func:`screen_flags` with a cold-start LRU simulation of
    the TLB translations; counters are bit-identical to the scalar
    screen of ``check_memory``.
    """
    flags = screen_flags(addresses, sizes, geometry, ctt_index)
    stats = simulate_lru(flags.checked_pages, ways=tlb_entries)
    return TlbScreenResult(
        page_hot=flags.page_hot,
        checks=flags.checks,
        hot_checks=flags.hot_checks,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
    )
