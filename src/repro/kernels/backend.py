"""Kernel backend selection and observability.

Every batch kernel in :mod:`repro.kernels` has two implementations:

* ``scalar`` — the original per-access Python code, kept as the
  executable reference semantics;
* ``vector`` — numpy batch kernels over whole
  :class:`~repro.workloads.trace.AccessTrace` windows.

The two are required to produce **bit-identical**
:class:`~repro.obs.StatsSnapshot` payloads (the runner's result cache
keys on snapshot content, so any divergence would poison cached cells);
``tests/test_kernels_equivalence.py`` enforces the contract.

Selection order, mirroring the rest of the repo's knob conventions:

1. an explicit ``backend=`` argument (``"scalar"`` / ``"vector"``);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the auto-selected default, ``"vector"`` (numpy is a hard dependency
   of the package, so the batch path is always available).

Kernel-level metrics (dispatch counts, per-kernel call counters, batch
size histograms) live in a dedicated module registry — deliberately
*not* the registries that job snapshots are built from, because the two
backends do different amounts of kernel work and snapshots must stay
backend-independent.  ``publish_metrics`` copies the catalog into any
external registry for inspection (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs import MetricsRegistry
from repro.obs.spans import emit_event

#: Recognised backend names, in documentation order.
BACKENDS = ("scalar", "vector")

#: Environment variable overriding the auto-selected backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when neither an argument nor the environment chooses.
DEFAULT_BACKEND = "vector"

#: Kernels instrumented in the module registry (metric name stems).
KERNEL_NAMES = (
    "classify",
    "tlb_screen",
    "ctc_probe",
    "tcache_sim",
    "epoch_profile",
)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve the active kernel backend name.

    Args:
        backend: explicit choice, or None/"auto" to consult
            :data:`BACKEND_ENV_VAR` and fall back to
            :data:`DEFAULT_BACKEND`.

    Raises:
        ValueError: unrecognised backend name (the message names the
            environment variable when that is where the value came from).
    """
    if backend is None or backend == "auto":
        raw = os.environ.get(BACKEND_ENV_VAR)
        if raw is None or raw.strip() == "":
            return DEFAULT_BACKEND
        value = raw.strip().lower()
        if value == "auto":
            return DEFAULT_BACKEND
        if value not in BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV_VAR} must be one of {BACKENDS} (or 'auto'), "
                f"got {raw!r}"
            )
        return value
    if backend not in BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {BACKENDS} (or 'auto'), "
            f"got {backend!r}"
        )
    return backend


# ----------------------------------------------------------------- metrics

_registry = MetricsRegistry()


def _register_catalog(registry: MetricsRegistry) -> None:
    """Eagerly register the full kernels catalog (zero-valued metrics)."""
    for name in BACKENDS:
        registry.counter(
            f"kernels.dispatch.{name}", unit="calls",
            description=f"Backend-routed entry points served by the "
                        f"{name} implementation",
        )
    for name in KERNEL_NAMES:
        registry.counter(
            f"kernels.{name}.calls", unit="calls",
            description=f"Invocations of the {name} vector kernel",
        )
        registry.counter(
            f"kernels.{name}.items", unit="items",
            description=f"Total items batch-processed by the {name} "
                        f"vector kernel",
        )
        registry.histogram(
            f"kernels.{name}.batch_size", unit="items",
            description=f"Batch sizes seen by the {name} vector kernel",
        )


_register_catalog(_registry)


def kernel_registry() -> MetricsRegistry:
    """The module-level registry holding kernel counters/histograms."""
    return _registry


def record_dispatch(backend: str) -> None:
    """Count one backend-routed entry point resolution."""
    _registry.counter(f"kernels.dispatch.{backend}").inc()


def observe_batch(kernel: str, batch_size: int) -> None:
    """Record one vector-kernel invocation over ``batch_size`` items.

    When a :class:`~repro.obs.spans.SpanTracer` is active (the runner's
    ``--trace`` path), each batch also lands on the timeline as a
    ``kernels.batch`` event — one record per whole-window kernel call,
    so the volume stays trivial.
    """
    _registry.counter(f"kernels.{kernel}.calls").inc()
    _registry.counter(f"kernels.{kernel}.items").inc(batch_size)
    _registry.histogram(f"kernels.{kernel}.batch_size").record(batch_size)
    emit_event("kernels.batch", kernel=kernel, items=batch_size)


def reset_kernel_metrics() -> None:
    """Zero the kernel metrics (tests and benchmark isolation)."""
    _registry.reset()


def publish_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Copy the kernels catalog into an external registry.

    Registers every catalogued name (so documentation checks see the
    full set even before any kernel has run) and copies current counter
    values and histogram observations.
    """
    _register_catalog(registry)
    for metric in _registry.metrics():
        if metric.kind == "counter":
            registry.counter(metric.name).set(metric.value)
        elif metric.kind == "histogram":
            target = registry.histogram(metric.name)
            target.reset()
            target.record_many(metric.values())
    return registry
