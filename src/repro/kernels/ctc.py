"""Batch CTC hit/miss simulation over domain-id runs (Section 4.3).

The scalar check path walks every taint domain an access overlaps,
probing the CTC once per domain (no short-circuit: ``check_memory``
accumulates the tainted flag across the whole walk).  With a static CTT
the per-domain taint outcome is a pure gather, so the only sequential
work left is the CTC's fully associative LRU accounting over the
flattened domain-word id sequence — which run-compresses extremely well
(the CTC's whole premise is that consecutive accesses stay inside one
CTT word's span).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import classify
from repro.kernels.backend import observe_batch
from repro.kernels.lru import simulate_lru


@dataclass(frozen=True)
class CtcProbeResult:
    """Outcome of probing one access window through the CTC."""

    tainted: np.ndarray  # bool per access: any overlapped domain tainted
    accesses: int        # CTC lookups (one per domain step)
    hits: int
    misses: int
    evictions: int


def probe_window(
    addresses: np.ndarray,
    sizes: np.ndarray,
    geometry,
    ctt_index: classify.CttIndex,
    ctc_entries: int,
) -> CtcProbeResult:
    """Probe an access window through a cold, fully associative CTC.

    ``addresses``/``sizes`` are int64 arrays (sizes already floored to
    1) of the accesses that reached the CTC (i.e. survived TLB
    screening, or all accesses when TLB bits are disabled).
    """
    n = len(addresses)
    observe_batch("ctc_probe", n)
    if n == 0:
        return CtcProbeResult(np.zeros(0, dtype=bool), 0, 0, 0, 0)

    flat_domains, offsets = classify.expand_domain_ids(
        addresses, sizes, geometry.domain_size
    )
    flags = classify.domain_tainted_flags(flat_domains, ctt_index)
    tainted = classify.any_per_row(flags, offsets)
    # One CTC lookup per domain step; the line it touches is the CTT
    # word covering that domain (CTC line span == word span).
    word_sequence = classify.word_ids_from_domains(flat_domains)
    stats = simulate_lru(word_sequence, ways=ctc_entries)
    return CtcProbeResult(
        tainted=tainted,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
    )
