"""Batch CTC hit/miss simulation over domain-id runs (Section 4.3).

The scalar check path walks every taint domain an access overlaps,
probing the CTC once per domain (no short-circuit: ``check_memory``
accumulates the tainted flag across the whole walk).  With a static CTT
the per-domain taint outcome is a pure gather, so the only sequential
work left is the CTC's fully associative LRU accounting over the
flattened domain-word id sequence — which run-compresses extremely well
(the CTC's whole premise is that consecutive accesses stay inside one
CTT word's span).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import classify
from repro.kernels.backend import observe_batch
from repro.kernels.lru import simulate_lru


@dataclass(frozen=True)
class CtcProbeResult:
    """Outcome of probing one access window through the CTC."""

    tainted: np.ndarray  # bool per access: any overlapped domain tainted
    accesses: int        # CTC lookups (one per domain step)
    hits: int
    misses: int
    evictions: int


@dataclass(frozen=True)
class CtcProbeFlags:
    """The stateless half of a CTC probe (no LRU accounting yet).

    ``word_sequence`` is the CTT-word-id sequence of every CTC lookup
    in trace order — the sharded replay run-compresses it and feeds it
    to a carry-over :class:`~repro.kernels.lru.LruState`.
    """

    tainted: np.ndarray
    word_sequence: np.ndarray


def probe_flags(
    addresses: np.ndarray,
    sizes: np.ndarray,
    geometry,
    ctt_index: classify.CttIndex,
) -> CtcProbeFlags:
    """Pure-CTT half of :func:`probe_window`: per-access taint verdicts
    and the CTC lookup sequence, without touching any LRU state."""
    n = len(addresses)
    observe_batch("ctc_probe", n)
    if n == 0:
        return CtcProbeFlags(
            np.zeros(0, dtype=bool), np.empty(0, dtype=np.int64)
        )

    flat_domains, offsets = classify.expand_domain_ids(
        addresses, sizes, geometry.domain_size
    )
    flags = classify.domain_tainted_flags(flat_domains, ctt_index)
    tainted = classify.any_per_row(flags, offsets)
    # One CTC lookup per domain step; the line it touches is the CTT
    # word covering that domain (CTC line span == word span).
    word_sequence = classify.word_ids_from_domains(flat_domains)
    return CtcProbeFlags(tainted=tainted, word_sequence=word_sequence)


def probe_window(
    addresses: np.ndarray,
    sizes: np.ndarray,
    geometry,
    ctt_index: classify.CttIndex,
    ctc_entries: int,
) -> CtcProbeResult:
    """Probe an access window through a cold, fully associative CTC.

    ``addresses``/``sizes`` are int64 arrays (sizes already floored to
    1) of the accesses that reached the CTC (i.e. survived TLB
    screening, or all accesses when TLB bits are disabled).
    """
    flags = probe_flags(addresses, sizes, geometry, ctt_index)
    stats = simulate_lru(flags.word_sequence, ways=ctc_entries)
    return CtcProbeResult(
        tainted=flags.tainted,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
    )
