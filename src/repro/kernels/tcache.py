"""Batch precise taint-cache simulation (Tables 6/7).

The scalar :class:`repro.hlatch.taint_cache.PreciseTaintCache` performs
one set-associative lookup per access plus a second lookup when the
operand straddles a line boundary.  Both the line ids and the straddle
decisions are pure address arithmetic, so the whole access sequence can
be flattened up front and handed to the run-compressed LRU core.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels import classify
from repro.kernels.backend import observe_batch
from repro.kernels.lru import LruStats, simulate_lru


def line_sequence(
    addresses: np.ndarray,
    sizes: np.ndarray,
    writes: Optional[np.ndarray],
    config,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Flatten an access window to its taint-cache lookup sequence.

    Returns ``(sequence, sequence_writes)``: one line id per lookup
    (straddling operands contribute two), with the per-lookup write
    flags repeated alongside (None when ``writes`` is None).  This is
    the stateless half of :func:`simulate_window`; the sharded replay
    run-compresses the pair and defers the set-associative LRU
    accounting to a carry-over :class:`~repro.kernels.lru.LruState`.
    """
    n = len(addresses)
    observe_batch("tcache_sim", n)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, (None if writes is None else np.empty(0, dtype=bool))

    shift = config.memory_coverage_per_line.bit_length() - 1
    first_lines = addresses >> shift
    last_lines = (addresses + sizes - 1) >> shift
    straddles = last_lines != first_lines

    counts = 1 + straddles.astype(np.int64)
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    sequence = np.empty(int(offsets[-1]), dtype=np.int64)
    sequence[offsets[:-1]] = first_lines
    sequence[offsets[1:][straddles] - 1] = last_lines[straddles]

    sequence_writes = None
    if writes is not None:
        sequence_writes = np.repeat(np.asarray(writes, dtype=bool), counts)
    return sequence, sequence_writes


def simulate_window(
    addresses: np.ndarray,
    sizes: np.ndarray,
    writes: Optional[np.ndarray],
    config,
) -> LruStats:
    """Simulate a taint-cache access window from a cold cache.

    ``config`` is a :class:`repro.hlatch.taint_cache.TaintCacheConfig`;
    ``sizes`` must already carry the ``max(size, 1)`` floor.  Returns
    the exact :class:`~repro.kernels.lru.LruStats` the scalar cache
    would accumulate.
    """
    sequence, sequence_writes = line_sequence(addresses, sizes, writes, config)
    if len(sequence) == 0:
        return LruStats(0, 0, 0, 0, 0)
    return simulate_lru(
        sequence, ways=config.ways, num_sets=config.sets,
        writes=sequence_writes,
    )
