"""ASCII figure rendering: bar charts for the paper's figures.

The paper's figures are bar charts over benchmarks; these helpers
render the same series as monospace horizontal bars so benchmark output
remains meaningful in a terminal or a log file.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

Number = Union[int, float]

_BAR_CHARACTER = "█"
_HALF_CHARACTER = "▌"


def format_bar_chart(
    values: Mapping[str, Number],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
    precision: int = 2,
) -> str:
    """Render a horizontal bar chart.

    Args:
        values: label → value (non-negative).
        title: optional heading.
        width: bar width in characters for the largest value.
        unit: suffix printed after each value (e.g. ``"%"`` or ``"x"``).
        max_value: scale maximum (defaults to the data maximum).
        precision: decimals for the printed value.
    """
    if not values:
        return title or ""
    scale = max_value if max_value is not None else max(values.values())
    scale = max(float(scale), 1e-12)
    label_width = max(len(str(label)) for label in values)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in values.items():
        fraction = min(max(float(value) / scale, 0.0), 1.0)
        cells = fraction * width
        bar = _BAR_CHARACTER * int(cells)
        if cells - int(cells) >= 0.5:
            bar += _HALF_CHARACTER
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:.{precision}f}{unit}"
        )
    return "\n".join(lines)


def format_grouped_bars(
    series: Mapping[str, Mapping[str, Number]],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
    precision: int = 2,
) -> str:
    """Render grouped bars: benchmark → {series name → value}.

    Used for before/after comparisons (e.g. libdft vs S-LATCH overhead,
    baseline vs filtered miss rates).
    """
    if not series:
        return title or ""
    scale = max(
        (float(value) for group in series.values() for value in group.values()),
        default=1.0,
    )
    scale = max(scale, 1e-12)
    label_width = max(
        (len(name) for group in series.values() for name in group),
        default=1,
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group_label, group in series.items():
        lines.append(f"{group_label}:")
        for name, value in group.items():
            fraction = min(max(float(value) / scale, 0.0), 1.0)
            bar = _BAR_CHARACTER * int(fraction * width)
            lines.append(
                f"  {str(name).rjust(label_width)} |{bar.ljust(width)}| "
                f"{value:.{precision}f}{unit}"
            )
    return "\n".join(lines)
