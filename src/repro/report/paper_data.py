"""The paper's reported numbers, verbatim, for side-by-side comparison.

Every benchmark in ``benchmarks/`` prints measured values next to these.
Sources: Tables 1–4, 6, 7 and the quoted aggregates of Sections 6.1–6.4
of Townley et al., *LATCH: A Locality-Aware Taint CHecker*, MICRO 2019.
"""

from __future__ import annotations

from typing import Dict

#: Table 1 — % instructions touching tainted data (SPEC CPU 2006).
TABLE1_TAINT_PERCENT: Dict[str, float] = {
    "astar": 21.73, "bzip2": 0.01, "calculix": 0.28, "cactusADM": 0.01,
    "gcc": 0.08, "gobmk": 0.01, "gromacs": 0.19, "h264ref": 0.01,
    "hmmer": 0.01, "lbm": 0.14, "mcf": 0.29, "namd": 0.17,
    "omnetpp": 0.01, "perlbench": 2.67, "povray": 0.21, "sjeng": 0.01,
    "soplex": 7.69, "sphinx": 13.53, "wrf": 0.28, "Xalan": 0.11,
}

#: Table 2 — % instructions touching tainted data (network applications).
TABLE2_TAINT_PERCENT: Dict[str, float] = {
    "curl": 1.13, "wget": 0.15, "mySQL": 0.19, "apache": 1.94,
    "apache-25": 1.49, "apache-50": 0.95, "apache-75": 0.45,
}

#: Table 3 — page-granularity taint distribution (SPEC):
#: name → (pages accessed, pages tainted, % accessed pages tainted).
TABLE3_PAGES: Dict[str, tuple] = {
    "astar": (2344, 2001, 85.37), "bzip2": (52110, 70, 0.13),
    "cactusADM": (6199, 1, 0.02), "calculix": (806, 9, 1.12),
    "gcc": (2590, 213, 8.22), "gobmk": (3981, 1, 0.03),
    "gromacs": (3604, 17, 0.47), "h264ref": (6861, 183, 2.67),
    "hmmer": (182, 5, 2.75), "lbm": (104766, 2, 0.01),
    "mcf": (21481, 2, 0.01), "namd": (11575, 3, 0.03),
    "omnetpp": (1786, 14, 0.78), "perlbench": (203, 22, 10.84),
    "povray": (725, 24, 3.31), "sjeng": (44713, 3, 0.01),
    "soplex": (412, 84, 20.39), "sphinx": (7133, 4133, 57.94),
    "wrf": (25182, 246, 0.98), "Xalan": (1634, 105, 6.43),
}

#: Table 4 — page-granularity taint distribution (network).
TABLE4_PAGES: Dict[str, tuple] = {
    "curl": (600, 33, 5.5), "wget": (1591, 44, 2.77),
    "mySQL": (10483, 435, 4.15), "apache": (1113, 238, 21.38),
    "apache-25": (1170, 260, 22.22), "apache-50": (1101, 231, 20.98),
    "apache-75": (1115, 238, 21.35),
}

#: Table 6 — H-LATCH cache performance, SPEC (the paper also lists wget
#: in this table): name → (CTC miss %, t-cache miss % in H-LATCH,
#: combined miss %, t-cache miss % without LATCH, % misses avoided).
TABLE6_HLATCH: Dict[str, tuple] = {
    "astar": (2.622, 2.8894, 5.5114, 7.9707, 30.8541),
    "bzip2": (0.0001, 0.0001, 0.0001, 5.3137, 99.9995),
    "cactusADM": (0.0001, 0.0001, 0.0001, 25.364, 99.9999),
    "calculix": (0.0001, 0.0025, 0.0025, 10.3279, 99.9758),
    "gcc": (0.0008, 0.0037, 0.0045, 11.3298, 99.9604),
    "gobmk": (0.0001, 0.0001, 0.0001, 11.3462, 99.9991),
    "gromacs": (0.0001, 0.0044, 0.0044, 5.0965, 99.913),
    "h264ref": (0.0001, 0.0002, 0.0002, 6.9702, 99.9977),
    "hmmer": (0.0001, 0.0001, 0.0001, 7.39, 99.9999),
    "lbm": (0.0001, 0.0026, 0.0026, 23.6281, 99.9891),
    "mcf": (0.0001, 0.0024, 0.0024, 35.6878, 99.9933),
    "namd": (0.0001, 0.0008, 0.0008, 12.1935, 99.9932),
    "omnetpp": (0.0001, 0.0001, 0.0001, 12.3787, 99.9997),
    "perlbench": (0.0034, 0.0469, 0.0503, 16.4413, 99.6939),
    "povray": (0.0001, 0.0017, 0.0017, 10.0139, 99.9829),
    "sjeng": (0.0001, 0.0001, 0.0001, 15.0817, 99.9999),
    "soplex": (0.0001, 0.0001, 0.0001, 13.5815, 99.9999),
    "sphinx": (0.2872, 2.0087, 2.2959, 11.3727, 79.8126),
    "wget": (0.0004, 0.0055, 0.0058, 7.0173, 99.9168),
    "wrf": (0.0035, 0.0274, 0.0309, 16.4611, 99.8125),
    "Xalan": (0.0141, 0.0124, 0.0265, 13.4061, 99.8022),
}

#: Table 7 — H-LATCH cache performance, network applications.
TABLE7_HLATCH: Dict[str, tuple] = {
    "apache": (0.0632, 0.1528, 0.2159, 10.6789, 97.9779),
    "apache-25": (0.0454, 0.1365, 0.1818, 10.7884, 98.3146),
    "apache-50": (0.0305, 0.0713, 0.1018, 10.7945, 99.0569),
    "apache-75": (0.0141, 0.0371, 0.0511, 10.8036, 99.5267),
    "curl": (0.0022, 0.0817, 0.0839, 5.8689, 98.5707),
    "mySQL": (0.0722, 0.0544, 0.1266, 11.6442, 98.9128),
    "wget": (0.0003, 0.0055, 0.0059, 6.9646, 99.9157),
}

#: Section 6.1 aggregates for S-LATCH (Figure 13).
SLATCH_AGGREGATES = {
    "harmonic_mean_overhead": 0.60,
    "benchmarks_under_50_percent": 12,
    "benchmarks_under_5_percent": 8,
    "mean_speedup_vs_libdft": 4.0,
    "web_client_speedup": 10.0,
    "mysql_speedup": 1.63,
    "apache_speedup": 1.47,
    "apache_75_speedup": 3.25,
    "mean_overhead_good_locality": 0.32,
}

#: Section 6.2 aggregates for P-LATCH (Figure 15).
PLATCH_AGGREGATES = {
    "simple_spec_mean": 0.184,
    "simple_network_mean": 0.524,
    "simple_overall_mean": 0.257,
    "optimized_spec_mean": 0.076,
    "optimized_network_mean": 0.101,
    "baseline_simple_overhead": 3.38,
    "baseline_optimized_overhead": 0.36,
}

#: Section 6.4 — FPGA synthesis results on the AO486.
FPGA_RESULTS = {
    "logic_elements_percent": 4.0,
    "memory_bits_percent": 5.0,
    "dynamic_power_percent": 5.0,
    "static_power_percent": 0.2,
    "cycle_time_impact": 0.0,
}
