"""Rendering of the paper's tables and figure series as text.

The benchmark harness prints each reproduced artefact in the same
row/column layout the paper uses, with a paper-vs-measured column where
the paper states numbers.
"""

from repro.report.figures import format_bar_chart, format_grouped_bars
from repro.report.obs_report import format_snapshot, snapshot_diff
from repro.report.tables import (
    format_comparison_table,
    format_series,
    format_table,
)

__all__ = [
    "format_bar_chart",
    "format_comparison_table",
    "format_grouped_bars",
    "format_series",
    "format_snapshot",
    "format_table",
    "snapshot_diff",
]
