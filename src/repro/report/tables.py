"""Plain-text table and series formatting."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered = [
        [_format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered))
        if rendered
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def format_comparison_table(
    names: Sequence[str],
    measured: Mapping[str, Number],
    paper: Mapping[str, Number],
    value_label: str = "measured",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render measured-vs-paper rows with a ratio column."""
    rows: List[List[object]] = []
    for name in names:
        measured_value = measured.get(name)
        paper_value = paper.get(name)
        if measured_value is None:
            continue
        if paper_value in (None, 0):
            ratio = ""
        else:
            ratio = f"{measured_value / paper_value:.2f}x"
        rows.append(
            [
                name,
                _format_value(measured_value, precision),
                "" if paper_value is None else _format_value(paper_value, precision),
                ratio,
            ]
        )
    return format_table(
        ["benchmark", value_label, "paper", "measured/paper"],
        rows,
        title=title,
        precision=precision,
    )


def format_series(
    series: Mapping[str, Mapping[object, Number]],
    x_label: str = "x",
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render named series (benchmark → {x: y}) with x values as columns."""
    x_values: List[object] = []
    for values in series.values():
        for x in values:
            if x not in x_values:
                x_values.append(x)
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append(
            [name] + [values.get(x, float("nan")) for x in x_values]
        )
    return format_table(headers, rows, title=title, precision=precision)
