"""Rendering of :class:`repro.obs.StatsSnapshot` as report tables.

The report layer consumes frozen snapshots rather than reaching back
into live structures: whatever ``repro-stats`` wrote to disk renders
identically later, and the benchmark tables and the CLI agree by
construction because they read the same records.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.snapshot import MetricRecord, StatsSnapshot
from repro.report.tables import format_table


def _scalar_text(record: MetricRecord, precision: int) -> str:
    value = record.data["value"]
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _summary_text(record: MetricRecord, precision: int) -> str:
    data = record.data
    if not data.get("count"):
        return "count=0"
    parts = [f"count={data['count']}", f"mean={data['mean']:.{precision}f}"]
    parts.append(f"min={data['min']:.{precision}f}")
    parts.append(f"max={data['max']:.{precision}f}")
    for label, value in (data.get("percentiles") or {}).items():
        if value is not None:
            parts.append(f"{label}={value:.{precision}f}")
    return " ".join(parts)


def format_snapshot(
    snapshot: StatsSnapshot,
    title: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    precision: int = 6,
) -> str:
    """Render a snapshot as an aligned monospace table.

    Args:
        snapshot: the frozen metrics.
        title: optional table title.
        names: subset and ordering of metric names (default: all, in
            snapshot order); unknown names are skipped silently so one
            template covers runs with different monitors attached.
        precision: float digits.
    """
    selected = (
        [r for name in names for r in snapshot.records if r.name == name]
        if names is not None
        else snapshot.records
    )
    rows = []
    for record in selected:
        text = (
            _scalar_text(record, precision)
            if record.is_scalar
            else _summary_text(record, precision)
        )
        rows.append([record.name, record.kind, record.unit, text])
    return format_table(
        ["metric", "kind", "unit", "value"], rows, title=title
    )


def snapshot_diff(before: StatsSnapshot, after: StatsSnapshot) -> dict:
    """Scalar deltas ``after - before`` for metrics present in both.

    Histogram/timer records are skipped (their summaries do not
    subtract meaningfully); useful for windowed measurements over a
    long-running system.
    """
    deltas = {}
    for record in after.records:
        if not record.is_scalar:
            continue
        previous = before.get(record.name)
        if isinstance(previous, (int, float)) and isinstance(
            record.data["value"], (int, float)
        ):
            deltas[record.name] = record.data["value"] - previous
    return deltas
