"""Delta debugging of failing programs (ddmin over body operations).

Generated programs are straight-line sequences of self-contained
operations, so removing any subset yields another valid program — the
precondition that makes classic ddmin applicable without a grammar.
The shrinker minimises at operation granularity first (each operation
is a few instructions), then attempts payload truncation, and finishes
with a one-at-a-time sweep to guarantee 1-minimality: removing any
single remaining operation makes the violation disappear.

The reduction predicate is *same violation kind on the same path
family*, not "any violation": shrinking must not wander from the bug
being minimised onto an unrelated one.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.check.generator import CheckProgram
from repro.check.oracle import ALL_PATHS, SoundnessViolation, check_program


def _violation_kinds(
    cp: CheckProgram, paths: Sequence[str], latch_cls
) -> List[str]:
    return [v.kind for v in check_program(cp, paths=paths, latch_cls=latch_cls).violations]


def make_predicate(
    violation: SoundnessViolation,
    paths: Sequence[str] = ALL_PATHS,
    latch_cls=None,
) -> Callable[[CheckProgram], bool]:
    """Predicate: does the candidate still exhibit ``violation.kind``?"""
    from repro.core.latch import LatchModule

    cls = latch_cls if latch_cls is not None else LatchModule

    def predicate(candidate: CheckProgram) -> bool:
        try:
            return violation.kind in _violation_kinds(candidate, paths, cls)
        except Exception:
            # A candidate that crashes the harness is not a reproducer.
            return False

    return predicate


def ddmin(
    items: Sequence,
    predicate: Callable[[Sequence], bool],
) -> List:
    """Classic ddmin: minimal subsequence still satisfying ``predicate``.

    ``predicate`` receives a candidate subsequence and returns True when
    the failure still reproduces.  The input itself must satisfy it.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(len(items) // granularity, 1)
        subsets = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for index in range(len(subsets)):
            complement = [
                item
                for position, subset in enumerate(subsets)
                for item in subset
                if position != index
            ]
            if complement and predicate(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(granularity * 2, len(items))
    return items


def _sweep_once(items: List, predicate: Callable[[Sequence], bool]) -> List:
    """One-at-a-time removal pass (guarantees 1-minimality)."""
    index = 0
    while index < len(items):
        candidate = items[:index] + items[index + 1 :]
        if candidate and predicate(candidate):
            items = candidate
        else:
            index += 1
    return items


def shrink_program(
    cp: CheckProgram,
    violation: SoundnessViolation,
    paths: Sequence[str] = ALL_PATHS,
    latch_cls=None,
) -> CheckProgram:
    """Shrink ``cp`` to a minimal program still exhibiting ``violation``.

    Reduces the body via ddmin plus a final one-at-a-time sweep, then
    halves the file payload while the violation persists.  Returns the
    shrunk program (named ``<original>-min``); if the original does not
    reproduce under the predicate, it is returned unchanged.
    """
    predicate = make_predicate(violation, paths=paths, latch_cls=latch_cls)
    if not predicate(cp):
        return cp

    body = list(cp.body)
    if predicate(cp.with_body([])):
        # The fixed prelude alone reproduces (e.g. a bug in the very
        # first tainted read); no body operation is needed.
        body = []
    else:
        body = ddmin(body, lambda candidate: predicate(cp.with_body(candidate)))
        body = _sweep_once(
            body, lambda candidate: predicate(cp.with_body(candidate))
        )
        # Second pass at single-instruction granularity: multi-line
        # operations are split so the reproducer keeps only the lines
        # that matter (any straight-line instruction subset is a valid
        # program, so removal stays safe below the operation level).
        lines = [line for op in body for line in op.split("\n")]
        if len(lines) > len(body):
            as_body = lambda ls: cp.with_body(ls)  # noqa: E731
            lines = ddmin(lines, lambda candidate: predicate(as_body(candidate)))
            lines = _sweep_once(
                lines, lambda candidate: predicate(as_body(candidate))
            )
            body = lines
    shrunk = cp.with_body(body)

    import dataclasses

    payload = shrunk.payload
    while len(payload) > 1:
        half = payload[: max(len(payload) // 2, 1)]
        candidate = dataclasses.replace(shrunk, payload=half)
        if predicate(candidate):
            payload = half
            shrunk = candidate
        else:
            break
    return dataclasses.replace(shrunk, name=f"{cp.name}-min")
