"""Property-based differential checking of the LATCH stack.

The paper's headline accuracy claim — LATCH "implements this policy
without sacrificing the accuracy of DIFT" (Section 1, Figure 1) — is a
*soundness* property: the coarse state must remain a superset of the
precise state, so a clean coarse answer can never hide a tainted byte.
This package turns that claim into an executable oracle:

* :mod:`repro.check.generator` — a seeded random program generator over
  the toy ISA, biased toward the hazards where the superset invariant
  is hardest to maintain (domain/page-boundary straddling, taint-clear
  storms, mode ping-pong, CTC eviction pressure, syscall taint).
* :mod:`repro.check.oracle` — runs each program through byte-precise
  DIFT and every LATCH-gated path (core module under both clear
  disciplines, S-LATCH, H-LATCH, scalar and vector kernel replays) and
  asserts no-false-negatives plus final-state equivalence, validating
  :meth:`repro.core.latch.LatchModule.check_invariants` after every
  step.
* :mod:`repro.check.shrink` — delta-debugs failing programs down to
  minimal instruction sequences.
* :mod:`repro.check.corpus` — JSON (de)serialisation of reproducers
  and the committed regression corpus under ``tests/corpus/``.
* :mod:`repro.check.mutation` — self-validation: injects a known
  off-by-one into a copy of the coarse update logic and demonstrates
  that the harness finds and shrinks it.

See ``docs/CHECKING.md`` for the operational guide.
"""

from repro.check.corpus import load_corpus, load_program, save_program
from repro.check.generator import CheckProgram, generate_program
from repro.check.oracle import OracleReport, SoundnessViolation, check_program
from repro.check.shrink import shrink_program

__all__ = [
    "CheckProgram",
    "OracleReport",
    "SoundnessViolation",
    "check_program",
    "generate_program",
    "load_corpus",
    "load_program",
    "save_program",
    "shrink_program",
]
