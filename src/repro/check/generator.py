"""Seeded random program generator biased toward LATCH hazards.

Programs are straight-line toy-ISA assembly (no branches), which keeps
every body operation independently removable — the property the
:mod:`repro.check.shrink` delta debugger relies on.  A fixed prelude
opens a tainted virtual file and reads 64 bytes into ``buf``; the body
is a random sequence of self-contained *operations*, each one a short
assembly fragment drawn from a hazard-biased distribution:

* multi-byte loads/stores whose offsets straddle taint-domain and page
  boundaries (the hardest case for the chained update of Figure 12);
* taint-clear storms (bursts of zero stores over tainted regions) that
  stress the Section 5.1.4 clear-bit discipline;
* accesses that wrap past the top of the 32-bit address space (the
  machine's memory wraps, so the coarse structures must too);
* wide-stride touches that thrash the 16-entry CTC into evicting lines
  (including lines with asserted clear bits);
* mid-program ``read`` syscalls — including zero-length reads — that
  inject taint while every integration is mid-flight;
* tight taint/clear alternation that forces S-LATCH mode ping-pong at
  small timeouts.

Every operation is reproducible from ``(seed, position)`` alone; the
whole program, its file payload, and the LATCH configuration it runs
under derive deterministically from the generator seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.latch import LatchConfig
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.machine.devices import DeviceTable, VirtualFile

#: Name of the tainted input file every generated program opens.
INPUT_FILE = "fuzz.dat"

#: Bytes read into ``buf`` by the prelude (and per mid-body read).
READ_CHUNK = 64

#: Scratch registers the body may clobber freely.  ``r10`` holds the
#: input fd, ``r12`` the buffer base; ``r3``–``r6`` are the syscall
#: interface (clobbered only inside syscall operations).
_SCRATCH = (1, 2, 7, 8, 9, 11, 13, 14, 15)

#: Base of the wrap-around hazard region (last domain of the address
#: space at every supported domain size).
_WRAP_BASE = 0xFFFF_FFC0


@dataclass(frozen=True)
class CheckProgram:
    """A generated (or shrunk, or corpus-loaded) checkable program.

    ``body`` is the sequence of independent operations; the prelude,
    epilogue, and device table are fixed functions of the other fields,
    so a reproducer is fully described by this object alone (and
    serialises losslessly — see :mod:`repro.check.corpus`).
    """

    name: str
    seed: int
    body: Tuple[str, ...]
    payload: bytes
    config: LatchConfig = field(default_factory=LatchConfig)
    timeouts: Tuple[int, ...] = (1, 50)

    # ------------------------------------------------------------ assembly

    def source(self) -> str:
        """Full assembly source (prelude + body + halt)."""
        lines = [
            "    .data",
            f'in_path:    .asciiz "{INPUT_FILE}"',
            "buf:        .space 512",
            "    .text",
            "_start:",
            "    li   r3, 3              # OPEN(in_path)",
            "    li   r4, in_path",
            "    syscall",
            "    mv   r10, r3            # input fd",
            "    li   r3, 1              # READ(fd, buf, 64)",
            "    mv   r4, r10",
            "    li   r5, buf",
            f"    li   r6, {READ_CHUNK}",
            "    syscall",
            "    li   r12, buf           # buffer base for body ops",
        ]
        lines.extend(self.body)
        lines.append("    halt")
        return "\n".join(lines) + "\n"

    def program(self) -> Program:
        """Assemble the source into a loadable program."""
        return assemble(self.source())

    def make_cpu(self, cpu_class=None):
        """Fresh CPU + device table for one run of this program."""
        from repro.machine.cpu import CPU

        devices = DeviceTable()
        devices.register_file(
            VirtualFile(name=INPUT_FILE, data=self.payload, tainted=True)
        )
        cls = cpu_class if cpu_class is not None else CPU
        return cls(self.program(), devices=devices)

    def instruction_count(self) -> int:
        """Assembled instruction count (pseudo-ops expanded)."""
        return len(self.program().instructions)

    def with_body(self, body) -> "CheckProgram":
        """Copy with a replaced body (used by the shrinker)."""
        return replace(self, body=tuple(body))


# --------------------------------------------------------------- operations


def _boundary_offset(rng: random.Random, unit: int, limit: int = 448) -> int:
    """An offset near a multiple of ``unit``, clamped to [0, limit]."""
    boundary = rng.randrange(1, max(limit // unit, 1) + 1) * unit
    offset = boundary + rng.randrange(-3, 4)
    return max(0, min(offset, limit))


def _op_load_buf(rng: random.Random, geometry) -> str:
    reg = rng.choice(_SCRATCH)
    mnemonic = rng.choice(["lb", "lbu", "lh", "lhu", "lw", "lw"])
    offset = _boundary_offset(rng, geometry.domain_size)
    return f"    {mnemonic}   r{reg}, {offset}(r12)"

def _op_store_straddle(rng: random.Random, geometry) -> str:
    src, dst = rng.sample(_SCRATCH, 2)
    load_off = rng.randrange(0, READ_CHUNK)
    width, store = rng.choice([(2, "sh"), (4, "sw"), (4, "sw")])
    boundary = rng.choice([geometry.domain_size, geometry.page_size // 8])
    store_off = _boundary_offset(rng, boundary) - rng.randrange(1, width)
    store_off = max(0, store_off)
    return (
        f"    lw   r{src}, {load_off}(r12)\n"
        f"    {store}   r{src}, {store_off}(r12)\n"
        f"    addi r{dst}, r{src}, 0"
    )

def _op_clear_storm(rng: random.Random, geometry) -> str:
    base = _boundary_offset(rng, geometry.domain_size, limit=384)
    lines = []
    for step in range(rng.randrange(2, 6)):
        width = rng.choice(["sb", "sh", "sw"])
        lines.append(f"    {width}   r0, {base + step * rng.choice([1, 2, 4])}(r12)")
    return "\n".join(lines)

def _op_alu_mix(rng: random.Random, geometry) -> str:
    a, b, c = rng.sample(_SCRATCH, 3)
    offset = rng.randrange(0, READ_CHUNK)
    op = rng.choice(["add", "xor", "and", "or", "sub"])
    return (
        f"    lb   r{a}, {offset}(r12)\n"
        f"    {op}  r{b}, r{a}, r{c}\n"
        f"    andi r{c}, r{b}, 255"
    )

def _op_wrap_access(rng: random.Random, geometry) -> str:
    base_reg, data_reg = rng.sample(_SCRATCH, 2)
    base = _WRAP_BASE + rng.choice([0, 32, 56, 60, 62, 63])
    offset = rng.randrange(0, 8)
    kind = rng.random()
    setup = f"    li   r{base_reg}, {base}"
    if kind < 0.4:  # load across the top of the address space
        return f"{setup}\n    lw   r{data_reg}, {offset}(r{base_reg})"
    if kind < 0.8:  # store tainted data across the top
        load_off = rng.randrange(0, READ_CHUNK)
        return (
            f"{setup}\n"
            f"    lw   r{data_reg}, {load_off}(r12)\n"
            f"    sw   r{data_reg}, {offset}(r{base_reg})"
        )
    # clear across the top
    return f"{setup}\n    sw   r0, {offset}(r{base_reg})"

def _op_ctc_pressure(rng: random.Random, geometry) -> str:
    base_reg, data_reg = rng.sample(_SCRATCH, 2)
    lines = []
    for _ in range(rng.randrange(2, 5)):
        word = rng.randrange(0, 64)
        address = 0x0020_0000 + word * geometry.word_span
        lines.append(f"    li   r{base_reg}, {address}")
        lines.append(f"    lw   r{data_reg}, 0(r{base_reg})")
    return "\n".join(lines)

def _op_store_far(rng: random.Random, geometry) -> str:
    base_reg, data_reg = rng.sample(_SCRATCH, 2)
    page = rng.randrange(1, 32)
    address = 0x0030_0000 + page * geometry.page_size - rng.randrange(1, 4)
    load_off = rng.randrange(0, READ_CHUNK)
    return (
        f"    li   r{base_reg}, {address}\n"
        f"    lw   r{data_reg}, {load_off}(r12)\n"
        f"    sw   r{data_reg}, 0(r{base_reg})"
    )

def _op_read_more(rng: random.Random, geometry) -> str:
    target = rng.choice(
        [
            "buf",                      # overwrite (taint or re-taint)
            f"{0x0030_0000 + rng.randrange(0, 4) * geometry.page_size - 2}",
            f"{_WRAP_BASE + 60}",       # taint arriving across the wrap
        ]
    )
    length = rng.choice([0, 1, 7, READ_CHUNK])  # 0: zero-length hazard
    return (
        "    li   r3, 1              # READ(fd, target, len)\n"
        "    mv   r4, r10\n"
        f"    li   r5, {target}\n"
        f"    li   r6, {length}\n"
        "    syscall"
    )

def _op_pingpong(rng: random.Random, geometry) -> str:
    reg = rng.choice(_SCRATCH)
    offset = _boundary_offset(rng, geometry.domain_size, limit=256)
    return (
        f"    lw   r{reg}, 0(r12)\n"
        f"    sw   r{reg}, {offset}(r12)\n"
        f"    sw   r0, {offset}(r12)\n"
        f"    sw   r0, 0(r12)"
    )


_OPERATIONS = (
    (_op_load_buf, 16),
    (_op_store_straddle, 16),
    (_op_clear_storm, 12),
    (_op_alu_mix, 10),
    (_op_wrap_access, 12),
    (_op_ctc_pressure, 10),
    (_op_store_far, 10),
    (_op_read_more, 8),
    (_op_pingpong, 8),
)


# ---------------------------------------------------------------- generator


def _sample_config(rng: random.Random) -> LatchConfig:
    return LatchConfig(
        domain_size=rng.choice([8, 16, 64, 64]),
        ctc_entries=rng.choice([1, 2, 4, 16]),
        tlb_entries=rng.choice([2, 4, 128]),
        use_tlb_bits=rng.random() < 0.85,
    )


def generate_program(
    seed: int,
    length: Optional[int] = None,
    config: Optional[LatchConfig] = None,
) -> CheckProgram:
    """Generate one hazard-biased program from ``seed``.

    Args:
        seed: generator seed; fully determines the program, payload,
            configuration, and timeout set.
        length: number of body operations (default: seeded 6–24).
        config: LATCH configuration override (default: seeded sample
            across domain sizes / CTC / TLB capacities).
    """
    rng = random.Random(seed)
    if length is None:
        length = rng.randrange(6, 25)
    if config is None:
        config = _sample_config(rng)
    geometry = config.geometry()

    ops, weights = zip(*_OPERATIONS)
    body = tuple(
        rng.choices(ops, weights=weights, k=1)[0](rng, geometry)
        for _ in range(length)
    )
    reads = 1 + sum(op.count("syscall") for op in body)
    payload = bytes(
        rng.randrange(1, 256) for _ in range(READ_CHUNK * reads)
    )
    timeouts = tuple(sorted(rng.sample([1, 3, 7, 50, 1000], k=2)))
    return CheckProgram(
        name=f"seed-{seed}",
        seed=seed,
        body=body,
        payload=payload,
        config=config,
        timeouts=timeouts,
    )


def config_to_dict(config: LatchConfig) -> Dict:
    """Serialisable view of a :class:`LatchConfig` (corpus format)."""
    return {
        "domain_size": config.domain_size,
        "page_size": config.page_size,
        "ctc_entries": config.ctc_entries,
        "tlb_entries": config.tlb_entries,
        "use_tlb_bits": config.use_tlb_bits,
    }


def config_from_dict(data: Dict) -> LatchConfig:
    """Inverse of :func:`config_to_dict`."""
    return LatchConfig(
        domain_size=int(data.get("domain_size", 64)),
        page_size=int(data.get("page_size", 4096)),
        ctc_entries=int(data.get("ctc_entries", 16)),
        tlb_entries=int(data.get("tlb_entries", 128)),
        use_tlb_bits=bool(data.get("use_tlb_bits", True)),
    )
