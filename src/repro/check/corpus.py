"""Regression-corpus serialisation (``tests/corpus/*.json``).

A corpus entry is a complete :class:`~repro.check.generator.
CheckProgram` — body operations, file payload, LATCH configuration and
S-LATCH timeouts — so replaying it needs no generator and no seed
stability guarantees.  Shrunk reproducers of every bug the fuzzer has
found get committed here; ``repro-check replay`` (and the test suite)
re-runs the whole directory through the oracle on every change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.check.generator import (
    CheckProgram,
    config_from_dict,
    config_to_dict,
)

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "corpus"

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def save_program(
    cp: CheckProgram, directory: Union[str, Path], note: str = ""
) -> Path:
    """Write ``cp`` as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{cp.name}.json"
    payload = {
        "version": FORMAT_VERSION,
        "name": cp.name,
        "seed": cp.seed,
        "note": note,
        "config": config_to_dict(cp.config),
        "timeouts": list(cp.timeouts),
        "payload_hex": cp.payload.hex(),
        "body": list(cp.body),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_program(path: Union[str, Path]) -> CheckProgram:
    """Load one corpus entry back into a :class:`CheckProgram`."""
    data = json.loads(Path(path).read_text())
    return CheckProgram(
        name=str(data["name"]),
        seed=int(data.get("seed", 0)),
        body=tuple(data["body"]),
        payload=bytes.fromhex(data.get("payload_hex", "")),
        config=config_from_dict(data.get("config", {})),
        timeouts=tuple(data.get("timeouts", (1, 50))),
    )


def load_corpus(directory: Union[str, Path] = DEFAULT_CORPUS) -> List[CheckProgram]:
    """Load every ``*.json`` reproducer in ``directory`` (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_program(path) for path in sorted(directory.glob("*.json"))]
