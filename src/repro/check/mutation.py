"""Mutation self-test: prove the oracle can actually catch bugs.

A checker that never fires is indistinguishable from a checker that
works.  This module injects a *known* soundness bug — an off-by-one in a
copy of the coarse update walk that silently drops the final domain of
any multi-domain tag write — and demonstrates that the fuzzing harness
(a) detects it and (b) shrinks the failing program to a small
reproducer.  The real :class:`~repro.core.latch.LatchModule` is never
touched; the buggy subclass is confined to this test path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.check.generator import CheckProgram, generate_program
from repro.check.oracle import OracleReport, check_program
from repro.check.shrink import shrink_program
from repro.core.latch import LatchModule, _MASK32

#: Oracle paths used by the self-test — the mutant only substitutes the
#: core module, so only core-mirror (and its invariants) can see it.
SELFTEST_PATHS = ("core",)


class BuggyLatchModule(LatchModule):
    """A LatchModule whose update walk drops the last straddled domain.

    The mutation models the classic boundary bug the tentpole exists to
    catch: a store straddling two taint domains only sets the coarse bit
    of the first.  Any later access confined to the dropped domain then
    sees a clean coarse state over tainted bytes — a false negative.
    """

    def update_memory_tags(self, address, tags, defer_clear=True,
                           clean_oracle=None):
        if tags:
            masked = address & _MASK32
            size = self.geometry.domain_size
            first = masked // size
            last = (masked + len(tags) - 1) // size
            if last != first:
                # Off-by-one: stop the walk one domain early, dropping
                # the tag bytes that land in the final domain.
                tags = tags[: last * size - masked]
        super().update_memory_tags(
            address, tags, defer_clear=defer_clear, clean_oracle=clean_oracle
        )


@dataclass
class SelfTestResult:
    """Outcome of one mutation self-test."""

    detected: bool
    seed: Optional[int] = None
    seeds_tried: int = 0
    original: Optional[CheckProgram] = None
    shrunk: Optional[CheckProgram] = None
    report: Optional[OracleReport] = None

    @property
    def shrunk_instructions(self) -> int:
        """Assembled instruction count of the shrunk reproducer."""
        return self.shrunk.instruction_count() if self.shrunk else 0


def run_selftest(
    start_seed: int = 0, max_seeds: int = 50, shrink: bool = True
) -> SelfTestResult:
    """Fuzz with the buggy module until the oracle fires, then shrink.

    Returns a :class:`SelfTestResult`; ``detected`` is False only if
    ``max_seeds`` seeds all pass — which would mean the harness cannot
    see an intentionally planted false negative and must itself be
    treated as broken.
    """
    for offset in range(max_seeds):
        seed = start_seed + offset
        cp = generate_program(seed)
        report = check_program(cp, paths=SELFTEST_PATHS, latch_cls=BuggyLatchModule)
        if report.ok:
            continue
        result = SelfTestResult(
            detected=True,
            seed=seed,
            seeds_tried=offset + 1,
            original=cp,
            report=report,
        )
        if shrink:
            result.shrunk = shrink_program(
                cp,
                report.violations[0],
                paths=SELFTEST_PATHS,
                latch_cls=BuggyLatchModule,
            )
        return result
    return SelfTestResult(detected=False, seeds_tried=max_seeds)
