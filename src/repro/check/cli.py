"""``repro-check`` — drive the soundness oracle from the command line.

Subcommands:

* ``fuzz`` — generate and check N seeded programs across every gated
  path; on failure, shrink the reproducer and write it out as a corpus
  JSON (CI uploads these as artifacts).
* ``replay`` — re-run the committed regression corpus through the
  oracle (the bounded CI job and the pre-commit smoke).
* ``selftest`` — mutation self-validation: plant a known off-by-one in
  a copy of the update logic, confirm detection, and shrink.
* ``workloads`` — the production-zoo soundness pass: artifact
  invariants for every service-engine profile, the replay round-trip,
  and one differential-oracle program per engine family.

Exit status is non-zero whenever a violation (or a failed self-test)
occurs, so every mode is CI-gateable.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.check.corpus import DEFAULT_CORPUS, load_corpus, save_program
from repro.check.generator import generate_program
from repro.check.oracle import ALL_PATHS, check_program
from repro.check.shrink import shrink_program


def _add_fuzz(subparsers) -> None:
    parser = subparsers.add_parser(
        "fuzz", help="generate and check seeded random programs"
    )
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of programs to generate (default 50)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--time-budget", type=float, default=0.0,
                        help="stop after this many seconds (0 = no limit)")
    parser.add_argument("--out", type=Path, default=Path("check-failures"),
                        help="directory for shrunk failing programs")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without delta-debugging them")
    parser.add_argument("--stats-out", type=Path, default=None,
                        help="write aggregated streaming-path queue/stall "
                             "metrics to this JSON file")
    parser.add_argument("--paths", default=None, metavar="PATH[,PATH...]",
                        help="restrict checking to these oracle paths "
                             f"(default all: {','.join(ALL_PATHS)})")


def _add_replay(subparsers) -> None:
    parser = subparsers.add_parser(
        "replay", help="re-run the committed regression corpus"
    )
    parser.add_argument("--corpus", type=Path, default=DEFAULT_CORPUS,
                        help=f"corpus directory (default {DEFAULT_CORPUS})")
    parser.add_argument("--stats-out", type=Path, default=None,
                        help="write aggregated streaming-path queue/stall "
                             "metrics to this JSON file")


def _add_selftest(subparsers) -> None:
    parser = subparsers.add_parser(
        "selftest", help="mutation self-validation of the oracle"
    )
    parser.add_argument("--max-seeds", type=int, default=50,
                        help="seeds to try before declaring failure")
    parser.add_argument("--max-instructions", type=int, default=25,
                        help="shrunk reproducer size budget")


def _add_workloads(subparsers) -> None:
    parser = subparsers.add_parser(
        "workloads", help="soundness pass over the workload-engine zoo"
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for engines and family programs")
    parser.add_argument("--names", default=None, metavar="NAME[,NAME...]",
                        help="restrict to these workload names "
                             "(default: the full service suite)")
    parser.add_argument("--epoch-scale", type=int, default=200_000,
                        help="epoch-stream budget per workload")
    parser.add_argument("--trace-window", type=int, default=20_000,
                        help="access-trace window per workload")
    parser.add_argument("--paths", default=None, metavar="PATH[,PATH...]",
                        help="restrict family programs to these oracle "
                             f"paths (default all: {','.join(ALL_PATHS)})")


def _stream_registry(args):
    """A shared registry for ``--stats-out`` aggregation (or None)."""
    if getattr(args, "stats_out", None) is None:
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _resolve_paths(args):
    """Validate a ``--paths`` selection against :data:`ALL_PATHS`."""
    raw = getattr(args, "paths", None)
    if raw is None:
        return ALL_PATHS
    chosen = tuple(name.strip() for name in raw.split(",") if name.strip())
    unknown = [name for name in chosen if name not in ALL_PATHS]
    if unknown or not chosen:
        raise SystemExit(
            f"error: unknown oracle path(s) {', '.join(unknown) or '(none)'} "
            f"(available: {', '.join(ALL_PATHS)})"
        )
    return chosen


def _write_stats(args, registry, meta) -> None:
    if registry is None:
        return
    snapshot = registry.snapshot()
    snapshot.meta.update(meta)
    args.stats_out.parent.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so a crash (or a parallel reader in CI) never
    # observes a partial artifact at the published path.
    scratch = args.stats_out.with_name(args.stats_out.name + ".tmp")
    scratch.write_text(snapshot.to_json(indent=2) + "\n")
    os.replace(scratch, args.stats_out)
    print(f"wrote streaming queue metrics -> {args.stats_out}")


def _cmd_fuzz(args) -> int:
    failures = 0
    checked = 0
    started = time.monotonic()
    stream_obs = _stream_registry(args)
    paths = _resolve_paths(args)
    for offset in range(args.seeds):
        if args.time_budget and time.monotonic() - started > args.time_budget:
            print(f"time budget reached after {checked} seeds")
            break
        seed = args.start_seed + offset
        cp = generate_program(seed)
        report = check_program(cp, paths=paths, stream_obs=stream_obs)
        checked += 1
        if report.ok:
            continue
        failures += 1
        first = report.violations[0]
        print(f"seed {seed}: {first}")
        if not args.no_shrink:
            shrunk = shrink_program(cp, first)
            path = save_program(shrunk, args.out, note=str(first))
            print(
                f"  shrunk to {len(shrunk.body)} ops / "
                f"{shrunk.instruction_count()} instructions -> {path}"
            )
        else:
            path = save_program(cp, args.out, note=str(first))
            print(f"  saved unshrunk -> {path}")
    elapsed = time.monotonic() - started
    print(f"checked {checked} programs in {elapsed:.1f}s: "
          f"{failures} failing")
    _write_stats(args, stream_obs, {
        "command": "fuzz",
        "programs": checked,
        "start_seed": args.start_seed,
        "paths": ",".join(paths),
    })
    return 1 if failures else 0


def _cmd_replay(args) -> int:
    programs = load_corpus(args.corpus)
    if not programs:
        print(f"no corpus entries under {args.corpus}")
        return 0
    failures = 0
    stream_obs = _stream_registry(args)
    for cp in programs:
        report = check_program(cp, paths=ALL_PATHS, stream_obs=stream_obs)
        status = "ok" if report.ok else "FAIL"
        print(f"{cp.name}: {status} ({report.runs} runs)")
        for violation in report.violations:
            failures += 1
            print(f"  {violation}")
    print(f"replayed {len(programs)} corpus programs: {failures} violations")
    _write_stats(args, stream_obs, {
        "command": "replay",
        "programs": len(programs),
    })
    return 1 if failures else 0


def _cmd_selftest(args) -> int:
    from repro.check.mutation import run_selftest

    result = run_selftest(max_seeds=args.max_seeds)
    if not result.detected:
        print(f"SELFTEST FAILED: planted bug not detected in "
              f"{result.seeds_tried} seeds")
        return 1
    first = result.report.violations[0]
    print(f"planted bug detected at seed {result.seed} "
          f"({result.seeds_tried} seeds tried): {first}")
    if result.shrunk is None:
        print("shrinking skipped")
        return 0
    count = result.shrunk_instructions
    print(f"shrunk reproducer: {len(result.shrunk.body)} body ops, "
          f"{count} instructions")
    if count > args.max_instructions:
        print(f"SELFTEST FAILED: reproducer exceeds "
              f"{args.max_instructions}-instruction budget")
        return 1
    return 0


def _cmd_workloads(args) -> int:
    from repro.check.workloads import run_workloads

    names = None
    if args.names:
        names = [name.strip() for name in args.names.split(",")
                 if name.strip()]
    failures = run_workloads(
        seed=args.seed,
        names=names,
        paths=_resolve_paths(args),
        epoch_scale=args.epoch_scale,
        trace_window=args.trace_window,
    )
    print(f"workload zoo soundness pass: {failures} violations")
    return 1 if failures else 0


def cli(argv=None) -> int:
    """Console entry point (``repro-check``)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Differential soundness checking of the LATCH stack",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_fuzz(subparsers)
    _add_replay(subparsers)
    _add_selftest(subparsers)
    _add_workloads(subparsers)
    args = parser.parse_args(argv)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "workloads":
        return _cmd_workloads(args)
    return _cmd_selftest(args)


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(cli())


if __name__ == "__main__":  # pragma: no cover
    main()
