"""Soundness pass over the production workload zoo.

Two layers of checking, both deterministic by seed:

**Artifact invariants** — every registered engine profile must emit an
``EpochStream`` that sums exactly to the requested budget, an
``AccessTrace`` whose taint column matches the layout ground truth
(``layout.bytes_tainted``), and coarse flags that are a superset of the
precise ones at every domain size — the same no-false-negatives
contract the differential oracle enforces on executed programs.

**Family programs** — one handwritten toy-ISA program per engine
family (key-value, request-parse, image-serve), each exercising the
family's characteristic access pattern (hot-slab GET/SET mixes,
byte-sequential header scans with mid-parse reads, far-page bodies
with page-straddling tainted metadata), run through the full
differential oracle (:func:`repro.check.oracle.check_program`) across
every gated path with zero violations expected.

A replay round-trip check rides along: a recorded engine trace must
survive ``columnar bytes -> TraceReplayWorkload -> access_trace`` bit
for bit at the recorded scale.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.check.generator import READ_CHUNK, CheckProgram
from repro.check.oracle import ALL_PATHS, OracleReport, check_program

#: Domain sizes the coarse-superset invariant is checked at.
_DOMAIN_SIZES = (64, 4096)


# ------------------------------------------------------ family programs


def kv_program(seed: int = 0) -> CheckProgram:
    """Key-value family: GET/SET/DELETE over a slab, one hot key."""
    rng = random.Random(seed)
    slab = 128  # value slab lives past the tainted read buffer
    hot = slab  # the Zipf head: most requests touch this slot
    body: List[str] = []
    for request in range(10):
        key = rng.randrange(0, READ_CHUNK - 4)
        slot = hot if rng.random() < 0.6 else slab + 4 * rng.randrange(1, 32)
        verb = rng.random()
        if verb < 0.35:  # SET: tainted value lands in the slab
            body.append(
                f"    lw   r1, {key}(r12)\n"
                f"    sw   r1, {slot}(r12)"
            )
        elif verb < 0.85:  # GET: read the slab, hash the value
            body.append(
                f"    lw   r2, {slot}(r12)\n"
                f"    andi r7, r2, 255"
            )
        else:  # DELETE: clear the slot
            body.append(f"    sw   r0, {slot}(r12)")
    payload = bytes(rng.randrange(1, 256) for _ in range(READ_CHUNK))
    return CheckProgram(
        name=f"kv-family-{seed}", seed=seed, body=tuple(body),
        payload=payload,
    )


def parse_program(seed: int = 0) -> CheckProgram:
    """Request-parse family: sequential header scan, mid-parse read."""
    rng = random.Random(seed)
    body: List[str] = []
    # First header: byte-sequential scan of the tainted buffer.
    for offset in range(0, 16):
        body.append(
            f"    lbu  r1, {offset}(r12)\n"
            f"    add  r7, r7, r1"
        )
    # The next request arrives mid-parse (pipelined connection).
    body.append(
        "    li   r3, 1              # READ(fd, buf, 64)\n"
        "    mv   r4, r10\n"
        "    li   r5, buf\n"
        f"    li   r6, {READ_CHUNK}\n"
        "    syscall"
    )
    # Second header: scan the re-tainted bytes, copy a token out.
    for offset in range(16, 28):
        body.append(
            f"    lbu  r2, {offset}(r12)\n"
            f"    add  r8, r8, r2"
        )
    body.append(
        "    lhu  r9, 30(r12)\n"
        "    sh   r9, 200(r12)\n"
        "    sw   r0, 200(r12)"
    )
    reads = 1 + sum(op.count("syscall") for op in body)
    payload = bytes(
        rng.randrange(1, 256) for _ in range(READ_CHUNK * reads)
    )
    return CheckProgram(
        name=f"parse-family-{seed}", seed=seed, body=tuple(body),
        payload=payload,
    )


def image_program(seed: int = 0) -> CheckProgram:
    """Image family: tainted metadata, far clean body, straddle copy."""
    rng = random.Random(seed)
    page = 4096
    body: List[str] = [
        # Parse the tainted metadata block (dimensions, palette).
        "    lw   r1, 0(r12)\n"
        "    lhu  r2, 4(r12)\n"
        "    lbu  r7, 6(r12)",
    ]
    # Stream the large clean body: touches far pages the taint map has
    # never seen (the near-taint false-positive fuel at page domains).
    for _ in range(6):
        address = 0x0030_0000 + rng.randrange(1, 24) * page
        body.append(
            f"    li   r13, {address}\n"
            f"    sw   r0, 0(r13)\n"
            f"    lw   r8, 0(r13)"
        )
    # Tainted metadata copied across a page boundary, then cleared —
    # the chained coarse update the paper's Figure 12 worries about.
    straddle = 0x0030_0000 + page - 2
    body.append(
        f"    li   r14, {straddle}\n"
        "    lw   r9, 8(r12)\n"
        "    sw   r9, 0(r14)\n"
        "    sw   r0, 0(r14)"
    )
    payload = bytes(rng.randrange(1, 256) for _ in range(READ_CHUNK))
    return CheckProgram(
        name=f"image-family-{seed}", seed=seed, body=tuple(body),
        payload=payload,
    )


#: One differential-oracle program per engine family.
ENGINE_FAMILY_PROGRAMS: Dict[str, Callable[[int], CheckProgram]] = {
    "kv": kv_program,
    "parse": parse_program,
    "image": image_program,
}


# --------------------------------------------------- artifact invariants


def check_engine_artifacts(
    name: str,
    seed: int = 0,
    epoch_scale: int = 200_000,
    trace_window: int = 20_000,
) -> List[str]:
    """Invariant sweep over one workload's emitted artifacts.

    Returns human-readable violation strings (empty means sound).
    """
    from repro.workloads import make_generator

    failures: List[str] = []

    def bad(detail: str) -> None:
        failures.append(f"{name}: {detail}")

    generator = make_generator(name, seed=seed)
    stream = generator.epoch_stream(epoch_scale)
    total = int(stream.lengths.sum())
    if total != epoch_scale:
        bad(f"epoch stream sums to {total}, requested {epoch_scale}")
    if len(stream.lengths) and int(stream.lengths.min()) < 1:
        bad("epoch stream contains a non-positive epoch length")
    if (stream.tainted_counts < 0).any():
        bad("negative tainted count in epoch stream")
    if (stream.tainted_counts > stream.lengths).any():
        bad("epoch has more tainted marks than instructions")

    layout = generator.layout()
    trace = generator.access_trace(trace_window)
    expected = layout.bytes_tainted(trace.addresses)
    if not np.array_equal(trace.tainted, expected):
        drift = int((trace.tainted != expected).sum())
        bad(f"trace taint column disagrees with layout on {drift} accesses")
    if bool((trace.tainted & ~trace.active_epoch).any()):
        bad("tainted access outside a taint-active epoch")
    if len(trace.gap_before) and int(trace.gap_before.min()) < 0:
        bad("negative instruction gap in access trace")
    sizes = set(np.unique(trace.sizes).tolist())
    if not sizes <= {1, 2, 4}:
        bad(f"unsupported access sizes {sorted(sizes - {1, 2, 4})}")
    for domain in _DOMAIN_SIZES:
        coarse = trace.coarse_flags(domain)
        if bool((trace.tainted & ~coarse).any()):
            bad(f"coarse flags at domain {domain} miss a tainted access"
                " (false negative)")

    # Determinism: the same (name, seed) must replay bit-identically.
    twin = make_generator(name, seed=seed)
    twin_stream = twin.epoch_stream(epoch_scale)
    if not (np.array_equal(stream.lengths, twin_stream.lengths)
            and np.array_equal(stream.tainted_counts,
                               twin_stream.tainted_counts)):
        bad("epoch stream is not deterministic by seed")
    twin_trace = twin.access_trace(trace_window)
    if not np.array_equal(trace.addresses, twin_trace.addresses):
        bad("access trace is not deterministic by seed")
    return failures


def check_replay_roundtrip(seed: int = 0, window: int = 20_000) -> List[str]:
    """Engine trace -> columnar bytes -> replay must be bit-identical."""
    from repro.trace import columnar_trace_bytes
    from repro.workloads import TraceReplayWorkload, make_generator

    failures: List[str] = []
    recorded = make_generator("kv-cache", seed=seed).access_trace(window)
    replay = TraceReplayWorkload(columnar_trace_bytes(recorded))
    replayed = replay.access_trace(recorded.total_instructions)
    for column in ("addresses", "sizes", "is_write", "tainted",
                   "gap_before", "active_epoch"):
        if not np.array_equal(getattr(recorded, column),
                              getattr(replayed, column)):
            failures.append(
                f"replay round-trip diverged on column {column!r}"
            )
    doubled = replay.epoch_stream(2 * recorded.total_instructions + 7)
    if int(doubled.lengths.sum()) != 2 * recorded.total_instructions + 7:
        failures.append("tiled replay stream missed the requested total")
    return failures


# ----------------------------------------------------------- entry point


def run_workloads(
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
    paths: Sequence[str] = ALL_PATHS,
    epoch_scale: int = 200_000,
    trace_window: int = 20_000,
    stream_obs=print,
) -> int:
    """The full zoo soundness pass; returns the count of failures."""
    from repro.workloads import SERVICE_SUITE

    names = list(names) if names is not None else list(SERVICE_SUITE)
    failures = 0

    for name in names:
        problems = check_engine_artifacts(
            name, seed=seed,
            epoch_scale=epoch_scale, trace_window=trace_window,
        )
        failures += len(problems)
        verdict = "ok" if not problems else f"{len(problems)} violation(s)"
        stream_obs(f"artifacts  {name:<14} {verdict}")
        for problem in problems:
            stream_obs(f"  ! {problem}")

    problems = check_replay_roundtrip(seed=seed, window=trace_window)
    failures += len(problems)
    stream_obs("replay     round-trip     "
               + ("ok" if not problems else "DIVERGED"))
    for problem in problems:
        stream_obs(f"  ! {problem}")

    report = OracleReport()
    for family, builder in ENGINE_FAMILY_PROGRAMS.items():
        program = builder(seed)
        result = check_program(program, paths=paths)
        report.programs_checked += result.programs_checked
        report.runs += result.runs
        report.violations.extend(result.violations)
        verdict = "ok" if result.ok else f"{len(result.violations)} violation(s)"
        stream_obs(f"oracle     {family:<14} {verdict} ({result.runs} runs)")
        for violation in result.violations:
            stream_obs(f"  ! {violation}")
    failures += len(report.violations)
    return failures
