"""The differential soundness oracle.

Each program runs once under a byte-precise reference
:class:`repro.dift.DIFTEngine`, then once per LATCH-gated path.  Two
families of properties are asserted:

**No false negatives** (per step, Figure 1): whenever the precise state
says an operand is tainted, the coarse check of the same operand must
have said "possibly tainted".  A single miss breaks DIFT's accuracy, so
every miss is a reportable :class:`SoundnessViolation`, never a tolerable
approximation error.

**Equivalent outcomes** (per run): the gated systems must finish with
the reference's alerts, shadow memory, and taint register file — the
same signature the long-standing differential tests use.

In addition, :meth:`repro.core.latch.LatchModule.check_invariants` runs
after every committed instruction on the core-mirror and H-LATCH paths
(checked mode), so CTT/CTC/TLB incoherence is caught at the step that
introduces it rather than at the end of the run.

The ``stream`` path runs the program through the full
:class:`repro.pipeline.StreamingPipeline` once per gating backend
(scalar and vector), honouring any ``REPRO_PIPELINE_*`` environment
knobs; with sampling inactive it must reproduce the reference
signature, and the coarse-vs-precise invariants must hold either way.

The ``columnar`` path is the object-vs-columnar differential: the
recorded ``.ltrace`` event container must replay to the reference
signature, and the sharded columnar access replay
(:mod:`repro.trace.replay`) must reproduce the scalar per-access
H-LATCH counters bit for bit under an adversarial shard plan.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.check.generator import CheckProgram
from repro.core.latch import CheckLevel, InvariantViolation, LatchModule
from repro.dift.engine import DIFTEngine
from repro.hlatch.machine import HLatchMonitor
from repro.machine.cpu import ExecutionError
from repro.machine.events import InputEvent, Observer, OutputEvent, StepEvent

#: Step budget per run; generated programs are straight-line and short,
#: so this is a crash guard rather than a tuning knob.
MAX_STEPS = 200_000

#: Paths the oracle exercises (``check_program``'s default).
ALL_PATHS = ("core", "slatch", "hlatch", "kernels", "stream", "columnar")


@dataclass(frozen=True)
class SoundnessViolation:
    """One observed violation of the no-false-negatives contract."""

    kind: str        # stable identifier, the shrinker's predicate
    path: str        # which gated path produced it
    detail: str      # human-readable specifics (addresses, steps, ...)
    program: str = ""  # name of the offending program

    def __str__(self) -> str:
        return f"[{self.kind}] {self.path}: {self.detail}"


@dataclass
class OracleReport:
    """Aggregate outcome of checking one or more programs."""

    programs_checked: int = 0
    runs: int = 0
    violations: List[SoundnessViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "OracleReport") -> None:
        self.programs_checked += other.programs_checked
        self.runs += other.runs
        self.violations.extend(other.violations)


# ----------------------------------------------------------------- helpers


def state_signature(engine: DIFTEngine):
    """Alerts + tainted bytes + TRF tags — the equivalence fingerprint."""
    return (
        [(alert.kind, alert.pc) for alert in engine.alerts],
        list(engine.shadow.iter_tainted_bytes()),
        [engine.trf.get(register) for register in range(16)],
    )


def _run(cpu) -> None:
    try:
        cpu.run(MAX_STEPS)
    except ExecutionError:
        pass


class _TraceCollector(Observer):
    """Records every committed memory access (for kernel replays)."""

    def __init__(self) -> None:
        self.addresses: List[int] = []
        self.sizes: List[int] = []
        self.writes: List[bool] = []

    def on_step(self, event: StepEvent) -> None:
        for access in event.memory_accesses:
            self.addresses.append(access.address)
            self.sizes.append(access.size)
            self.writes.append(access.is_write)


# --------------------------------------------------------------- reference


def run_reference(cp: CheckProgram) -> Tuple[DIFTEngine, _TraceCollector]:
    """Byte-precise DIFT run; returns the engine and the access trace."""
    cpu = cp.make_cpu()
    trace = _TraceCollector()
    engine = DIFTEngine()
    cpu.attach(trace)
    cpu.attach(engine)
    _run(cpu)
    return engine, trace


# ------------------------------------------------------------- core mirror


class CoreMirror(Observer):
    """Precise DIFT with a passive :class:`LatchModule` shadowing it.

    The mirror drives the core module exactly as an integration would —
    coarse check before propagation, coarse update on every precise tag
    write — but performs no gating, so the engine's outcome is by
    construction the reference outcome.  What it adds is *checking*:
    per-operand no-false-negative asserts and per-step
    ``check_invariants`` in checked mode.
    """

    def __init__(
        self,
        cp: CheckProgram,
        defer_clear: bool,
        latch_cls: Callable[..., LatchModule] = LatchModule,
        reconcile_every: int = 13,
        checked: bool = True,
    ) -> None:
        self.engine = DIFTEngine()
        self.latch = latch_cls(cp.config)
        self.defer_clear = defer_clear
        self.reconcile_every = reconcile_every
        self.checked = checked
        self.violations: List[SoundnessViolation] = []
        self._mode = "deferred" if defer_clear else "immediate"
        self._steps = 0
        self.engine.add_tag_listener(self._on_tag_write)

    # ------------------------------------------------------------ observer

    def on_input(self, event: InputEvent) -> None:
        self.engine.on_input(event)

    def on_output(self, event: OutputEvent) -> None:
        self.engine.on_output(event)

    def on_step(self, event: StepEvent) -> None:
        self._steps += 1
        check = self.latch.check_step(event)
        # Register operands: precise-tainted must imply a TRF positive.
        if event.regs_read and self.engine.trf.any_tainted(event.regs_read):
            if not check.register_tainted:
                self._flag(
                    "core-missed-register",
                    f"step {self._steps} pc={event.pc:#x}: tainted register "
                    f"in {sorted(event.regs_read)} but TRF check was clean",
                )
        # Memory operands, pre-propagation (what commit-time logic sees).
        for access, result in zip(event.memory_accesses, check.memory_results):
            precise = self.engine.shadow.any_tainted(access.address, access.size)
            if precise and not result.coarse_tainted:
                self._flag(
                    "core-missed-memory",
                    f"step {self._steps} pc={event.pc:#x}: access "
                    f"{access.address:#x}+{access.size} precisely tainted "
                    f"but coarse check resolved clean at {result.level.value} "
                    f"({self._mode} clears)",
                )
        self.engine.on_step(event)
        if self.defer_clear and self._steps % self.reconcile_every == 0:
            self.latch.reconcile_clears(self.engine.shadow.region_clean)
        if self.checked:
            self._check_invariants()
        # The TRF mirrors the precise register tags between steps, the
        # way S-LATCH's strf resynchronisation maintains it.
        self.latch.set_trf_mask(self.engine.trf.register_mask())

    # ------------------------------------------------------------- wiring

    def _on_tag_write(self, address: int, tags: bytes) -> None:
        if self.defer_clear:
            self.latch.update_memory_tags(address, tags, defer_clear=True)
        else:
            self.latch.update_memory_tags(
                address,
                tags,
                defer_clear=False,
                clean_oracle=self.engine.shadow.region_clean,
            )

    def _check_invariants(self) -> None:
        try:
            self.latch.check_invariants(self.engine.shadow)
        except InvariantViolation as violation:
            self._flag(
                "invariant",
                f"step {self._steps}: {violation} ({self._mode} clears)",
            )

    def _flag(self, kind: str, detail: str) -> None:
        self.violations.append(
            SoundnessViolation(kind=kind, path=f"core-{self._mode}", detail=detail)
        )


def run_core_mirror(
    cp: CheckProgram,
    defer_clear: bool,
    latch_cls: Callable[..., LatchModule] = LatchModule,
) -> CoreMirror:
    """Run ``cp`` under the core-mirror checker; returns the mirror."""
    cpu = cp.make_cpu()
    mirror = CoreMirror(cp, defer_clear=defer_clear, latch_cls=latch_cls)
    cpu.attach(mirror)
    _run(cpu)
    if defer_clear:
        mirror.latch.reconcile_clears(mirror.engine.shadow.region_clean)
        if mirror.checked:
            mirror._check_invariants()
    return mirror


# ----------------------------------------------------------------- S-LATCH


def run_slatch(cp: CheckProgram, timeout: int):
    """Run ``cp`` under the full S-LATCH mode-switching system."""
    from repro.slatch.controller import SLatchSystem
    from repro.slatch.costs import SLatchCostModel

    cpu = cp.make_cpu()
    costs = dataclasses.replace(SLatchCostModel(), timeout_instructions=timeout)
    system = SLatchSystem(cpu, latch_config=cp.config, costs=costs)
    _run(cpu)
    return system


# ----------------------------------------------------------------- H-LATCH


class CheckedHLatchMonitor(HLatchMonitor):
    """H-LATCH monitor asserting per-access soundness and invariants."""

    def __init__(self, cpu, latch_config) -> None:
        super().__init__(cpu, latch_config=latch_config)
        self.violations: List[SoundnessViolation] = []
        self._steps = 0

    def on_step(self, event: StepEvent) -> None:
        self._steps += 1
        for access in event.memory_accesses:
            precise = self.engine.shadow.any_tainted(access.address, access.size)
            level = self.stack.access(access.address, access.size, access.is_write)
            if precise and level is not CheckLevel.PRECISE:
                self.violations.append(
                    SoundnessViolation(
                        kind="hlatch-missed",
                        path="hlatch",
                        detail=(
                            f"step {self._steps} pc={event.pc:#x}: access "
                            f"{access.address:#x}+{access.size} precisely "
                            f"tainted but resolved at {level.value}"
                        ),
                    )
                )
        self.engine.on_step(event)
        try:
            self.stack.latch.check_invariants(self.stack.shadow)
        except InvariantViolation as violation:
            self.violations.append(
                SoundnessViolation(
                    kind="invariant",
                    path="hlatch",
                    detail=f"step {self._steps}: {violation}",
                )
            )


def run_hlatch(cp: CheckProgram) -> CheckedHLatchMonitor:
    """Run ``cp`` under the checked H-LATCH stack."""
    cpu = cp.make_cpu()
    monitor = CheckedHLatchMonitor(cpu, latch_config=cp.config)
    _run(cpu)
    return monitor


# ---------------------------------------------------------------- streaming


def run_stream(cp: CheckProgram, backend: Optional[str] = None):
    """Run ``cp`` under the streaming pipeline (one gating backend).

    The configuration comes from :meth:`repro.pipeline.PipelineConfig.
    from_env`, so ``REPRO_PIPELINE_*`` knobs (queue shape, sampling)
    apply to oracle runs and corpus replays exactly as they would to a
    production run — a shrunk reproducer stays faithful under either
    execution mode.
    """
    from repro.pipeline import StreamingPipeline
    from repro.pipeline.config import PipelineConfig

    config = PipelineConfig.from_env()
    if backend is not None:
        config = config.replace(backend=backend)
    cpu = cp.make_cpu()
    pipeline = StreamingPipeline(cpu, latch_config=cp.config, config=config)
    _run(cpu)
    pipeline.finish()
    return pipeline


# ------------------------------------------------------------ kernel replay


def check_kernel_replay(
    cp: CheckProgram,
    engine: DIFTEngine,
    trace: _TraceCollector,
    latch_cls: Callable[..., LatchModule] = LatchModule,
) -> List[SoundnessViolation]:
    """Scalar-vs-vector replay of the reference trace, post-run state.

    Bulk-loads the final precise state into fresh modules and replays
    every access through ``check_memory`` (scalar reference semantics)
    and :func:`repro.kernels.replay.replay_check_memory` (the vector
    backend).  Flags and every mutated counter must match bit for bit,
    and both must be sound against the final shadow.
    """
    from repro.kernels.replay import replay_check_memory

    violations: List[SoundnessViolation] = []
    if not trace.addresses:
        return violations

    def fresh():
        latch = latch_cls(cp.config)
        latch.bulk_load_from_shadow(engine.shadow)
        return latch

    scalar = fresh()
    scalar_flags = [
        scalar.check_memory(address, size).coarse_tainted
        for address, size in zip(trace.addresses, trace.sizes)
    ]
    vector = fresh()
    vector_flags = replay_check_memory(
        vector,
        np.asarray(trace.addresses, dtype=np.int64),
        np.asarray(trace.sizes, dtype=np.int64),
    )

    if scalar_flags != list(vector_flags):
        first = next(
            index
            for index, (a, b) in enumerate(zip(scalar_flags, vector_flags))
            if a != bool(b)
        )
        violations.append(
            SoundnessViolation(
                kind="kernel-mismatch",
                path="kernels",
                detail=(
                    f"scalar/vector flag divergence at access {first} "
                    f"({trace.addresses[first]:#x}+{trace.sizes[first]})"
                ),
            )
        )

    def counters(latch):
        stats = latch.stats
        values = [
            stats.memory_checks, stats.resolved_by_tlb,
            stats.resolved_by_ctc, stats.sent_to_precise,
            latch.last_exception_address,
            latch.ctc.stats.accesses, latch.ctc.stats.hits,
            latch.ctc.stats.misses, latch.ctc.stats.evictions,
        ]
        if latch.tlb_bits is not None:
            values += [
                latch.tlb_bits.checks, latch.tlb_bits.hot_checks,
                latch.tlb_bits.tlb.stats.accesses,
                latch.tlb_bits.tlb.stats.hits,
                latch.tlb_bits.tlb.stats.misses,
                latch.tlb_bits.tlb.stats.evictions,
            ]
        return values

    if counters(scalar) != counters(vector):
        violations.append(
            SoundnessViolation(
                kind="kernel-counter-mismatch",
                path="kernels",
                detail=(
                    f"scalar {counters(scalar)} != vector {counters(vector)}"
                ),
            )
        )

    for index, (address, size) in enumerate(zip(trace.addresses, trace.sizes)):
        if engine.shadow.any_tainted(address, size) and not scalar_flags[index]:
            violations.append(
                SoundnessViolation(
                    kind="kernel-missed",
                    path="kernels",
                    detail=(
                        f"access {index} ({address:#x}+{size}) tainted in the "
                        "final shadow but replayed clean"
                    ),
                )
            )
            break
    return violations


# --------------------------------------------------------- columnar replay


def check_columnar(
    cp: CheckProgram,
    engine: DIFTEngine,
    trace: _TraceCollector,
    latch_cls: Callable[..., LatchModule] = LatchModule,
) -> List[SoundnessViolation]:
    """Object-pipeline vs columnar-sharded replay differential.

    Two halves.  **Events**: the program re-runs with a
    :class:`~repro.trace.record.TraceRecorder` attached, the recorded
    ``.ltrace`` bytes replay into a fresh byte-precise engine, and the
    final signature must match the live reference run — the container
    must be a faithful substitute for the object event stream.
    **Accesses**: the reference access trace replays through the scalar
    per-access H-LATCH stack and through
    :func:`~repro.trace.replay.shard_partial` /
    :func:`~repro.trace.replay.merge_partials` under an adversarial
    shard plan (uneven cuts, a single-access shard, and a deliberately
    empty shard); every published counter must agree bit for bit.
    """
    from repro.hlatch.system import HLatchSystem
    from repro.hlatch.taint_cache import HLATCH_TAINT_CACHE
    from repro.trace.record import TraceRecorder, replay_events
    from repro.trace.replay import merge_partials, shard_partial

    violations: List[SoundnessViolation] = []

    cpu = cp.make_cpu()
    recorder = TraceRecorder(name=cp.name)
    cpu.attach(recorder)
    _run(cpu)
    replayed = DIFTEngine()
    steps = replay_events(recorder.to_bytes(), replayed)
    if state_signature(replayed) != state_signature(engine):
        violations.append(
            SoundnessViolation(
                kind="columnar-event-divergence",
                path="columnar",
                detail=(
                    f"replaying the recorded event trace ({steps} steps) "
                    "diverges from the live reference run"
                ),
            )
        )

    if not trace.addresses:
        return violations

    def fresh_system() -> HLatchSystem:
        system = HLatchSystem(cp.config, HLATCH_TAINT_CACHE)
        system.latch = latch_cls(cp.config)
        system.latch.bulk_load_from_shadow(engine.shadow)
        return system

    scalar = fresh_system()
    for address, size, write in zip(trace.addresses, trace.sizes,
                                    trace.writes):
        scalar.access(address, size, write)

    n = len(trace.addresses)
    addresses = np.asarray(trace.addresses, dtype=np.int64)
    sizes = np.asarray(trace.sizes, dtype=np.int64)
    writes = np.asarray(trace.writes, dtype=bool)
    # Adversarial plan: uneven cuts, a single-access tail shard, and a
    # deliberately empty shard — the merge must be exact for all of them.
    bounds = [0, *sorted({n // 3, (2 * n) // 3, n - 1}), n]
    plan = [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]
    plan.insert(1, (bounds[1], bounds[1]))
    sharded = fresh_system()
    partials = [
        shard_partial(
            addresses[start:stop], sizes[start:stop], writes[start:stop],
            sharded.latch, sharded.tcache.config,
        )
        for start, stop in plan
    ]
    merge_partials(partials, sharded)

    scalar_metrics = {
        row["name"]: row for row in scalar.snapshot().to_dict()["metrics"]
    }
    sharded_metrics = {
        row["name"]: row for row in sharded.snapshot().to_dict()["metrics"]
    }
    if scalar_metrics != sharded_metrics:
        diverging = sorted(
            name
            for name in set(scalar_metrics) | set(sharded_metrics)
            if scalar_metrics.get(name) != sharded_metrics.get(name)
        )
        violations.append(
            SoundnessViolation(
                kind="columnar-counter-mismatch",
                path="columnar",
                detail=(
                    f"sharded merge over {len(plan)} shards diverges from "
                    f"the scalar stack on {', '.join(diverging)}"
                ),
            )
        )
    if (scalar.latch.last_exception_address
            != sharded.latch.last_exception_address):
        violations.append(
            SoundnessViolation(
                kind="columnar-counter-mismatch",
                path="columnar",
                detail=(
                    "last_exception_address differs: scalar "
                    f"{scalar.latch.last_exception_address!r} vs sharded "
                    f"{sharded.latch.last_exception_address!r}"
                ),
            )
        )
    return violations


# ------------------------------------------------------------ orchestration


def check_program(
    cp: CheckProgram,
    paths: Sequence[str] = ALL_PATHS,
    latch_cls: Callable[..., LatchModule] = LatchModule,
    stream_obs=None,
) -> OracleReport:
    """Run every requested path over ``cp`` and collect violations.

    ``latch_cls`` substitutes the core module on the ``core`` and
    ``kernels`` paths — the mutation self-test injects its known-buggy
    module this way (S-LATCH/H-LATCH, like the streaming pipeline,
    construct their own modules internally and always use the real
    one).  ``stream_obs``, if given, accumulates the streaming runs'
    queue/stall metrics (the ``repro-check --stats-out`` artifact).
    """
    report = OracleReport(programs_checked=1)
    reference, trace = run_reference(cp)
    report.runs += 1
    ref_signature = state_signature(reference)

    def check_signature(engine: DIFTEngine, path: str) -> None:
        if state_signature(engine) != ref_signature:
            report.violations.append(
                SoundnessViolation(
                    kind="final-divergence",
                    path=path,
                    detail="final alerts/shadow/TRF differ from reference",
                    program=cp.name,
                )
            )

    if "core" in paths:
        for defer_clear in (True, False):
            mirror = run_core_mirror(cp, defer_clear, latch_cls=latch_cls)
            report.runs += 1
            report.violations.extend(
                v.__class__(**{**v.__dict__, "program": cp.name})
                for v in mirror.violations
            )
            check_signature(mirror.engine, f"core-{mirror._mode}")

    if "slatch" in paths:
        for timeout in cp.timeouts:
            system = run_slatch(cp, timeout)
            report.runs += 1
            check_signature(system.engine, f"slatch-t{timeout}")
            try:
                system.latch.check_invariants(system.engine.shadow)
            except InvariantViolation as violation:
                report.violations.append(
                    SoundnessViolation(
                        kind="invariant",
                        path=f"slatch-t{timeout}",
                        detail=str(violation),
                        program=cp.name,
                    )
                )

    if "hlatch" in paths:
        monitor = run_hlatch(cp)
        report.runs += 1
        report.violations.extend(
            dataclasses.replace(v, program=cp.name)
            for v in monitor.violations
        )
        check_signature(monitor.engine, "hlatch")

    if "kernels" in paths:
        report.runs += 1
        report.violations.extend(
            dataclasses.replace(v, program=cp.name)
            for v in check_kernel_replay(cp, reference, trace, latch_cls=latch_cls)
        )

    if "columnar" in paths:
        report.runs += 1
        report.violations.extend(
            dataclasses.replace(v, program=cp.name)
            for v in check_columnar(cp, reference, trace, latch_cls=latch_cls)
        )

    if "stream" in paths:
        for backend in ("scalar", "vector"):
            pipeline = run_stream(cp, backend=backend)
            report.runs += 1
            if not pipeline.sampler.active:
                # Sampling deliberately trades coverage, so the final
                # state may legitimately under-approximate the
                # reference; the invariant check below still applies.
                check_signature(pipeline.engine, f"stream-{backend}")
            try:
                pipeline.latch.check_invariants(pipeline.engine.shadow)
            except InvariantViolation as violation:
                report.violations.append(
                    SoundnessViolation(
                        kind="invariant",
                        path=f"stream-{backend}",
                        detail=str(violation),
                        program=cp.name,
                    )
                )
            if stream_obs is not None:
                pipeline.accumulate_metrics(stream_obs)
    return report


def check_many(
    programs: Sequence[CheckProgram],
    paths: Sequence[str] = ALL_PATHS,
    stop_on_first: bool = False,
    stream_obs=None,
) -> OracleReport:
    """Check a batch of programs; optionally stop at the first failure."""
    report = OracleReport()
    for cp in programs:
        report.merge(check_program(cp, paths=paths, stream_obs=stream_obs))
        if stop_on_first and not report.ok:
            break
    return report
