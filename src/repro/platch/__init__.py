"""P-LATCH: LATCH-filtered parallel software DIFT (Section 5.2).

The baseline is a Log-Based Architecture (LBA) style 2-core monitor:
the monitored core extracts every committed instruction into a shared
FIFO queue; a second core runs the DIFT analysis over the queued
events.  Because analysing one event costs more than executing one
instruction, the queue saturates and the monitored core stalls — the
reported LBA overheads are 3.38x for the simple scheme and 36% for the
hardware-accelerated one.

P-LATCH puts the (unmodified) LATCH module on the monitored core and
enqueues *only* coarse-positive instructions, so the queue is empty for
the taint-free majority of execution.

Two models are provided, mirroring the paper's methodology:

* :func:`~repro.platch.model.analytic_platch` — the paper's analytical
  model: LBA's reported mean overheads localised to the taint-active
  periods (1000-instruction granularity);
* :class:`~repro.platch.queue_sim.TwoCoreQueueSimulator` — a
  discrete queue simulation exposing the stall mechanism itself.
"""

from repro.platch.lba import LBA_OPTIMIZED, LBA_SIMPLE, LbaParameters
from repro.platch.functional import PLatchCounters, PLatchSystem
from repro.platch.model import PLatchReport, analytic_platch
from repro.platch.pending import PendingEntry, PendingUpdateTracker
from repro.platch.queue_sim import QueueReport, TwoCoreQueueSimulator

__all__ = [
    "LBA_OPTIMIZED",
    "LBA_SIMPLE",
    "LbaParameters",
    "PLatchCounters",
    "PLatchReport",
    "PLatchSystem",
    "PendingEntry",
    "PendingUpdateTracker",
    "QueueReport",
    "TwoCoreQueueSimulator",
    "analytic_platch",
]
