"""Functional P-LATCH: a two-core monitored execution on the emulator.

The paper evaluates P-LATCH analytically; the reproduction additionally
*implements* it so the design can be checked end to end (Figure 11-b).
Since the streaming refactor, the implementation lives in
:mod:`repro.pipeline` — machine → LATCH gate → bounded queue → precise
DIFT, with real backpressure, stall accounting, and a sampling dial —
and this module keeps the long-standing whole-run API as a thin wrapper
configured for the classic cadence:

* scalar gating backend (``check_step`` per event, driving the CTC/TLB
  cost model at admission time);
* event-at-a-time gate batches (``gate_batch=1``);
* sampling disabled.

Under that configuration the wrapper reproduces the original
event-at-a-time P-LATCH loop decision for decision, so the long-standing
differential tests in ``tests/test_platch_functional.py`` pin the
pipeline to the seed behaviour.  See docs/PIPELINE.md for the pipeline
architecture and the knobs the wrapper deliberately does not expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.latch import LatchConfig
from repro.dift.policy import TaintPolicy
from repro.machine.cpu import CPU
from repro.pipeline.config import PipelineConfig, SamplingConfig
from repro.pipeline.pipeline import StreamingPipeline


@dataclass
class PLatchCounters:
    """Event accounting for the functional two-core system."""

    instructions: int = 0
    enqueued: int = 0
    drained: int = 0
    queue_full_stalls: int = 0
    pending_hits: int = 0

    @property
    def enqueue_fraction(self) -> float:
        """Fraction of instructions that entered the monitor queue."""
        if self.instructions == 0:
            return 0.0
        return self.enqueued / self.instructions


class PLatchSystem(StreamingPipeline):
    """LATCH-filtered two-core monitoring attached to one CPU.

    Args:
        cpu: the monitored machine.
        policy: DIFT policy for the monitor core.
        latch_config: LATCH structural parameters.
        queue_capacity: shared FIFO depth; a full queue forces an
            immediate partial drain (the producer stall of Figure 11).
        drain_batch: events the monitor processes per automatic drain.
    """

    def __init__(
        self,
        cpu: CPU,
        policy: Optional[TaintPolicy] = None,
        latch_config: Optional[LatchConfig] = None,
        queue_capacity: int = 256,
        drain_batch: int = 64,
    ) -> None:
        super().__init__(
            cpu,
            policy=policy,
            latch_config=latch_config,
            config=PipelineConfig(
                queue_capacity=queue_capacity,
                drain_batch=drain_batch,
                gate_batch=1,
                backend="scalar",
                sampling=SamplingConfig(),
            ),
        )

    @property
    def counters(self) -> PLatchCounters:
        """The classic counter view over the pipeline's accounting."""
        return PLatchCounters(
            instructions=self.stats.instructions,
            enqueued=self.stats.enqueued,
            drained=self.stats.drained,
            queue_full_stalls=self.stats.queue_full_stalls,
            pending_hits=self.gate.stats.pending_hits,
        )
