"""Functional P-LATCH: a two-core monitored execution on the emulator.

The paper evaluates P-LATCH analytically; this module additionally
*implements* it so the design can be checked end to end (Figure 11-b):

* the **monitored core** (the :class:`repro.machine.CPU` this system
  attaches to) carries the unmodified LATCH module.  Each committed
  instruction is coarse-checked; only instructions that *might* involve
  taint are placed in the shared FIFO queue:

  - a source register is tainted in the (conservative) TRF, or
  - a memory operand hits a coarsely tainted domain, or
  - a memory operand is covered by a queued-but-unprocessed update
    (the :class:`~repro.platch.pending.PendingUpdateTracker` guard the
    paper sketches for false-negative prevention), or
  - a written register is currently marked tainted (the instruction
    changes taint state by overwriting it).

* the **monitor core** drains the queue asynchronously, running the
  byte-precise DIFT engine over the queued events, propagating tags,
  raising alerts, and updating the CTT (which write-through keeps the
  CTC coherent); completed events retire their pending entries.

Because every instruction that could read, write, or clear taint is
enqueued, the skipped instructions provably cannot change taint state,
and the monitor's precise state equals an always-on tracker's
(differentially tested in ``tests/test_platch_functional.py``).
Detection is *delayed* by queue occupancy — the LBA trade-off — but
never lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.core.latch import LatchConfig, LatchModule
from repro.dift.engine import DIFTEngine
from repro.dift.policy import TaintPolicy
from repro.machine.cpu import CPU
from repro.machine.events import InputEvent, Observer, OutputEvent, StepEvent


@dataclass
class PLatchCounters:
    """Event accounting for the functional two-core system."""

    instructions: int = 0
    enqueued: int = 0
    drained: int = 0
    queue_full_stalls: int = 0
    pending_hits: int = 0

    @property
    def enqueue_fraction(self) -> float:
        """Fraction of instructions that entered the monitor queue."""
        if self.instructions == 0:
            return 0.0
        return self.enqueued / self.instructions


class PLatchSystem(Observer):
    """LATCH-filtered two-core monitoring attached to one CPU.

    Args:
        cpu: the monitored machine.
        policy: DIFT policy for the monitor core.
        latch_config: LATCH structural parameters.
        queue_capacity: shared FIFO depth; a full queue forces an
            immediate partial drain (the producer stall of Figure 11).
        drain_batch: events the monitor processes per automatic drain.
    """

    def __init__(
        self,
        cpu: CPU,
        policy: Optional[TaintPolicy] = None,
        latch_config: Optional[LatchConfig] = None,
        queue_capacity: int = 256,
        drain_batch: int = 64,
    ) -> None:
        from repro.platch.pending import PendingUpdateTracker

        self.cpu = cpu
        self.engine = DIFTEngine(policy)
        self.latch = LatchModule(latch_config)
        self.queue: Deque[Tuple[StepEvent, int]] = deque()
        self.queue_capacity = queue_capacity
        self.drain_batch = drain_batch
        self.pending = PendingUpdateTracker(capacity=4 * queue_capacity)
        self.counters = PLatchCounters()
        self.engine.add_tag_listener(self._on_tag_write)
        cpu.attach(self)

    # ------------------------------------------------------------ observer

    def on_input(self, event: InputEvent) -> None:
        """Taint sources are applied immediately (kernel-side stnt)."""
        self.engine.on_input(event)

    def on_output(self, event: OutputEvent) -> None:
        """Sink checks must see all prior propagation: drain first."""
        self.drain_all()
        self.engine.on_output(event)

    def on_step(self, event: StepEvent) -> None:
        self.counters.instructions += 1
        if self._needs_monitoring(event):
            self._enqueue(event)
        else:
            # Provably taint-free: sources clean, memory operands clean
            # and not pending, written registers already clean.  Nothing
            # for the monitor to see.
            pass
        if len(self.queue) >= self.drain_batch:
            self.drain(self.drain_batch)

    def on_halt(self, step_index: int) -> None:
        self.drain_all()

    # ------------------------------------------------------------- filter

    def _needs_monitoring(self, event: StepEvent) -> bool:
        check = self.latch.check_step(event)
        if check.coarse_tainted:
            return True
        for access in event.memory_accesses:
            if self.pending.covers(access.address, access.size):
                self.counters.pending_hits += 1
                return True
        for register in event.regs_written:
            if self.latch.trf.is_tainted(register):
                return True
        return False

    def _enqueue(self, event: StepEvent) -> None:
        if len(self.queue) >= self.queue_capacity:
            self.counters.queue_full_stalls += 1
            self.drain(self.drain_batch)
        sequence = -1
        for access in event.writes:
            pushed = self.pending.push(access.address, access.size)
            while pushed is None:
                self.drain(self.drain_batch)
                pushed = self.pending.push(access.address, access.size)
            sequence = pushed
        self.queue.append((event, sequence))
        self.counters.enqueued += 1
        # Conservative TRF: destinations of queued events count as
        # tainted until the monitor resolves them.
        for register in event.regs_written:
            self.latch.trf.taint(register)

    # ------------------------------------------------------------ monitor

    def drain(self, max_events: Optional[int] = None) -> int:
        """Run the monitor core over up to ``max_events`` queued events."""
        processed = 0
        while self.queue and (max_events is None or processed < max_events):
            event, sequence = self.queue.popleft()
            self.engine.on_step(event)
            if sequence >= 0:
                self.pending.retire(sequence)
            processed += 1
            self.counters.drained += 1
        if not self.queue:
            # Queue empty: resynchronise the conservative TRF with the
            # monitor's precise register taint (the strf path).
            self.latch.set_trf_mask(self.engine.trf.register_mask())
        return processed

    def drain_all(self) -> int:
        """Process every outstanding event."""
        return self.drain(None)

    # ------------------------------------------------------------- wiring

    def _on_tag_write(self, address: int, tags: bytes) -> None:
        self.latch.update_memory_tags(
            address,
            tags,
            defer_clear=False,
            clean_oracle=self.engine.shadow.region_clean,
        )

    @property
    def alerts(self) -> List:
        """Alerts raised by the monitor so far."""
        return self.engine.alerts
