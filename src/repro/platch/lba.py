"""LBA baseline parameters.

The paper takes the baseline overheads of the Log-Based Architecture
from Chen et al. [6, 7]: a mean 3.38x overhead for the simple 2-core
monitor and 36% for the version with hardware-accelerated event
processing.  Because event delivery is producer/consumer over a finite
queue, a sustained per-event analysis cost above one producer cycle
makes the steady-state overhead equal to the analysis-rate deficit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LbaParameters:
    """One LBA monitor configuration.

    Attributes:
        name: display name.
        mean_overhead: reported mean execution overhead over native
            (3.38 means 3.38x extra time, i.e. 4.38x total).
        queue_entries: capacity of the shared event FIFO.
        events_per_instruction: fraction of instructions producing a
            monitored event (1.0 — every committed instruction).
    """

    name: str
    mean_overhead: float
    queue_entries: int = 1024
    events_per_instruction: float = 1.0

    @property
    def analysis_cycles_per_event(self) -> float:
        """Monitor cost per event implied by the reported overhead.

        With the queue saturated, execution time is bounded by the
        monitor: ``events × c_m`` cycles against ``instructions × 1``
        native, so ``c_m = 1 + mean_overhead`` when every instruction
        produces one event.
        """
        return 1.0 + self.mean_overhead / self.events_per_instruction


#: The simple 2-core LBA monitor of [6]: mean 3.38x overhead.
LBA_SIMPLE = LbaParameters(name="lba-simple", mean_overhead=3.38)

#: The hardware-accelerated LBA of [7]: mean 36% overhead.
LBA_OPTIMIZED = LbaParameters(name="lba-optimized", mean_overhead=0.36)
