"""Analytical P-LATCH model (the paper's Section 6.2 methodology).

The paper integrates LBA's *reported* mean overheads into the S-LATCH
evaluation framework and "estimates performance with LATCH localizing
the overheads to periods of active propagation, measured at 1000
instruction granularity".  Concretely: execution is divided into
1000-instruction windows; windows containing taint activity (or

queue drain spill-over from one) pay the full LBA overhead, all other
windows run at native speed (the queue is empty, so the producer never
stalls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.platch.lba import LbaParameters, LBA_SIMPLE
from repro.workloads.trace import EpochStream

#: Monitoring-granularity window (instructions), per the paper.
MONITOR_WINDOW = 1_000


@dataclass
class PLatchReport:
    """P-LATCH overhead estimate for one benchmark (Figure 15)."""

    name: str
    baseline: str
    total_instructions: int
    monitored_instructions: int
    baseline_overhead: float

    @property
    def monitored_fraction(self) -> float:
        """Fraction of instructions inside monitored windows."""
        if self.total_instructions == 0:
            return 0.0
        return self.monitored_instructions / self.total_instructions

    @property
    def overhead(self) -> float:
        """Estimated overhead over native execution."""
        return self.baseline_overhead * self.monitored_fraction

    @property
    def speedup_vs_baseline(self) -> float:
        """Speedup over the always-on LBA baseline."""
        return (1.0 + self.baseline_overhead) / (1.0 + self.overhead)


def analytic_platch(
    stream: EpochStream,
    baseline: Optional[LbaParameters] = None,
    window: int = MONITOR_WINDOW,
) -> PLatchReport:
    """Estimate P-LATCH overhead by localising the LBA overhead.

    Execution is laid out on its instruction timeline and divided into
    fixed windows; every window that overlaps a taint-active epoch is
    monitored (pays the LBA overhead), every other window runs with an
    empty queue at native speed.
    """
    baseline = baseline if baseline is not None else LBA_SIMPLE
    lengths = stream.lengths
    tainted = stream.tainted_counts > 0
    total = int(lengths.sum())

    if not tainted.any() or total == 0:
        monitored = 0
    else:
        cumulative = np.concatenate(([0], np.cumsum(lengths)))
        starts = cumulative[:-1][tainted]
        ends = cumulative[1:][tainted] - 1
        first_window = starts // window
        last_window = ends // window
        covered = (last_window - first_window + 1).astype(np.int64)
        # Consecutive active epochs can share a window; epochs are in
        # timeline order, so overlap only happens pairwise.
        overlap = np.maximum(
            0, last_window[:-1] - first_window[1:] + 1
        ).astype(np.int64)
        distinct_windows = int(covered.sum() - overlap.sum())
        monitored = min(distinct_windows * window, total)

    return PLatchReport(
        name=stream.name,
        baseline=baseline.name,
        total_instructions=total,
        monitored_instructions=monitored,
        baseline_overhead=baseline.mean_overhead,
    )
