"""Discrete 2-core queue simulation for P-LATCH (Figure 11).

The analytic model reproduces the paper's numbers; this simulator
exposes the *mechanism*: a producer (the monitored core) appends one
event per selected instruction to a bounded FIFO, a consumer (the
monitor core) drains events at a fixed analysis cost, and the producer
stalls whenever the FIFO is full.

The simulation advances epoch by epoch using a Lindley-style backlog
recursion, so streams with millions of epochs complete in seconds while
remaining cycle-faithful in steady state:

* backlog grows by ``events × analysis_cycles`` per epoch and drains by
  the epoch's wall-clock duration;
* whenever the backlog exceeds the queue's cycle capacity, the producer
  stalls for the difference (that time is pure overhead).

Since the streaming refactor this model is no longer standalone: the
*measured* pipeline (:class:`repro.pipeline.StreamingPipeline`) runs the
identical recursion inline per committed instruction and exports its
event stream as an :class:`~repro.workloads.trace.EpochStream`, so
replaying that stream here reproduces the measurement — exactly at
epoch granularity 1, within a documented tolerance at coarser epochs
(:mod:`repro.pipeline.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.platch.lba import LbaParameters, LBA_SIMPLE
from repro.workloads.trace import EpochStream


@dataclass
class QueueReport:
    """Result of one 2-core queue simulation."""

    name: str
    baseline: str
    total_instructions: int
    events_enqueued: int
    stall_cycles: int
    filtered: bool

    @property
    def overhead(self) -> float:
        """Producer overhead over native execution."""
        if self.total_instructions == 0:
            return 0.0
        return self.stall_cycles / self.total_instructions

    @property
    def enqueue_fraction(self) -> float:
        """Fraction of instructions that produced a monitored event."""
        if self.total_instructions == 0:
            return 0.0
        return self.events_enqueued / self.total_instructions

    def publish_metrics(self, registry) -> None:
        """Publish the queue accounting into an obs registry."""
        registry.counter(
            "platch.queue.events_enqueued", unit="events",
            description="Events handed to the monitor core",
        ).set(self.events_enqueued)
        registry.counter(
            "platch.queue.stall_cycles", unit="cycles",
            description="Producer cycles lost to a full queue",
        ).set(self.stall_cycles)
        registry.counter(
            "platch.instructions", unit="instructions",
            description="Monitored-core instructions simulated",
        ).set(self.total_instructions)
        registry.gauge(
            "platch.queue.enqueue_frac", unit="fraction",
            description="Instructions producing a monitored event (§5.2)",
        ).set(self.enqueue_fraction)
        registry.gauge(
            "platch.overhead", unit="fraction",
            description="Producer stall overhead over native (Figure 15)",
        ).set(self.overhead)


class TwoCoreQueueSimulator:
    """Producer/consumer FIFO between monitored and monitor cores.

    Args:
        baseline: LBA configuration (queue size, analysis cost).
        filtered: if True, LATCH screening is active and only the
            coarse-positive instructions are enqueued; if False, every
            instruction is enqueued (the LBA baseline).
        fp_rate: coarse false positives per *taint-free* instruction
            (enqueued despite carrying no taint), from
            :func:`repro.slatch.simulator.measure_hw_rates`.
    """

    def __init__(
        self,
        baseline: Optional[LbaParameters] = None,
        filtered: bool = True,
        fp_rate: float = 0.0,
    ) -> None:
        self.baseline = baseline if baseline is not None else LBA_SIMPLE
        self.filtered = filtered
        self.fp_rate = fp_rate

    def run(self, stream: EpochStream, obs=None) -> QueueReport:
        """Simulate the stream; returns the stall accounting.

        With an ``obs`` :class:`repro.obs.MetricsRegistry`, the
        simulator additionally records the ``platch.queue.occupancy``
        histogram (end-of-epoch queue entries in use) and publishes the
        stall/enqueue counters; without one, the loop is untouched.
        """
        from repro.obs.queues import QueueInstruments

        analysis = self.baseline.analysis_cycles_per_event
        capacity_cycles = self.baseline.queue_entries * analysis
        instruments = (
            QueueInstruments(
                obs, "platch.queue",
                occupancy_description=(
                    "Monitor-queue entries in use at epoch ends"
                ),
            )
            if obs is not None
            else None
        )

        lengths = stream.lengths.astype(np.float64)
        marks = stream.tainted_counts.astype(np.float64)
        if self.filtered:
            # Taint-active epochs enqueue their taint-touching
            # instructions; taint-free instructions contribute only
            # coarse false positives.
            events = marks + (lengths - marks) * self.fp_rate
        else:
            events = lengths * self.baseline.events_per_instruction

        backlog = 0.0
        stall = 0.0
        total_events = float(events.sum())
        # Lindley recursion per epoch.
        work = events * analysis
        for index in range(len(lengths)):
            duration = lengths[index]
            backlog = backlog + work[index] - duration
            if backlog < 0.0:
                backlog = 0.0
            elif backlog > capacity_cycles:
                # Producer stalls until the backlog fits the queue again.
                stall += backlog - capacity_cycles
                backlog = capacity_cycles
            if instruments is not None:
                instruments.record_occupancy(backlog / analysis)
        # Whatever backlog remains delays completion of monitoring, but
        # not the producer; the paper charges producer-visible overhead
        # only, so it is not added to the stall count.

        report = QueueReport(
            name=stream.name,
            baseline=self.baseline.name,
            total_instructions=stream.total_instructions,
            events_enqueued=int(total_events),
            stall_cycles=int(stall),
            filtered=self.filtered,
        )
        if obs is not None:
            report.publish_metrics(obs)
        return report
