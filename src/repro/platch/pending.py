"""Outstanding-update tracking for P-LATCH (Section 5.2).

In P-LATCH the monitor core applies taint propagation *behind* the
monitored core: an instruction whose destination will become tainted
sits in the queue for a while before the CTT reflects it.  A dependent
instruction committed in that window would consult a stale coarse
state — a potential false negative.

The paper's fix: "tracking the destination operands for queued events,
and treating them as tainted until the coarse taint state is updated.
A small FIFO-like structure could be used to track these operands.
When taint is updated, a signal from the monitored core can pop the
corresponding entries in the FIFO and invalidate any associated CTC
lines if taint has been changed."

:class:`PendingUpdateTracker` implements that structure.  Entries are
conservative: while an address range is pending, coarse checks treat it
as tainted (extra false positives, never false negatives — the same
asymmetry as the rest of LATCH).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

_MASK32 = 0xFFFFFFFF


def _wrap_segments(address: int, size: int) -> Tuple[Tuple[int, int], ...]:
    """``[address, address+size)`` folded into the 32-bit space.

    Returns one linear ``(start, size)`` run, or two when the range
    crosses the top of the address space — the same canonicalisation
    the CTT domain walk and the vector kernels apply, so the pending
    guard agrees with the coarse state about which bytes a wrapping
    store touches.
    """
    address &= _MASK32
    size = max(size, 1)
    end = address + size
    if end <= _MASK32 + 1:
        return ((address, size),)
    return ((address, _MASK32 + 1 - address), (0, end - (_MASK32 + 1)))


@dataclass(frozen=True)
class PendingEntry:
    """One enqueued event's destination operand."""

    sequence: int
    address: int
    size: int


class PendingUpdateTracker:
    """FIFO of destination operands with outstanding CTT updates.

    Args:
        capacity: number of FIFO entries.  When full, the enqueue path
            must stall (mirrors the hardware's bounded structure); the
            caller observes this via :meth:`push` returning False.
        on_retire: optional callback ``(address, size)`` invoked when an
            entry retires — P-LATCH wires this to CTC line invalidation
            so a changed coarse state becomes visible immediately.
    """

    def __init__(
        self,
        capacity: int = 16,
        on_retire: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_retire = on_retire
        self._fifo: Deque[PendingEntry] = deque()
        self._next_sequence = 0
        self.stalls = 0
        self.retired = 0

    # -------------------------------------------------------------- state

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        """True when a push would have to stall."""
        return len(self._fifo) >= self.capacity

    def covers(self, address: int, size: int = 1) -> bool:
        """Is any byte of [address, address+size) pending an update?

        While true, the coarse check must conservatively report taint.
        Ranges are compared in the 32-bit space, so a store straddling
        the top of memory covers the wrapped-around low bytes too.
        """
        query = _wrap_segments(address, size)
        for entry in self._fifo:
            for e_start, e_size in _wrap_segments(entry.address, entry.size):
                e_end = e_start + e_size
                for q_start, q_size in query:
                    if q_start < e_end and e_start < q_start + q_size:
                        return True
        return False

    # ----------------------------------------------------------- mutation

    def push(self, address: int, size: int) -> Optional[int]:
        """Record a queued event's destination operand.

        Returns the entry's sequence number, or None when the FIFO is
        full (the monitored core must stall until an entry retires).
        """
        if self.full:
            self.stalls += 1
            return None
        entry = PendingEntry(self._next_sequence, address, max(size, 1))
        self._next_sequence += 1
        self._fifo.append(entry)
        return entry.sequence

    def retire(self, sequence: int) -> int:
        """The monitor signals completion of all events up to ``sequence``.

        Events complete in order, so everything at the head with an
        equal-or-lower sequence retires.  Returns the number retired.
        """
        count = 0
        while self._fifo and self._fifo[0].sequence <= sequence:
            entry = self._fifo.popleft()
            if self.on_retire is not None:
                self.on_retire(entry.address, entry.size)
            self.retired += 1
            count += 1
        return count

    def retire_all(self) -> int:
        """Drain the FIFO (queue fully processed)."""
        if not self._fifo:
            return 0
        return self.retire(self._fifo[-1].sequence)
