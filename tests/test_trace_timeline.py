"""``repro-trace``: merging, validation, Chrome export, summary, CLI.

A fully deterministic two-process trace (injected clocks, ids and pids)
is rebuilt for every test and compared against the committed golden
Chrome export in ``tests/golden/chrome_trace.json`` — any change to the
export format shows up as a readable JSON diff.
"""

import json
from pathlib import Path

import pytest

from repro.obs import SpanTracer, TraceContext, Tracer
from repro.obs.chrometrace import (
    merge_shards,
    shard_paths,
    to_chrome,
    validate_spans,
)
from repro.tools import timeline

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace.json"


def _clock(start, step=0.5):
    state = {"t": start - step}

    def tick():
        state["t"] += step
        return state["t"]

    return tick


def build_trace(directory):
    """A deterministic scheduler + one-worker trace, as shard files.

    Both tracers run in this process, so they share one shard file —
    which doubles as coverage for concurrent same-file appends.  The
    record pids are injected (100 = scheduler, 200 = worker).
    """
    sink = Tracer(shard_dir=str(directory))
    scheduler = SpanTracer(
        sink,
        context=TraceContext(trace_id="trace0"),
        wall_clock=_clock(1000.0),
        mono_clock=_clock(0.0),
        id_factory=iter(f"sched{i}" for i in range(100)).__next__,
        pid=100,
    )
    with scheduler.span("runner.run", jobs=2):
        job_a = scheduler.begin("runner.job", kind="async", job="hlatch:gcc")
        job_b = scheduler.begin("runner.job", kind="async", job="hlatch:curl")
        scheduler.event("runner.job_dispatch", job="hlatch:gcc")

        worker_sink = Tracer(shard_dir=str(directory))
        worker = SpanTracer(
            worker_sink,
            context=TraceContext.from_wire(
                scheduler.context(job_a).to_wire()
            ),
            wall_clock=_clock(1001.0),
            mono_clock=_clock(50.0),
            id_factory=iter(f"work{i}" for i in range(100)).__next__,
            pid=200,
        )
        with worker.span("worker.job", job="hlatch:gcc"):
            worker.event("kernels.batch", kernel="classify", items=3000)
        worker_sink.close()

        scheduler.finish(job_a, status="ok", duration=1.5)
        scheduler.finish(job_b, status="ok", duration=0.5)
    sink.close()
    return directory


class TestMergeAndValidate:
    def test_merge_orders_by_timestamp(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        timestamps = [r["ts"] for r in records]
        assert timestamps == sorted(timestamps)
        assert len(shard_paths(str(tmp_path))) == 1

    def test_merge_without_shards_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_shards(str(tmp_path))

    def test_built_trace_is_healthy(self, tmp_path):
        assert validate_spans(merge_shards(str(build_trace(tmp_path)))) == []

    def test_validate_flags_unclosed_span(self):
        records = [
            {"ts": 1.0, "type": "span_begin", "name": "a", "span": "x",
             "parent": None},
        ]
        (problem,) = validate_spans(records)
        assert "never closed" in problem

    def test_validate_flags_orphaned_parent(self):
        records = [
            {"ts": 1.0, "type": "span_begin", "name": "a", "span": "x",
             "parent": "ghost"},
            {"ts": 2.0, "type": "span_close", "name": "a", "span": "x",
             "parent": "ghost", "duration": 1.0},
        ]
        problems = validate_spans(records)
        assert any("orphaned" in p for p in problems)

    def test_validate_flags_duplicate_and_unmatched_close(self):
        records = [
            {"ts": 1.0, "type": "span_begin", "name": "a", "span": "x",
             "parent": None},
            {"ts": 1.5, "type": "span_begin", "name": "b", "span": "x",
             "parent": None},
            {"ts": 2.0, "type": "span_close", "name": "c", "span": "y",
             "parent": None, "duration": 1.0},
        ]
        problems = validate_spans(records)
        assert any("duplicate" in p for p in problems)
        assert any("without begin" in p for p in problems)


class TestChromeExport:
    def test_matches_golden(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        document = to_chrome(records, scheduler_pid=100)
        assert document == json.loads(GOLDEN.read_text())

    def test_process_labels(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        document = to_chrome(records, scheduler_pid=100)
        labels = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels == {100: "scheduler (100)", 200: "worker (200)"}

    def test_async_spans_become_b_e_pairs(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        events = to_chrome(records)["traceEvents"]
        async_phases = [e["ph"] for e in events if e.get("cat") == "async"]
        assert sorted(async_phases) == ["b", "b", "e", "e"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"runner.run", "worker.job"}

    def test_empty_records(self):
        assert to_chrome([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestSummary:
    def test_summary_aggregates(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        summary = timeline.summarize(records)
        assert summary["scheduler_pid"] == 100
        assert summary["worker_pids"] == [200]
        assert [j["job"] for j in summary["jobs"]] == [
            "hlatch:gcc", "hlatch:curl",
        ]
        assert summary["jobs"][0]["status"] == "ok"
        assert summary["cache_hits"] == 0
        path_names = [name for name, _ in summary["critical_path"]]
        assert path_names[0] == "runner.run"
        assert "runner.job" in path_names

    def test_format_summary_mentions_key_lines(self, tmp_path):
        records = merge_shards(str(build_trace(tmp_path)))
        text = timeline.format_summary(timeline.summarize(records))
        assert "makespan" in text
        assert "critical path" in text
        assert "hlatch:gcc" in text


class TestCli:
    def test_check_and_chrome_export(self, tmp_path, capsys):
        build_trace(tmp_path / "trace")
        out = tmp_path / "chrome.json"
        status = timeline.main([
            str(tmp_path / "trace"), "--check", "--chrome", str(out),
        ])
        assert status == 0
        assert json.loads(out.read_text())["displayTimeUnit"] == "ms"
        captured = capsys.readouterr()
        assert "check: ok" in captured.err
        assert "critical path" in captured.out

    def test_jsonl_export(self, tmp_path):
        build_trace(tmp_path / "trace")
        out = tmp_path / "merged.jsonl"
        assert timeline.main(
            [str(tmp_path / "trace"), "--jsonl", str(out), "--quiet"]
        ) == 0
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert lines == merge_shards(str(tmp_path / "trace"))

    def test_check_fails_on_broken_tree(self, tmp_path, capsys):
        shard = tmp_path / "run.1.jsonl"
        shard.write_text(json.dumps({
            "ts": 1.0, "type": "span_begin", "name": "lonely",
            "span": "x", "parent": None,
        }) + "\n")
        assert timeline.main([str(tmp_path), "--check"]) == 1
        assert "never closed" in capsys.readouterr().err

    def test_missing_directory_is_usage_error(self, tmp_path, capsys):
        assert timeline.main([str(tmp_path / "nope")]) == 2
        assert "no trace shards" in capsys.readouterr().err

    def test_flight_dumps_reported(self, tmp_path, capsys):
        build_trace(tmp_path)
        (tmp_path / "flight.200.json").write_text(json.dumps({
            "reason": "signal:15", "pid": 200, "dropped": 0,
            "records": [{"n": 1}],
        }))
        assert timeline.main([str(tmp_path)]) == 0
        assert "signal:15" in capsys.readouterr().err
