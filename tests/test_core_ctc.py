"""Coarse Taint Cache tests, including the clear-bit machinery."""

from repro.core.ctc import CoarseTaintCache
from repro.core.ctt import CoarseTaintTable
from repro.core.domains import DomainGeometry
from repro.dift.tags import ShadowMemory


def make_ctc(entries=16, domain_size=64):
    geometry = DomainGeometry(domain_size=domain_size)
    ctt = CoarseTaintTable(geometry)
    return CoarseTaintCache(geometry, ctt, entries=entries), ctt


class TestChecking:
    def test_miss_loads_from_ctt(self):
        ctc, ctt = make_ctc()
        ctt.set_domain(0x100)
        hit, tainted = ctc.check(0x100)
        assert not hit and tainted
        hit, tainted = ctc.check(0x120)
        assert hit and tainted  # same domain, now resident

    def test_clean_domain_check(self):
        ctc, _ = make_ctc()
        _, tainted = ctc.check(0x5000)
        assert not tainted

    def test_capacity_eviction(self):
        ctc, _ = make_ctc(entries=2)
        span = ctc.geometry.word_span
        ctc.check(0 * span)
        ctc.check(1 * span)
        ctc.check(2 * span)  # evicts line 0
        hit, _ = ctc.check(0)
        assert not hit
        assert ctc.stats.evictions >= 1

    def test_capacity_bytes(self):
        ctc, _ = make_ctc(entries=16)
        assert ctc.capacity_bytes == 64  # paper: 16 one-word lines


class TestUpdates:
    def test_set_taint_writes_through(self):
        ctc, ctt = make_ctc()
        ctc.update_taint(0x200, tainted=True)
        assert ctt.is_domain_tainted(0x200)
        hit, tainted = ctc.check(0x200)
        assert tainted

    def test_deferred_clear_keeps_ctt_bit(self):
        ctc, ctt = make_ctc()
        ctc.update_taint(0x200, tainted=True)
        ctc.update_taint(0x200, tainted=False, defer_clear=True)
        # Coarse state still tainted until reconciled (no false negatives).
        assert ctt.is_domain_tainted(0x200)
        _, tainted = ctc.check(0x200)
        assert tainted

    def test_reconcile_clears_clean_domains(self):
        ctc, ctt = make_ctc()
        shadow = ShadowMemory()
        ctc.update_taint(0x200, tainted=True)
        ctc.update_taint(0x200, tainted=False, defer_clear=True)
        cleared = ctc.reconcile_clears(shadow.region_clean)
        assert cleared == 1
        assert not ctt.is_domain_tainted(0x200)
        _, tainted = ctc.check(0x200)
        assert not tainted

    def test_reconcile_respects_remaining_taint(self):
        ctc, ctt = make_ctc()
        shadow = ShadowMemory()
        shadow.set(0x210, 1)  # another byte in the domain is still tainted
        ctc.update_taint(0x200, tainted=True)
        ctc.update_taint(0x200, tainted=False, defer_clear=True)
        cleared = ctc.reconcile_clears(shadow.region_clean)
        assert cleared == 0
        assert ctt.is_domain_tainted(0x200)

    def test_set_after_clear_deasserts_clear_bit(self):
        ctc, ctt = make_ctc()
        shadow = ShadowMemory()
        ctc.update_taint(0x200, tainted=True)
        ctc.update_taint(0x200, tainted=False, defer_clear=True)
        ctc.update_taint(0x200, tainted=True)  # re-taint
        cleared = ctc.reconcile_clears(shadow.region_clean)
        assert cleared == 0  # clear bit was de-asserted by the re-taint
        assert ctt.is_domain_tainted(0x200)

    def test_immediate_clear_with_oracle(self):
        ctc, ctt = make_ctc()
        shadow = ShadowMemory()
        ctc.update_taint(0x200, tainted=True)
        ctc.update_taint(
            0x200, tainted=False, defer_clear=False,
            clean_oracle=shadow.region_clean,
        )
        assert not ctt.is_domain_tainted(0x200)

    def test_immediate_clear_requires_oracle(self):
        ctc, _ = make_ctc()
        ctc.update_taint(0x200, tainted=True)
        try:
            ctc.update_taint(0x200, tainted=False, defer_clear=False)
            assert False
        except ValueError:
            pass

    def test_clear_bit_eviction_raises_pending_reconcile(self):
        ctc, ctt = make_ctc(entries=1)
        shadow = ShadowMemory()
        span = ctc.geometry.word_span
        ctc.update_taint(0x40, tainted=True)
        ctc.update_taint(0x40, tainted=False, defer_clear=True)
        ctc.check(span * 5)  # evicts the line carrying the clear bit
        assert ctc.clear_bit_evictions == 1
        cleared = ctc.reconcile_clears(shadow.region_clean)
        assert cleared == 1
        assert not ctt.is_domain_tainted(0x40)


class TestCoherence:
    def test_refresh_resident(self):
        ctc, ctt = make_ctc()
        ctc.check(0x100)  # resident clean line
        ctt.set_domain(0x100)  # CTT modified behind the CTC's back
        _, tainted = ctc.check(0x100)
        assert not tainted  # stale
        ctc.refresh_resident(0x100)
        _, tainted = ctc.check(0x100)
        assert tainted

    def test_invalidate(self):
        ctc, _ = make_ctc()
        ctc.check(0x100)
        assert ctc.invalidate(0x100)
        assert not ctc.invalidate(0x100)

    def test_flush(self):
        ctc, _ = make_ctc()
        ctc.check(0x0)
        ctc.flush()
        hit, _ = ctc.check(0x0)
        assert not hit


class TestClearOrdering:
    """Pending clears must drain before (or with) any stale CTT read —
    the Section 5.1.4 eviction/reconcile ordering audit."""

    def test_eviction_during_update_preserves_pending_clear(self):
        # A tag write that evicts a clear-bit line mid-update must not
        # lose the evicted clear bits.
        ctc, ctt = make_ctc(entries=1)
        shadow = ShadowMemory()
        span = ctc.geometry.word_span
        ctc.update_taint(0x40, tainted=True)
        ctc.update_taint(0x40, tainted=False, defer_clear=True)
        # This update evicts the line carrying 0x40's clear bit.
        ctc.update_taint(span * 3, tainted=True)
        assert ctc.pending_evicted() == ((0x0, 1 << 1),)
        assert ctc.reconcile_clears(shadow.region_clean) == 1
        assert not ctt.is_domain_tainted(0x40)

    def test_refill_after_eviction_does_not_resurrect_clear_bit(self):
        # Re-loading the word whose clear bits were evicted fills a
        # fresh line (clear_bits == 0); the clear survives only in the
        # pending list, so a reconcile drains it exactly once.
        ctc, ctt = make_ctc(entries=1)
        shadow = ShadowMemory()
        span = ctc.geometry.word_span
        ctc.update_taint(0x40, tainted=True)
        ctc.update_taint(0x40, tainted=False, defer_clear=True)
        ctc.check(span * 3)     # evict
        ctc.check(0x40)         # refill the original word
        for _, line in ctc.iter_resident():
            assert line.clear_bits == 0
        assert ctc.reconcile_clears(shadow.region_clean) == 1
        assert ctc.reconcile_clears(shadow.region_clean) == 0

    def test_retaint_after_eviction_keeps_domain_tainted(self):
        # clear bit evicted, then the domain is re-tainted: the pending
        # reconcile must not clear the bit because the precise state says
        # the domain is dirty again.
        ctc, ctt = make_ctc(entries=1)
        shadow = ShadowMemory()
        span = ctc.geometry.word_span
        ctc.update_taint(0x40, tainted=True)
        ctc.update_taint(0x40, tainted=False, defer_clear=True)
        ctc.check(span * 3)     # evict the clear bit
        shadow.set(0x40, 1)
        ctc.update_taint(0x40, tainted=True)
        ctc.reconcile_clears(shadow.region_clean)
        assert ctt.is_domain_tainted(0x40)

    def test_evicted_base_is_masked(self):
        # Aliased (unmasked) addresses must reconcile the canonical
        # domain, not a 33-bit alias that no check could ever read.
        ctc, ctt = make_ctc(entries=1)
        shadow = ShadowMemory()
        high = 0xFFFF_FFC0
        ctc.update_taint(high, tainted=True)
        ctc.update_taint(high, tainted=False, defer_clear=True)
        ctc.check(0x40)  # evict
        (base, bits), = ctc.pending_evicted()
        assert base <= 0xFFFF_FFFF
        domains = list(ctc.pending_clear_domains())
        assert (high, ctc.geometry.domain_size) in domains
        assert ctc.reconcile_clears(shadow.region_clean) == 1
        assert not ctt.is_domain_tainted(high)

    def test_flush_discards_pending_reconciles(self):
        ctc, ctt = make_ctc(entries=1)
        span = ctc.geometry.word_span
        ctc.update_taint(0x40, tainted=True)
        ctc.update_taint(0x40, tainted=False, defer_clear=True)
        ctc.check(span * 3)  # evict into the pending list
        ctc.flush()
        assert ctc.pending_evicted() == ()
        assert list(ctc.pending_clear_domains()) == []

    def test_wrapped_addresses_share_one_line(self):
        # 0x1_0000_0040 aliases 0x40 under 32-bit masking: both must hit
        # the same CTC line and the same CTT word.
        ctc, ctt = make_ctc()
        ctc.update_taint(0x1_0000_0040, tainted=True)
        assert ctt.is_domain_tainted(0x40)
        hit, tainted = ctc.check(0x40)
        assert hit and tainted
