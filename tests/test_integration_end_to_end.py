"""End-to-end integration: every layer in one flow.

One service scenario — mixed-trust requests, a colourised policy, an
attempted hijack — pushed through all three LATCH integrations, the
trace recorder, the analyses, persistence, and checkpointing.  This is
the "does the whole product hang together" test.
"""

import dataclasses

import pytest

from repro.analysis import epoch_duration_profile, page_taint_distribution
from repro.dift.checkpoint import engine_state, restore_engine_state
from repro.dift.engine import DIFTEngine
from repro.dift.events import AlertKind
from repro.dift.policy import TaintPolicy
from repro.hlatch import HLatchMonitor, run_baseline, run_hlatch
from repro.machine.tracing import TraceRecorder
from repro.platch.functional import PLatchSystem
from repro.slatch.controller import SLatchSystem
from repro.slatch.costs import SLatchCostModel
from repro.workloads.attacks import buffer_overflow
from repro.workloads.programs import echo_server
from repro.workloads.storage import load_access_trace, save_access_trace

POLICY = TaintPolicy(color_by_source=True)


def mixed_trust_server():
    requests = [f"REQ-{i:03d}-{'x' * 20}".encode() for i in range(12)]
    trusted = [i % 3 == 0 for i in range(12)]
    return echo_server(requests=requests, trusted_flags=trusted)


def run_reference(scenario_factory, policy=None):
    cpu = scenario_factory().make_cpu()
    engine = DIFTEngine(policy)
    cpu.attach(engine)
    try:
        cpu.run(500_000)
    except Exception:
        pass
    return engine


class TestServiceUnderAllIntegrations:
    def test_three_integrations_agree_with_reference(self):
        reference = run_reference(mixed_trust_server, POLICY)
        reference_taint = list(reference.shadow.iter_tainted_bytes())

        # S-LATCH.
        cpu = mixed_trust_server().make_cpu()
        costs = dataclasses.replace(SLatchCostModel(), timeout_instructions=60)
        slatch = SLatchSystem(cpu, policy=POLICY, costs=costs)
        cpu.run(500_000)
        assert list(slatch.engine.shadow.iter_tainted_bytes()) == reference_taint
        assert slatch.counters.hw_instructions > 0  # gating actually engaged

        # P-LATCH (two-core).
        cpu = mixed_trust_server().make_cpu()
        platch = PLatchSystem(cpu, policy=POLICY, drain_batch=16)
        cpu.run(500_000)
        platch.drain_all()
        assert list(platch.engine.shadow.iter_tainted_bytes()) == reference_taint
        assert 0 < platch.counters.enqueue_fraction < 1

        # H-LATCH (hardware DIFT + filtered caches).
        cpu = mixed_trust_server().make_cpu()
        hlatch = HLatchMonitor(cpu, policy=POLICY)
        cpu.run(500_000)
        assert list(hlatch.engine.shadow.iter_tainted_bytes()) == reference_taint
        report = hlatch.report("service")
        assert report.accesses > 0

    def test_colourised_hijack_detected_identically_everywhere(self):
        reference = run_reference(lambda: buffer_overflow(True), POLICY)
        expected = [(a.kind, a.pc) for a in reference.alerts]
        assert AlertKind.TAINTED_JUMP in [a.kind for a in reference.alerts]
        assert "request.bin" in reference.alerts[0].detail  # provenance

        for build_system in (
            lambda cpu: SLatchSystem(cpu, policy=POLICY),
            lambda cpu: PLatchSystem(cpu, policy=POLICY),
            lambda cpu: HLatchMonitor(cpu, policy=POLICY),
        ):
            cpu = buffer_overflow(True).make_cpu()
            system = build_system(cpu)
            try:
                cpu.run(500_000)
            except Exception:
                pass
            if isinstance(system, PLatchSystem):
                system.drain_all()
            assert [(a.kind, a.pc) for a in system.engine.alerts] == expected


class TestRecordAnalyzePersistRestore:
    def test_full_pipeline(self, tmp_path):
        # 1. Record a monitored run.
        cpu = mixed_trust_server().make_cpu()
        engine = DIFTEngine(POLICY)
        recorder = TraceRecorder(engine, name="service")
        cpu.attach(engine)
        cpu.attach(recorder)
        cpu.run(500_000)

        # 2. Analyse it.
        stream = recorder.epoch_stream()
        trace = recorder.access_trace()
        assert stream.tainted_fraction > 0
        assert page_taint_distribution(trace.layout).pages_tainted >= 1
        profile = epoch_duration_profile(stream, thresholds=(10, 100))
        assert profile[10] >= profile[100]

        # 3. Persist the trace, reload it, and replay through the caches.
        path = tmp_path / "service.npz"
        save_access_trace(trace, path)
        reloaded = load_access_trace(path)
        hlatch = run_hlatch(reloaded)
        baseline = run_baseline(reloaded)
        assert hlatch.accesses == trace.access_count
        assert baseline.accesses >= trace.access_count

        # 4. Checkpoint the engine and restore into a fresh one wired to
        #    a fresh LATCH: the coarse state rebuilds coherently.
        from repro.core.latch import LatchModule

        state = engine_state(engine)
        restored = DIFTEngine(POLICY)
        latch = LatchModule()
        restored.add_tag_listener(
            lambda address, tags: latch.update_memory_tags(address, tags)
        )
        restore_engine_state(restored, state)
        for address in restored.shadow.iter_tainted_bytes():
            assert latch.check_memory(address, 1).coarse_tainted
        assert restored.stats.tainted_instructions == (
            engine.stats.tainted_instructions
        )
