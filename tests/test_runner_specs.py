"""JobSpec, suite expansion, and environment-knob validation."""

import pytest

from repro.runner import JobSpec, suite_jobs, positive_int_env


class TestJobSpec:
    def test_make_canonicalises_params(self):
        a = JobSpec.make("hlatch", "gcc", trace_window=5_000, foo=1)
        b = JobSpec.make("hlatch", "gcc", foo=1, trace_window=5_000)
        assert a == b
        assert a.params == (("foo", 1), ("trace_window", 5_000))
        assert a.job_id == "hlatch:gcc"
        assert a.param("trace_window") == 5_000
        assert a.param("absent", 7) == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec.make("nonsense", "gcc")

    def test_dict_round_trip(self):
        spec = JobSpec.make("slatch", "curl", seed=3,
                            epoch_scale=100_000, trace_window=5_000)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_key_is_stable_and_content_addressed(self):
        base = JobSpec.make("taint_fraction", "wget", epoch_scale=100_000)
        same = JobSpec.make("taint_fraction", "wget", epoch_scale=100_000)
        assert base.key() == same.key()
        assert len(base.key()) == 64
        variants = [
            JobSpec.make("taint_fraction", "wget", epoch_scale=200_000),
            JobSpec.make("taint_fraction", "wget", seed=1,
                         epoch_scale=100_000),
            JobSpec.make("taint_fraction", "curl", epoch_scale=100_000),
            JobSpec.make("hlatch", "wget", epoch_scale=100_000),
        ]
        keys = {base.key()} | {spec.key() for spec in variants}
        assert len(keys) == len(variants) + 1

    def test_key_tracks_profile_calibration(self, monkeypatch):
        """Recalibrating a workload profile invalidates its cells."""
        import repro.workloads.profiles as profiles

        spec = JobSpec.make("taint_fraction", "wget", epoch_scale=100_000)
        before = spec.key()
        original = profiles.get_profile("wget")
        import dataclasses

        tweaked = dataclasses.replace(
            original, taint_percent=original.taint_percent + 0.01
        )
        monkeypatch.setattr(
            "repro.runner.specs.get_profile", lambda name: tweaked
        )
        assert spec.key() != before

    def test_chaos_workloads_have_no_profile(self):
        spec = JobSpec.make("chaos", "not-a-benchmark", value=1)
        assert spec._profile_fingerprint() is None
        assert len(spec.key()) == 64


class TestSuiteJobs:
    def test_smoke_suite_expands_to_six_jobs(self):
        jobs = suite_jobs("smoke", epoch_scale=100_000, trace_window=5_000)
        assert len(jobs) == 6
        assert {spec.kind for spec in jobs} == {
            "taint_fraction", "page_taint", "hlatch",
        }
        assert {spec.workload for spec in jobs} == {"gcc", "curl"}
        for spec in jobs:
            if spec.kind == "taint_fraction":
                assert spec.param("epoch_scale") == 100_000
            if spec.kind == "hlatch":
                assert spec.param("trace_window") == 5_000

    def test_seed_propagates_to_every_spec(self):
        jobs = suite_jobs("smoke", epoch_scale=100_000,
                          trace_window=5_000, seed=11)
        assert all(spec.seed == 11 for spec in jobs)

    def test_benchmarks_filter(self):
        jobs = suite_jobs("table1", epoch_scale=100_000,
                          benchmarks=["gcc", "astar"])
        assert sorted(spec.workload for spec in jobs) == ["astar", "gcc"]

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            suite_jobs("no-such-suite")

    def test_tables_suite_covers_full_grid(self):
        jobs = suite_jobs("tables", epoch_scale=100_000, trace_window=5_000)
        assert len(jobs) == 27 * 3
        assert len({spec.job_id for spec in jobs}) == len(jobs)


class TestPositiveIntEnv:
    def test_default_when_unset_or_blank(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert positive_int_env("REPRO_TEST_KNOB", 42) == 42
        monkeypatch.setenv("REPRO_TEST_KNOB", "  ")
        assert positive_int_env("REPRO_TEST_KNOB", 42) == 42

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "123")
        assert positive_int_env("REPRO_TEST_KNOB", 42) == 123

    @pytest.mark.parametrize("raw", ["abc", "1.5", "1e6"])
    def test_non_integer_rejected_with_name(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_KNOB", raw)
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            positive_int_env("REPRO_TEST_KNOB", 42)

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_KNOB", raw)
        with pytest.raises(ValueError, match="positive integer"):
            positive_int_env("REPRO_TEST_KNOB", 42)
