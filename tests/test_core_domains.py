"""Taint-domain geometry tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.domains import DOMAINS_PER_WORD, DomainGeometry


class TestConstruction:
    def test_defaults_match_paper(self):
        geometry = DomainGeometry()
        assert geometry.domain_size == 64
        assert geometry.word_span == 2048      # 32 domains × 64 B
        assert geometry.page_domains == 2      # two TLB taint bits / page

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            DomainGeometry(domain_size=48)

    def test_word_span_must_fit_page(self):
        with pytest.raises(ValueError):
            DomainGeometry(domain_size=256)  # word span 8K > 4K page
        DomainGeometry(domain_size=128)      # span 4K == page: fine

    def test_small_domain(self):
        geometry = DomainGeometry(domain_size=8)
        assert geometry.word_span == 256
        assert geometry.page_domains == 16


class TestAddressMath:
    def test_domain_index_and_base(self):
        geometry = DomainGeometry(domain_size=64)
        assert geometry.domain_index(0) == 0
        assert geometry.domain_index(63) == 0
        assert geometry.domain_index(64) == 1
        assert geometry.domain_base(0x12345) == 0x12340

    def test_word_index(self):
        geometry = DomainGeometry(domain_size=64)
        assert geometry.word_index(0) == 0
        assert geometry.word_index(2047) == 0
        assert geometry.word_index(2048) == 1

    def test_bit_offset_cycles(self):
        geometry = DomainGeometry(domain_size=64)
        assert geometry.bit_offset(0) == 0
        assert geometry.bit_offset(64) == 1
        assert geometry.bit_offset(64 * 31) == 31
        assert geometry.bit_offset(64 * 32) == 0

    def test_page_domain_index(self):
        geometry = DomainGeometry(domain_size=64)
        assert geometry.page_domain_index(0x0000) == 0
        assert geometry.page_domain_index(0x07FF) == 0
        assert geometry.page_domain_index(0x0800) == 1
        assert geometry.page_domain_index(0x1000) == 0  # next page

    def test_domains_in_range(self):
        geometry = DomainGeometry(domain_size=64)
        assert list(geometry.domains_in_range(0, 64)) == [0]
        assert list(geometry.domains_in_range(60, 8)) == [0, 1]
        assert list(geometry.domains_in_range(0, 0)) == []

    def test_words_in_range(self):
        geometry = DomainGeometry(domain_size=64)
        assert list(geometry.words_in_range(2040, 16)) == [0, 1]

    def test_domain_range_inverse(self):
        geometry = DomainGeometry(domain_size=64)
        base, size = geometry.domain_range(5)
        assert base == 320 and size == 64


class TestProperties:
    @given(
        st.sampled_from([8, 16, 32, 64, 128]),
        st.integers(min_value=0, max_value=0xFFFF_FFFF),
    )
    def test_bit_and_word_consistent(self, domain_size, address):
        geometry = DomainGeometry(domain_size=domain_size)
        domain = geometry.domain_index(address)
        assert domain == (
            geometry.word_index(address) * DOMAINS_PER_WORD
            + geometry.bit_offset(address)
        )

    @given(
        st.sampled_from([8, 64, 128]),
        st.integers(min_value=0, max_value=0xFFFF_0000),
        st.integers(min_value=1, max_value=512),
    )
    def test_every_byte_covered_by_listed_domains(self, size, address, length):
        geometry = DomainGeometry(domain_size=size)
        domains = set(geometry.domains_in_range(address, length))
        for offset in (0, length // 2, length - 1):
            assert geometry.domain_index(address + offset) in domains


class TestWrapAround:
    """Ranges past the top of the 32-bit space fold back to address 0."""

    def test_domains_in_range_wraps_to_zero(self):
        geometry = DomainGeometry(domain_size=64)
        domains = list(geometry.domains_in_range(0xFFFF_FFC0, 128))
        assert domains == [geometry.total_domains - 1, 0]

    def test_words_in_range_wraps_to_zero(self):
        geometry = DomainGeometry(domain_size=64)
        words = list(geometry.words_in_range(0xFFFF_F800, 0x1000))
        assert words == [geometry.total_words - 1, 0]

    def test_domain_bases_are_canonical(self):
        geometry = DomainGeometry(domain_size=64)
        bases = list(geometry.domain_bases_in_range(0xFFFF_FFF0, 0x20))
        assert bases == [0xFFFF_FFC0, 0]

    def test_unmasked_address_folds(self):
        geometry = DomainGeometry(domain_size=64)
        assert list(geometry.domains_in_range(0x1_0000_0040, 4)) == [1]

    @given(
        st.sampled_from([8, 64, 128]),
        st.integers(min_value=0, max_value=0xFFFF_FFFF),
        st.integers(min_value=1, max_value=512),
    )
    def test_wrapped_bytes_covered(self, size, address, length):
        geometry = DomainGeometry(domain_size=size)
        domains = set(geometry.domains_in_range(address, length))
        for offset in (0, length // 2, length - 1):
            byte = (address + offset) & 0xFFFF_FFFF
            assert geometry.domain_index(byte) in domains
