"""Shadow memory and taint register file tests."""

import pytest
from hypothesis import given, strategies as st

from repro.dift.tags import ShadowMemory, TaintRegisterFile


class TestShadowMemory:
    def test_default_clean(self):
        shadow = ShadowMemory()
        assert shadow.get(0x1234) == 0
        assert not shadow.any_tainted(0, 1 << 16)
        assert shadow.tainted_byte_count == 0

    def test_set_and_get(self):
        shadow = ShadowMemory()
        shadow.set(0x100, 7)
        assert shadow.get(0x100) == 7
        assert shadow.get(0x101) == 0

    def test_range_operations(self):
        shadow = ShadowMemory()
        shadow.set_range(0x10, 8, 1)
        assert shadow.all_tainted(0x10, 8)
        assert shadow.any_tainted(0x17, 2)
        assert not shadow.all_tainted(0x10, 9)
        shadow.clear_range(0x10, 4)
        assert not shadow.any_tainted(0x10, 4)
        assert shadow.any_tainted(0x14, 4)

    def test_byte_count_tracks_set_and_clear(self):
        shadow = ShadowMemory()
        shadow.set_range(0, 10, 1)
        assert shadow.tainted_byte_count == 10
        shadow.set(0, 2)  # retag, not a new byte
        assert shadow.tainted_byte_count == 10
        shadow.clear_range(0, 5)
        assert shadow.tainted_byte_count == 5

    def test_clearing_clean_byte_is_noop(self):
        shadow = ShadowMemory()
        shadow.set(0x9999, 0)
        assert shadow.tainted_byte_count == 0

    def test_set_tags_vector(self):
        shadow = ShadowMemory()
        shadow.set_tags(0x20, b"\x01\x00\x02")
        assert shadow.get_range(0x20, 3) == b"\x01\x00\x02"

    def test_tainted_pages(self):
        shadow = ShadowMemory()
        shadow.set(0x1000, 1)
        shadow.set(0x5005, 1)
        assert shadow.tainted_pages() == {1, 5}
        shadow.clear_range(0x1000, 1)
        assert shadow.tainted_pages() == {5}

    def test_iter_tainted_bytes_sorted(self):
        shadow = ShadowMemory()
        shadow.set(0x5000, 1)
        shadow.set(0x1003, 1)
        shadow.set(0x1001, 1)
        assert list(shadow.iter_tainted_bytes()) == [0x1001, 0x1003, 0x5000]

    def test_cross_page_range(self):
        shadow = ShadowMemory()
        shadow.set_range(0xFFE, 4, 1)  # spans pages 0 and 1
        assert shadow.any_tainted(0x1000, 1)
        assert shadow.any_tainted(0xFFE, 1)

    def test_clear_all(self):
        shadow = ShadowMemory()
        shadow.set_range(0, 100, 1)
        shadow.clear_all()
        assert shadow.tainted_byte_count == 0
        assert not shadow.any_tainted(0, 100)

    def test_iter_tainted_domains(self):
        shadow = ShadowMemory()
        shadow.set(0x100, 1)       # domain 0x100
        shadow.set(0x13F, 1)       # same 64 B domain
        shadow.set(0x2005, 1)      # domain 0x2000
        assert list(shadow.iter_tainted_domains(64)) == [0x100, 0x2000]

    def test_iter_tainted_domains_validates_size(self):
        with pytest.raises(ValueError):
            list(ShadowMemory().iter_tainted_domains(48))

    def test_bulk_set_range_counts(self):
        shadow = ShadowMemory()
        shadow.set_range(0xFF0, 0x40, 1)  # crosses a page boundary
        assert shadow.tainted_byte_count == 0x40
        shadow.set_range(0xFF0, 0x10, 2)  # retag, no count change
        assert shadow.tainted_byte_count == 0x40
        shadow.set_range(0x1000, 0x10, 0)  # clear part on the second page
        assert shadow.tainted_byte_count == 0x30

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x1FFF),
                st.integers(min_value=1, max_value=64),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=60,
        )
    )
    def test_set_range_matches_per_byte_model(self, operations):
        shadow = ShadowMemory()
        model = {}
        for address, length, tag in operations:
            shadow.set_range(address, length, tag)
            for offset in range(length):
                if tag:
                    model[address + offset] = tag
                else:
                    model.pop(address + offset, None)
        assert shadow.tainted_byte_count == len(model)
        for address, tag in model.items():
            assert shadow.get(address) == tag

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x3FFF),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, operations):
        """Shadow memory behaves exactly like a dict of byte → tag."""
        shadow = ShadowMemory()
        model = {}
        for address, tag in operations:
            shadow.set(address, tag)
            if tag:
                model[address] = tag
            else:
                model.pop(address, None)
        assert shadow.tainted_byte_count == len(model)
        for address, tag in model.items():
            assert shadow.get(address) == tag


class TestTaintRegisterFile:
    def test_default_clean(self):
        trf = TaintRegisterFile()
        assert not any(trf.is_tainted(r) for r in range(16))

    def test_taint_and_clear(self):
        trf = TaintRegisterFile()
        trf.taint(5)
        assert trf.is_tainted(5)
        assert trf.get(5) == b"\x01\x01\x01\x01"
        trf.clear(5)
        assert not trf.is_tainted(5)

    def test_r0_immune(self):
        trf = TaintRegisterFile()
        trf.taint(0)
        assert not trf.is_tainted(0)
        trf.set(0, b"\x01\x01\x01\x01")
        assert not trf.is_tainted(0)

    def test_partial_byte_taint(self):
        trf = TaintRegisterFile()
        trf.set(3, b"\x01\x00\x00\x00")
        assert trf.is_tainted(3)
        assert trf.get(3) == b"\x01\x00\x00\x00"

    def test_set_pads_short_tags(self):
        trf = TaintRegisterFile()
        trf.set(2, b"\x01")
        assert trf.get(2) == b"\x01\x00\x00\x00"

    def test_any_tainted(self):
        trf = TaintRegisterFile()
        trf.taint(7)
        assert trf.any_tainted((1, 7))
        assert not trf.any_tainted((1, 2))
        assert not trf.any_tainted(())

    def test_union(self):
        trf = TaintRegisterFile()
        trf.set(1, b"\x01\x00\x00\x00")
        trf.set(2, b"\x00\x02\x00\x00")
        assert trf.union(1, 2) == b"\x01\x02\x00\x00"

    def test_byte_mask_roundtrip(self):
        trf = TaintRegisterFile()
        trf.set(1, b"\x01\x00\x01\x00")
        trf.taint(9)
        mask = trf.mask()
        other = TaintRegisterFile()
        other.load_mask(mask)
        assert other.is_tainted(1) and other.is_tainted(9)
        assert other.get(1)[0] and not other.get(1)[1]

    def test_register_mask_roundtrip(self):
        trf = TaintRegisterFile()
        trf.taint(4)
        trf.taint(11)
        mask = trf.register_mask()
        assert mask == (1 << 4) | (1 << 11)
        other = TaintRegisterFile()
        other.taint(2)  # should be cleared by the load
        other.load_register_mask(mask)
        assert other.tainted_registers() == (4, 11)

    def test_load_register_mask_ignores_r0_bit(self):
        trf = TaintRegisterFile()
        trf.load_register_mask(1)  # bit 0 = r0
        assert not trf.is_tainted(0)

    def test_clear_all(self):
        trf = TaintRegisterFile()
        for register in range(16):
            trf.taint(register)
        trf.clear_all()
        assert trf.tainted_registers() == ()
