"""Unit tests for instruction definitions and field validation."""

import pytest

from repro.isa.instructions import (
    Format,
    Instruction,
    Opcode,
    OPCODE_FORMAT,
    REGISTER_COUNT,
    REGISTER_NAMES,
    register_number,
)


class TestRegisterNames:
    def test_register_count(self):
        assert REGISTER_COUNT == 16
        assert len(REGISTER_NAMES) == 16

    def test_numeric_names(self):
        for index in range(16):
            assert register_number(f"r{index}") == index

    def test_aliases(self):
        assert register_number("zero") == 0
        assert register_number("ra") == 1
        assert register_number("sp") == 2
        assert register_number("a0") == 3

    def test_case_insensitive(self):
        assert register_number("R7") == 7
        assert register_number("SP") == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            register_number("r16")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            register_number("rx")
        with pytest.raises(ValueError):
            register_number("")


class TestFormats:
    def test_every_opcode_has_format(self):
        for opcode in Opcode:
            assert opcode in OPCODE_FORMAT

    def test_alu_reg_is_r_format(self):
        assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).format == Format.R

    def test_load_is_i_format(self):
        assert Instruction(Opcode.LW, rd=1, rs1=2).format == Format.I

    def test_store_is_s_format(self):
        assert Instruction(Opcode.SW, rs1=1, rs2=2).format == Format.S

    def test_branch_is_b_format(self):
        assert Instruction(Opcode.BEQ, rs1=1, rs2=2).format == Format.B

    def test_jal_is_j_format(self):
        assert Instruction(Opcode.JAL, rd=1).format == Format.J

    def test_latch_instructions_present(self):
        # Table 5 of the paper: strf, stnt, ltnt.
        assert Opcode.STRF in Opcode
        assert Opcode.STNT in Opcode
        assert Opcode.LTNT in Opcode


class TestInstructionProperties:
    def test_load_properties(self):
        instr = Instruction(Opcode.LW, rd=1, rs1=2, imm=8)
        assert instr.is_load and not instr.is_store
        assert instr.is_memory_access
        assert instr.memory_size == 4

    def test_store_properties(self):
        instr = Instruction(Opcode.SB, rs1=1, rs2=2)
        assert instr.is_store and not instr.is_load
        assert instr.memory_size == 1

    def test_halfword_sizes(self):
        assert Instruction(Opcode.LH, rd=1, rs1=1).memory_size == 2
        assert Instruction(Opcode.SH, rs1=1, rs2=1).memory_size == 2

    def test_alu_is_not_memory(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert not instr.is_memory_access
        assert instr.memory_size == 0

    def test_branch_and_jump_flags(self):
        assert Instruction(Opcode.BNE, rs1=1, rs2=2).is_branch
        assert Instruction(Opcode.JAL, rd=0).is_jump
        assert Instruction(Opcode.JALR, rd=0, rs1=1).is_control_flow
        assert not Instruction(Opcode.ADD, rd=1, rs1=1, rs2=1).is_control_flow

    def test_source_registers(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert instr.source_registers() == (2, 3)
        assert Instruction(Opcode.LW, rd=1, rs1=4).source_registers() == (4,)
        assert Instruction(Opcode.NOP).source_registers() == ()


class TestValidation:
    def test_r_format_requires_all_registers(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=1, rs1=2).validate()

    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=16, rs1=0, rs2=0).validate()

    def test_i_format_immediate_range(self):
        Instruction(Opcode.ADDI, rd=1, rs1=1, imm=32767).validate()
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDI, rd=1, rs1=1, imm=32768).validate()
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-32769).validate()

    def test_u_format_immediate_unsigned(self):
        Instruction(Opcode.LUI, rd=1, imm=0xFFFF).validate()
        with pytest.raises(ValueError):
            Instruction(Opcode.LUI, rd=1, imm=-1).validate()

    def test_ltnt_needs_only_rd(self):
        Instruction(Opcode.LTNT, rd=3).validate()

    def test_strf_needs_rs1(self):
        Instruction(Opcode.STRF, rs1=4).validate()
        with pytest.raises(ValueError):
            Instruction(Opcode.STRF).validate()

    def test_str_rendering_roundtrips_through_disassembler(self):
        text = str(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert text == "add r1, r2, r3"
