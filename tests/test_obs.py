"""Tests for the repro.obs observability layer.

Covers registry semantics, exact histogram percentiles, snapshot
round-trips, the JSONL tracer, the per-subsystem ``publish_metrics``
surfaces, and an integration test pinning CTC counters to the
:class:`~repro.core.latch.LatchCheckResult` levels on a golden trace.
"""

import json
import math

import numpy as np
import pytest

from repro import CPU, DIFTEngine, DeviceTable, SLatchSystem, VirtualFile, assemble
from repro.core.latch import CheckLevel, LatchConfig, LatchModule
from repro.hlatch.system import HLatchSystem
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsSnapshot,
    Timer,
    Tracer,
    read_jsonl,
)
from repro.platch.queue_sim import TwoCoreQueueSimulator
from repro.report import format_snapshot, snapshot_diff
from repro.workloads.trace import EpochStream


# --------------------------------------------------------------- registry


class TestRegistrySemantics:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("ctc.hits")
        second = registry.counter("ctc.hits")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_insertion_order_preserved(self):
        registry = MetricsRegistry()
        for name in ("b.two", "a.one", "c.three"):
            registry.counter(name)
        assert registry.names() == ["b.two", "a.one", "c.three"]

    def test_counter_inc_and_set(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(42)
        assert counter.value == 42

    def test_gauge_direct_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", callback=lambda: 7)
        assert gauge.value == 7
        gauge.set(3)  # detaches the callback
        assert gauge.value == 3

    def test_reset_zeroes_but_keeps_callbacks(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.histogram("h").record(1.0)
        registry.gauge("g", callback=lambda: 11)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0
        assert registry.gauge("g").value == 11

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.counter("present")
        assert "present" in registry and "absent" not in registry
        with pytest.raises(KeyError):
            registry.get("absent")

    def test_timer_records_spans(self):
        ticks = iter([0.0, 1.5, 2.0, 2.25])
        timer = Timer("t", clock=lambda: next(ticks))
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.total == pytest.approx(1.75)


# -------------------------------------------------------------- histogram


class TestHistogramPercentiles:
    def test_empty_histogram_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.mean)

    def test_exact_percentiles_match_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(scale=1000.0, size=997)
        hist = Histogram("h")
        hist.record_many(values)
        for p in (0, 10, 25, 50, 75, 90, 95, 99, 100):
            assert hist.percentile(p) == pytest.approx(
                float(np.percentile(values, p)), rel=1e-12
            )

    def test_summary_statistics(self):
        hist = Histogram("h")
        hist.record_many([5, 1, 3])
        assert hist.count == 3
        assert hist.total == 9.0
        assert hist.min == 1.0 and hist.max == 5.0
        assert hist.mean == pytest.approx(3.0)

    def test_percentile_out_of_range(self):
        hist = Histogram("h")
        hist.record(1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_record_invalidates_sorted_cache(self):
        hist = Histogram("h")
        hist.record_many([10, 20])
        assert hist.percentile(100) == 20
        hist.record(30)
        assert hist.percentile(100) == 30


# --------------------------------------------------------------- snapshot


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("ctc.hits", unit="accesses", description="hits").inc(12)
    registry.gauge("ctc.hit_rate", unit="fraction").set(0.75)
    registry.histogram("epochs", unit="instructions").record_many(
        [10, 20, 30, 40]
    )
    return registry


class TestSnapshotRoundTrip:
    def test_json_round_trip_is_identity(self):
        snapshot = _populated_registry().snapshot()
        again = StatsSnapshot.from_json(snapshot.to_json())
        assert again == snapshot
        assert again.names() == snapshot.names()

    def test_dict_round_trip_is_identity(self):
        snapshot = _populated_registry().snapshot()
        assert StatsSnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_unsupported_version_rejected(self):
        payload = _populated_registry().snapshot().to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            StatsSnapshot.from_dict(payload)

    def test_scalar_and_summary_access(self):
        snapshot = _populated_registry().snapshot()
        assert snapshot.get("ctc.hits") == 12
        assert snapshot.get("ctc.hit_rate") == 0.75
        summary = snapshot.get("epochs")
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(25.0)
        assert summary["percentiles"]["p50"] == pytest.approx(25.0)
        assert snapshot.get("missing", "fallback") == "fallback"

    def test_callback_gauges_freeze_at_snapshot_time(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        registry.gauge("twice", callback=lambda: counter.value * 2)
        counter.inc(3)
        first = registry.snapshot()
        counter.inc(3)
        second = registry.snapshot()
        assert first.get("twice") == 6
        assert second.get("twice") == 12

    def test_markdown_rendering(self):
        snapshot = _populated_registry().snapshot()
        text = snapshot.to_markdown(title="Test")
        assert "## Test" in text
        assert "`ctc.hits`" in text and "count=4" in text

    def test_report_layer_consumes_snapshots(self):
        snapshot = _populated_registry().snapshot()
        text = format_snapshot(snapshot, title="Obs")
        assert "ctc.hit_rate" in text and "0.75" in text
        subset = format_snapshot(snapshot, names=["ctc.hits", "nope"])
        assert "ctc.hits" in subset and "epochs" not in subset

    def test_snapshot_diff(self):
        registry = _populated_registry()
        before = registry.snapshot()
        registry.counter("ctc.hits").inc(8)
        after = registry.snapshot()
        deltas = snapshot_diff(before, after)
        assert deltas["ctc.hits"] == 8
        assert "epochs" not in deltas  # histograms do not subtract


# ----------------------------------------------------------------- tracer


class TestTracer:
    def test_in_memory_events(self):
        ticks = iter([0.0, 1.0, 2.0])
        tracer = Tracer(clock=lambda: next(ticks))
        tracer.event("slatch.trap", pc=0x1000)
        tracer.event("slatch.return")
        events = tracer.events()
        assert [e["name"] for e in events] == ["slatch.trap", "slatch.return"]
        assert events[0]["pc"] == 0x1000
        assert events[0]["ts"] == pytest.approx(1.0)
        assert tracer.events("slatch.return")[0]["ts"] == pytest.approx(2.0)

    def test_span_records_duration(self):
        ticks = iter([0.0, 1.0, 3.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("work", detail="x"):
            pass
        start, end = tracer.records()
        assert start["type"] == "span_start" and start["detail"] == "x"
        assert end["type"] == "span_end"
        assert end["span_id"] == start["span_id"]
        assert end["duration"] == pytest.approx(2.5)

    def test_file_backed_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path=str(path)) as tracer:
            tracer.event("a", n=1)
            tracer.event("b", n=2)
        records = read_jsonl(str(path))
        assert [r["name"] for r in records] == ["a", "b"]
        assert all(isinstance(json.dumps(r), str) for r in records)


# ---------------------------------------------------- publish_metrics APIs


PROGRAM = """
.data
path:   .asciiz "in.txt"
buf:    .space 64
.text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 64
    syscall
    li   r8, buf
    lbu  r9, 0(r8)
    addi r9, r9, 1
    sb   r9, 1(r8)
    halt
"""


def _run_slatch(payload=b"some untrusted bytes"):
    devices = DeviceTable()
    devices.register_file(VirtualFile("in.txt", payload))
    cpu = CPU(assemble(PROGRAM), devices=devices)
    system = SLatchSystem(cpu, tracer=Tracer(clock=iter(range(10**6)).__next__))
    cpu.run()
    return system


class TestPublishMetrics:
    def test_latch_module_publishes_catalogued_names(self):
        latch = LatchModule()
        latch.check_memory(0x1000, 4)
        registry = MetricsRegistry()
        latch.publish_metrics(registry)
        for name in (
            "latch.memory_checks", "latch.resolved_by_tlb",
            "latch.resolved_by_ctc", "latch.sent_to_precise",
            "tlb.screened_frac", "ctc.resolved_frac", "latch.precise_frac",
            "ctc.hits", "ctc.misses", "ctc.hit_rate",
            "tlb.checks", "tlb.hot_checks", "tlb.hit_rate",
        ):
            assert name in registry, name
        snapshot = registry.snapshot()
        assert snapshot.get("latch.memory_checks") == 1

    def test_level_fraction_gauges_sum_to_one(self):
        latch = LatchModule()
        for address in range(0, 4096 * 8, 64):
            latch.check_memory(address, 4)
        registry = MetricsRegistry()
        latch.publish_metrics(registry)
        snapshot = registry.snapshot()
        total = (
            snapshot.get("tlb.screened_frac")
            + snapshot.get("ctc.resolved_frac")
            + snapshot.get("latch.precise_frac")
        )
        assert total == pytest.approx(1.0)

    def test_cpu_publishes_instruction_and_syscall_counts(self):
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.txt", b"x"))
        cpu = CPU(assemble(PROGRAM), devices=devices)
        cpu.run()
        registry = MetricsRegistry()
        cpu.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot.get("cpu.instructions") == cpu.step_count
        assert snapshot.get("cpu.syscalls") == 2
        assert snapshot.get("cpu.halted") == 1

    def test_dift_engine_publishes(self):
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.txt", b"payload"))
        cpu = CPU(assemble(PROGRAM), devices=devices)
        engine = DIFTEngine()
        cpu.attach(engine)
        cpu.run()
        registry = MetricsRegistry()
        engine.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot.get("dift.instructions") == engine.stats.instructions
        assert snapshot.get("dift.tainted_instructions") > 0
        assert snapshot.get("dift.tainted_bytes_live") == (
            engine.shadow.tainted_byte_count
        )

    def test_slatch_snapshot_covers_whole_stack(self):
        system = _run_slatch()
        snapshot = system.snapshot()
        assert snapshot.get("slatch.traps") == system.counters.traps
        assert snapshot.get("slatch.hw_instructions") == (
            system.counters.hw_instructions
        )
        assert snapshot.get("cpu.instructions") == system.cpu.step_count
        assert snapshot.get("latch.memory_checks") is not None
        assert snapshot.get("slatch.sw_fraction") == pytest.approx(
            system.counters.sw_fraction
        )

    def test_slatch_epoch_histograms_track_transitions(self):
        system = _run_slatch()
        hw = system.obs.histogram("slatch.epoch.hw_duration")
        sw = system.obs.histogram("slatch.epoch.sw_duration")
        assert hw.count == system.counters.traps
        assert sw.count == system.counters.returns
        if sw.count:
            assert sw.total == pytest.approx(system.counters.sw_instructions)

    def test_slatch_tracer_sees_mode_switches(self):
        system = _run_slatch()
        traps = system.tracer.events("slatch.trap")
        assert len(traps) == system.counters.traps
        assert all("hw_span" in event for event in traps)

    def test_queue_simulator_records_occupancy(self):
        stream = EpochStream(
            name="synthetic",
            lengths=np.array([100, 50, 100, 50, 100], dtype=np.int64),
            tainted_counts=np.array([0, 40, 0, 40, 0], dtype=np.int64),
        )
        registry = MetricsRegistry()
        report = TwoCoreQueueSimulator(filtered=True).run(stream, obs=registry)
        assert registry.histogram("platch.queue.occupancy").count == 5
        snapshot = registry.snapshot()
        assert snapshot.get("platch.queue.stall_cycles") == report.stall_cycles
        assert snapshot.get("platch.queue.events_enqueued") == (
            report.events_enqueued
        )
        assert snapshot.get("platch.overhead") == pytest.approx(report.overhead)

    def test_queue_simulator_without_obs_unchanged(self):
        stream = EpochStream(
            name="synthetic",
            lengths=np.array([100, 50, 100], dtype=np.int64),
            tainted_counts=np.array([0, 40, 0], dtype=np.int64),
        )
        sim = TwoCoreQueueSimulator(filtered=True)
        assert sim.run(stream).stall_cycles == sim.run(
            stream, obs=MetricsRegistry()
        ).stall_cycles

    def test_hlatch_report_consumes_snapshot(self):
        system = HLatchSystem()
        system.write_tags(0x2000, b"\x01" * 8)
        for address in (0x2000, 0x2004, 0x9000, 0x2100):
            system.access(address, 4)
        snapshot = system.snapshot()
        report = system.report("probe")
        assert report.accesses == snapshot.get("latch.memory_checks")
        assert report.ctc_misses == snapshot.get("ctc.misses")
        assert report.tcache_misses == snapshot.get("hlatch.tcache.misses")
        assert report.sent_to_precise == snapshot.get("latch.sent_to_precise")
        split = report.resolution_split()
        assert sum(split.values()) == pytest.approx(1.0)


# ----------------------------------------------------- golden-trace check


class TestGoldenTraceIntegration:
    """CTC counters must match the levels reported per check.

    A deterministic access sequence over a known taint layout: every
    :class:`LatchCheckResult` says where its access was resolved, so the
    published CTC hit/miss counters are fully predicted by the results.
    All accesses are single-domain (size ≤ 64), making ``ctc_hit``
    unambiguous.
    """

    def _golden_latch(self):
        latch = LatchModule(LatchConfig())
        # Taint two domains on one page; leave a second page clean.
        latch.update_memory_tags(0x0040, b"\x01" * 8)
        latch.update_memory_tags(0x0800, b"\x01" * 4)
        # Tag writes themselves go through the CTC; zero the counters so
        # the published numbers reflect only the golden checks below.
        latch.reset_stats()
        return latch

    def _golden_addresses(self):
        # Mix of: clean page (TLB screen), hot page clean domains (CTC),
        # tainted domains (precise), with re-touches for CTC hits.
        return (
            [0x0040, 0x0040, 0x0080, 0x0100, 0x0800, 0x0804, 0x5000, 0x5040]
            + [0x0040 + 64 * k for k in range(8)]
            + [0x0040, 0x0800, 0x6000]
        )

    def test_ctc_counters_match_check_levels(self):
        latch = self._golden_latch()
        results = [
            latch.check_memory(address, 4)
            for address in self._golden_addresses()
        ]
        registry = MetricsRegistry()
        latch.publish_metrics(registry)
        snapshot = registry.snapshot()

        by_level = {
            level: [r for r in results if r.level is level]
            for level in CheckLevel
        }
        assert snapshot.get("latch.resolved_by_tlb") == len(
            by_level[CheckLevel.TLB]
        )
        assert snapshot.get("latch.resolved_by_ctc") == len(
            by_level[CheckLevel.CTC]
        )
        assert snapshot.get("latch.sent_to_precise") == len(
            by_level[CheckLevel.PRECISE]
        )
        assert snapshot.get("latch.memory_checks") == len(results)

        # TLB-screened checks never consult the CTC; the rest consult it
        # exactly once (single-domain accesses), hitting iff ctc_hit.
        consulted = [r for r in results if r.level is not CheckLevel.TLB]
        assert all(r.ctc_hit is not None for r in consulted)
        assert all(r.ctc_hit is None for r in by_level[CheckLevel.TLB])
        expected_hits = sum(1 for r in consulted if r.ctc_hit)
        expected_misses = sum(1 for r in consulted if not r.ctc_hit)
        assert snapshot.get("ctc.accesses") == len(consulted)
        assert snapshot.get("ctc.hits") == expected_hits
        assert snapshot.get("ctc.misses") == expected_misses
        assert snapshot.get("ctc.hit_rate") == pytest.approx(
            expected_hits / len(consulted)
        )

        # The golden trace exercises every level at least once.
        assert all(by_level[level] for level in CheckLevel)


# ----------------------------------------------------------- scoped views


class TestScopedRegistry:
    """Satellite regression: two instrumented subsystems in one process
    must publish side by side instead of colliding on shared names."""

    def test_two_pipelines_one_process_do_not_collide(self):
        from repro.obs import ScopedRegistry
        from repro.workloads import programs
        from repro.pipeline import StreamingPipeline

        registry = MetricsRegistry()
        results = {}
        for tenant in ("alpha", "beta"):
            cpu = programs.checksum().make_cpu()
            pipeline = StreamingPipeline(
                cpu, registry=registry.scoped(f"serve.tenant.{tenant}")
            )
            cpu.run(300_000)
            pipeline.finish()
            pipeline.accumulate_metrics(
                registry.scoped(f"serve.tenant.{tenant}")
            )
            results[tenant] = pipeline.stats.enqueued
        snapshot = registry.snapshot()
        for tenant in ("alpha", "beta"):
            assert snapshot.get(
                f"serve.tenant.{tenant}.pipeline.events.enqueued"
            ) == results[tenant]
        # Nothing leaked onto the unscoped names.
        assert snapshot.get("pipeline.events.enqueued") is None

    def test_qualified_names_visible_from_base(self):
        registry = MetricsRegistry()
        scope = registry.scoped("svc")
        scope.counter("requests").inc(3)
        assert registry.get("svc.requests").value == 3
        assert registry.snapshot().get("svc.requests") == 3

    def test_scopes_nest(self):
        registry = MetricsRegistry()
        inner = registry.scoped("serve").scoped("tenant-a")
        inner.gauge("depth").set(7)
        assert inner.prefix == "serve.tenant-a"
        assert registry.get("serve.tenant-a.depth").value == 7

    def test_iteration_filters_to_own_namespace(self):
        registry = MetricsRegistry()
        registry.counter("global.hits").inc()
        a = registry.scoped("a")
        b = registry.scoped("b")
        a.counter("x").inc()
        a.counter("y").inc()
        b.counter("x").inc()
        assert sorted(a.names()) == ["a.x", "a.y"]
        assert len(a) == 2 and len(b) == 1
        assert "x" in a and "z" not in a

    def test_prefix_is_a_boundary_not_a_substring(self):
        registry = MetricsRegistry()
        registry.scoped("ab").counter("x").inc()
        registry.scoped("a").counter("x").inc()
        assert [m.name for m in registry.scoped("a").metrics()] == ["a.x"]

    def test_reset_zeroes_only_the_scope(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc(5)
        scope = registry.scoped("tmp")
        scope.counter("drop").inc(9)
        scope.reset()
        assert registry.get("tmp.drop").value == 0
        assert registry.get("keep").value == 5

    def test_scope_snapshot_excludes_other_namespaces(self):
        registry = MetricsRegistry()
        registry.counter("other").inc()
        scope = registry.scoped("mine")
        scope.counter("c").inc(2)
        snapshot = scope.snapshot()
        assert snapshot.get("mine.c") == 2
        assert "other" not in snapshot

    def test_same_scope_twice_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.scoped("s").counter("n")
        second = registry.scoped("s").counter("n")
        assert first is second

    def test_invalid_prefixes_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.scoped("")
        with pytest.raises(ValueError):
            registry.scoped("trailing.")

    def test_callback_gauges_through_scope(self):
        registry = MetricsRegistry()
        depth = {"value": 3}
        registry.scoped("q").gauge(
            "depth", callback=lambda: depth["value"]
        )
        assert registry.snapshot().get("q.depth") == 3
        depth["value"] = 11
        assert registry.snapshot().get("q.depth") == 11
