"""Binary encoding round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import (
    EncodingError,
    decode,
    decode_program,
    encode,
    encode_program,
)
from repro.isa.instructions import Format, Instruction, OPCODE_FORMAT, Opcode

_REG = st.integers(min_value=0, max_value=15)


def _instruction_strategy():
    """Generate arbitrary well-formed instructions."""

    def build(opcode, rd, rs1, rs2, imm12, imm16, imm20):
        fmt = OPCODE_FORMAT[opcode]
        if fmt == Format.R:
            return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
        if fmt == Format.I:
            if opcode == Opcode.LTNT:
                return Instruction(opcode, rd=rd)
            return Instruction(opcode, rd=rd, rs1=rs1, imm=imm16)
        if fmt in (Format.S, Format.B):
            return Instruction(opcode, rs1=rs1, rs2=rs2, imm=imm12)
        if fmt == Format.J:
            return Instruction(opcode, rd=rd, imm=imm20 * 4)
        if fmt == Format.U:
            return Instruction(opcode, rd=rd, imm=imm16 & 0xFFFF)
        if opcode == Opcode.STRF:
            return Instruction(opcode, rs1=rs1)
        return Instruction(opcode)

    return st.builds(
        build,
        st.sampled_from(list(Opcode)),
        _REG,
        _REG,
        _REG,
        st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1),
        st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1),
    )


class TestRoundTrip:
    @given(_instruction_strategy())
    def test_encode_decode_roundtrip(self, instruction):
        word = encode(instruction)
        assert 0 <= word < (1 << 32)
        decoded = decode(word)
        assert decoded.opcode == instruction.opcode
        fmt = instruction.format
        if fmt in (Format.R, Format.I, Format.J, Format.U):
            assert decoded.rd == instruction.rd
        if fmt in (Format.S, Format.B):
            assert decoded.rs1 == instruction.rs1
            assert decoded.rs2 == instruction.rs2
            assert decoded.imm == instruction.imm
        if fmt in (Format.I, Format.J, Format.U) and instruction.opcode not in (
            Opcode.LTNT,
        ):
            assert decoded.imm == (
                instruction.imm & 0xFFFF
                if fmt == Format.U
                else instruction.imm
            )

    def test_specific_encodings_stable(self):
        # The binary format is ABI-stable; pin a few exact words.
        assert encode(Instruction(Opcode.NOP)) == 0x00000000
        assert encode(Instruction(Opcode.HALT)) == 0x3F000000
        word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert word == (0x01 << 24) | (1 << 20) | (2 << 16) | (3 << 12)

    def test_negative_immediates_sign_extend(self):
        decoded = decode(encode(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-5)))
        assert decoded.imm == -5

    def test_store_negative_offset(self):
        decoded = decode(encode(Instruction(Opcode.SW, rs1=2, rs2=3, imm=-8)))
        assert decoded.imm == -8 and decoded.rs1 == 2 and decoded.rs2 == 3

    def test_jal_offset_scaling(self):
        decoded = decode(encode(Instruction(Opcode.JAL, rd=1, imm=-1024)))
        assert decoded.imm == -1024


class TestErrors:
    def test_unknown_opcode_byte(self):
        with pytest.raises(EncodingError):
            decode(0xEE000000)

    def test_unaligned_jump_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.JAL, rd=1, imm=6))

    def test_store_immediate_out_of_12_bits(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.SW, rs1=1, rs2=2, imm=4096))

    def test_malformed_instruction_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.ADD, rd=1))


class TestProgramBlobs:
    def test_encode_decode_program(self):
        instructions = [
            Instruction(Opcode.ADDI, rd=1, rs1=0, imm=5),
            Instruction(Opcode.ADD, rd=2, rs1=1, rs2=1),
            Instruction(Opcode.HALT),
        ]
        blob = encode_program(instructions)
        assert len(blob) == 12
        decoded = decode_program(blob)
        assert [i.opcode for i in decoded] == [i.opcode for i in instructions]

    def test_misaligned_blob_rejected(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00\x01\x02")
