"""Edge cases of the streaming pipeline: saturation, silence, ordering.

Each test pins one failure mode the pipeline's design guards against:
queue-full backpressure, programs that never generate an event,
mid-stream taint sources racing the consumer, a saturated pending FIFO,
and run-to-run determinism of the compatibility wrapper.
"""

import pytest

from repro.dift.engine import DIFTEngine
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import DeviceTable, VirtualFile
from repro.pipeline import PipelineConfig, StreamingPipeline
from repro.platch.functional import PLatchSystem
from repro.platch.pending import PendingUpdateTracker
from repro.workloads import programs

from tests.test_pipeline import run_pipeline, run_reference, signature

#: A taint source mid-stream: 8 tainted bytes land in ``buf``, a clean
#: store clears byte 0, an *untainted* read then overwrites bytes 0-3,
#: and dependent loads straddle the clean/tainted boundary before the
#: buffer flows to the output sink.  Every one of those transitions must
#: reach the consumer in commit order.
MIDSTREAM_PROGRAM = """
.data
tpath:  .asciiz "t.txt"
upath:  .asciiz "u.txt"
buf:    .space 16
.text
_start:
    li   r3, 3
    li   r4, tpath
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 8
    syscall
    li   r8, buf
    li   r9, 0
    sb   r9, 0(r8)
    li   r3, 3
    li   r4, upath
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 4
    syscall
    lbu  r10, 2(r8)
    lbu  r11, 6(r8)
    li   r3, 2
    li   r4, 0
    li   r5, buf
    li   r6, 8
    syscall
    halt
"""


def _midstream_cpu():
    devices = DeviceTable()
    devices.register_file(VirtualFile("t.txt", b"TAINTTED", tainted=True))
    devices.register_file(VirtualFile("u.txt", b"okok", tainted=False))
    return CPU(assemble(MIDSTREAM_PROGRAM), devices=devices)


class TestQueueSaturation:
    def test_full_queue_stalls_producer_and_stays_correct(self):
        # drain_batch far above queue_capacity: automatic drains never
        # fire, so every drain is forced by backpressure.
        pipeline = run_pipeline(
            lambda: programs.echo_server(), None,
            queue_capacity=4, drain_batch=64,
        )
        assert pipeline.stats.queue_full_stalls > 0
        assert pipeline.model.stall_cycles > 0
        reference = run_reference(lambda: programs.echo_server(), None)
        assert signature(pipeline.engine) == signature(reference)

    def test_stall_metrics_published(self):
        pipeline = run_pipeline(
            lambda: programs.echo_server(), None,
            queue_capacity=4, drain_batch=64,
        )
        snapshot = pipeline.snapshot()
        assert snapshot.get("pipeline.queue.stalls") == (
            pipeline.stats.queue_full_stalls
        )
        assert snapshot.get("pipeline.queue.stall_cycles") > 0
        assert snapshot.get("pipeline.queue.high_water") == 4


class TestZeroEventPrograms:
    def test_untainted_run_enqueues_no_step_events(self):
        pipeline = run_pipeline(
            lambda: programs.file_filter(tainted=False), None
        )
        assert pipeline.stats.enqueued == 0
        assert pipeline.stats.suppressed > 0
        assert pipeline.stats.queue_full_stalls == 0
        assert pipeline.stats.enqueue_fraction == 0.0
        # I/O syscalls still traverse the queue as control records.
        assert pipeline.stats.control_events > 0
        assert pipeline.stats.control_drained == pipeline.stats.control_events
        assert pipeline.engine.shadow.tainted_byte_count == 0

    def test_model_predicts_zero_stall_for_silent_stream(self):
        pipeline = run_pipeline(
            lambda: programs.file_filter(tainted=False), None
        )
        validation = pipeline.validate_model()
        assert pipeline.model.stall_cycles == 0
        assert validation.exact
        assert validation.predicted_stall_cycles == 0


class TestMidStreamTaintSources:
    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_ordering_with_lazy_drain(self, backend):
        """Drains happen only at halt, yet ordering is preserved."""
        reference_cpu = _midstream_cpu()
        reference = DIFTEngine()
        reference_cpu.attach(reference)
        reference_cpu.run(10_000)

        cpu = _midstream_cpu()
        pipeline = StreamingPipeline(cpu, config=PipelineConfig(
            queue_capacity=256, drain_batch=10_000, backend=backend,
        ))
        cpu.run(10_000)
        pipeline.finish()
        assert signature(pipeline.engine) == signature(reference)
        # The interesting shape actually occurred: some taint survives
        # (bytes 4-7) while the overwritten prefix was really cleared.
        tainted = set(reference.shadow.iter_tainted_bytes())
        assert tainted, "scenario must end with live taint"
        assert len(tainted) < 8, "untainted read must clear some bytes"

    def test_input_marks_coarse_state_before_drain(self):
        """Readers between INPUT and its drain must hit the gate."""
        cpu = _midstream_cpu()
        pipeline = StreamingPipeline(cpu, config=PipelineConfig(
            queue_capacity=256, drain_batch=10_000,
        ))
        cpu.run(10_000)
        # Before finish(): the queue still holds everything, yet the
        # loads after the tainted read must have been admitted (they
        # could not be proven clean).
        assert pipeline.stats.enqueued > 0
        pipeline.finish()
        assert pipeline.stats.drained == pipeline.stats.enqueued


class TestPendingFallback:
    def test_tiny_pending_fifo_forces_retry_path(self):
        scenario = programs.file_filter()
        cpu = scenario.make_cpu()
        pipeline = StreamingPipeline(cpu, config=PipelineConfig(
            queue_capacity=256, drain_batch=10_000, gate_batch=32,
            backend="vector",
        ))
        tiny = PendingUpdateTracker(capacity=2)
        pipeline.pending = tiny
        pipeline.gate.pending = tiny
        cpu.run(300_000)
        pipeline.finish()
        assert tiny.stalls > 0, "fallback path must actually trigger"
        reference = run_reference(lambda: programs.file_filter(), None)
        assert signature(pipeline.engine) == signature(reference)


class TestWrapperDeterminism:
    def test_wrapper_runs_are_bit_identical(self):
        def one_run():
            cpu = programs.echo_server().make_cpu()
            system = PLatchSystem(cpu, queue_capacity=16, drain_batch=4)
            cpu.run(300_000)
            system.drain_all()
            return signature(system.engine), system.counters

        first_sig, first_counters = one_run()
        second_sig, second_counters = one_run()
        assert first_sig == second_sig
        assert first_counters == second_counters


class TestIdempotentTeardown:
    """Repeated finish/drain after completion must be true no-ops.

    The serving layer drains sessions once when a client disconnects
    and again at teardown; any metric or state movement on the second
    pass would skew per-tenant accounting (and, before the fix, each
    empty drain logged a phantom occupancy sample and TRF resync).
    """

    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_double_finish_is_a_true_noop(self, backend):
        from repro.obs import MetricsRegistry

        cpu = programs.file_filter().make_cpu()
        pipeline = StreamingPipeline(cpu, config=PipelineConfig(
            gate_batch=1 if backend == "scalar" else 32,
            backend=backend,
        ))
        cpu.run(300_000)
        pipeline.finish()

        def state():
            registry = MetricsRegistry()
            pipeline.publish_metrics(registry)
            return (
                signature(pipeline.engine),
                pipeline.stats,
                len(pipeline._queue_instruments.occupancy.values()),
                registry.snapshot().to_dict(),
            )

        before = state()
        pipeline.finish()
        pipeline.drain()
        pipeline.drain_all()
        pipeline.finish()
        assert state() == before

    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_empty_drain_records_no_occupancy_sample(self, backend):
        cpu = programs.checksum().make_cpu()
        pipeline = StreamingPipeline(cpu, config=PipelineConfig(
            gate_batch=1 if backend == "scalar" else 32,
            backend=backend,
        ))
        cpu.run(300_000)
        pipeline.finish()
        samples = len(pipeline._queue_instruments.occupancy.values())
        assert pipeline.drain() == 0
        assert len(
            pipeline._queue_instruments.occupancy.values()
        ) == samples

    def test_closed_queue_rejects_straggler_batches(self):
        from repro.machine.events import StepEvent
        from repro.pipeline.events import EventKind, PipelineEvent

        cpu = programs.checksum().make_cpu()
        pipeline = StreamingPipeline(cpu)
        cpu.run(300_000)
        pipeline.finish()
        pipeline.queue.close()
        pipeline.queue.close()  # idempotent
        with pytest.raises(RuntimeError):
            pipeline.queue.append(PipelineEvent(
                kind=EventKind.STEP, payload=None, sequence=-1,
            ))


class TestDetachedPipeline:
    def test_detached_pipeline_has_no_cpu_to_run(self):
        pipeline = StreamingPipeline(cpu=None)
        with pytest.raises(RuntimeError):
            pipeline.run()

    def test_detached_pipeline_replays_recorded_events(self):
        # Feeding a recorded event stream into a detached pipeline must
        # land exactly where the attached run landed.
        recorded = []

        class Recorder:
            def on_step(self, event):
                recorded.append(("step", event))

            def on_input(self, event):
                recorded.append(("input", event))

            def on_output(self, event):
                recorded.append(("output", event))

            def on_halt(self, step_index):
                recorded.append(("halt", step_index))

        cpu = programs.substitution_cipher().make_cpu()
        cpu.attach(Recorder())
        cpu.run(300_000)
        reference = run_reference(
            lambda: programs.substitution_cipher(), None
        )

        detached = StreamingPipeline(cpu=None, config=PipelineConfig(
            gate_batch=1, backend="scalar",
        ))
        for kind, payload in recorded:
            if kind == "step":
                detached.on_step(payload)
            elif kind == "input":
                detached.on_input(payload)
            elif kind == "output":
                detached.on_output(payload)
            else:
                detached.on_halt(payload)
        detached.finish()
        assert signature(detached.engine) == signature(reference)
