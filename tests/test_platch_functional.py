"""Functional P-LATCH differential tests: delayed but lossless detection."""

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.policy import leak_detection_policy
from repro.platch.functional import PLatchSystem
from repro.workloads import attacks, programs

SCENARIOS = [
    ("file-filter", lambda: programs.file_filter(), None),
    ("checksum", lambda: programs.checksum(), None),
    ("cipher", lambda: programs.substitution_cipher(), None),
    ("echo", lambda: programs.echo_server(), None),
    ("phased", lambda: programs.phased_compute(), None),
    ("overflow", lambda: attacks.buffer_overflow(hijack=True), None),
    ("overflow-benign", lambda: attacks.buffer_overflow(hijack=False), None),
    ("leak", lambda: attacks.data_leak(leak=True), leak_detection_policy),
]


def run_reference(build, policy_factory):
    scenario = build()
    cpu = scenario.make_cpu()
    engine = DIFTEngine(policy_factory() if policy_factory else None)
    cpu.attach(engine)
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return engine


def run_platch(build, policy_factory, **kwargs):
    scenario = build()
    cpu = scenario.make_cpu()
    system = PLatchSystem(
        cpu, policy=policy_factory() if policy_factory else None, **kwargs
    )
    try:
        cpu.run(300_000)
    except Exception:
        pass
    system.drain_all()
    return system


def signature(engine):
    return (
        [(alert.kind, alert.pc) for alert in engine.alerts],
        list(engine.shadow.iter_tainted_bytes()),
    )


@pytest.mark.parametrize(
    "name,build,policy", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
@pytest.mark.parametrize("drain_batch", [1, 8, 64])
def test_two_core_monitoring_is_lossless(name, build, policy, drain_batch):
    reference = run_reference(build, policy)
    system = run_platch(build, policy, drain_batch=drain_batch)
    assert signature(system.engine) == signature(reference)


def test_queue_filters_most_instructions():
    system = run_platch(lambda: programs.phased_compute(clean_iterations=1500), None)
    counters = system.counters
    assert counters.enqueue_fraction < 0.4
    assert counters.drained == counters.enqueued


def test_pending_tracker_catches_back_to_back_dependences():
    # A store of tainted data immediately read back: the read commits
    # while the store may still sit in the queue; the pending tracker
    # must force it to be monitored.
    system = run_platch(lambda: programs.file_filter(), None, drain_batch=10_000)
    # With an effectively infinite drain batch threshold, events only
    # drain at halt — the pending guard carried all intermediate reads.
    reference = run_reference(lambda: programs.file_filter(), None)
    assert signature(system.engine) == signature(reference)


def test_tiny_queue_forces_stalls_but_stays_correct():
    system = run_platch(
        lambda: programs.file_filter(), None,
        queue_capacity=4, drain_batch=2,
    )
    reference = run_reference(lambda: programs.file_filter(), None)
    assert signature(system.engine) == signature(reference)


def test_enqueue_fraction_tracks_taint_activity():
    clean = run_platch(
        lambda: programs.file_filter(tainted=False), None
    ).counters.enqueue_fraction
    tainted = run_platch(
        lambda: programs.file_filter(tainted=True), None
    ).counters.enqueue_fraction
    assert clean == 0.0
    assert tainted > 0.0
