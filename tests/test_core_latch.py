"""LatchModule tests: check path, update path, and the superset invariant.

The crucial property (Figure 1 of the paper): the coarse state is always
a superset of the precise state — a clean coarse check guarantees clean
bytes, so LATCH can never produce a false negative.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.latch import CheckLevel, LatchConfig, LatchModule
from repro.dift.tags import ShadowMemory
from repro.isa.instructions import Instruction, Opcode
from repro.machine.events import MemoryAccess, StepEvent


class TestCheckPath:
    def test_cold_page_resolved_by_tlb(self):
        latch = LatchModule()
        result = latch.check_memory(0x9000, 4)
        assert result.level == CheckLevel.TLB
        assert not result.coarse_tainted

    def test_tainted_domain_goes_to_precise(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1000, b"\x01")
        result = latch.check_memory(0x1000, 4)
        assert result.level == CheckLevel.PRECISE
        assert result.coarse_tainted
        assert latch.last_exception_address == 0x1000

    def test_false_positive_same_domain(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1000, b"\x01")
        # Different byte, same 64-byte domain → coarse positive.
        result = latch.check_memory(0x1020, 1)
        assert result.coarse_tainted

    def test_clean_domain_in_hot_page_resolved_by_ctc(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1000, b"\x01")
        # Same page-level domain (2 KiB), different 64 B domain.
        result = latch.check_memory(0x1100, 4)
        assert result.level == CheckLevel.CTC
        assert not result.coarse_tainted

    def test_without_tlb_bits_everything_hits_ctc(self):
        latch = LatchModule(LatchConfig(use_tlb_bits=False))
        result = latch.check_memory(0x9000, 4)
        assert result.level == CheckLevel.CTC

    def test_access_spanning_domains(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1040, b"\x01")  # second domain
        result = latch.check_memory(0x103E, 4)  # spans 0x1000 and 0x1040
        assert result.coarse_tainted

    def test_stats_accumulate(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1000, b"\x01")
        latch.check_memory(0x1000)
        latch.check_memory(0x9000)
        stats = latch.stats
        assert stats.memory_checks == 2
        assert stats.sent_to_precise == 1
        assert stats.resolved_by_tlb == 1
        fractions = stats.level_fractions()
        assert fractions["tlb"] == pytest.approx(0.5)
        assert fractions["precise"] == pytest.approx(0.5)


class TestStepChecks:
    def _event(self, regs_read=(), accesses=()):
        return StepEvent(
            index=0,
            pc=0,
            instruction=Instruction(Opcode.NOP),
            regs_read=tuple(regs_read),
            reads=tuple(accesses),
            next_pc=4,
        )

    def test_register_positive(self):
        latch = LatchModule()
        latch.trf.taint(5)
        check = latch.check_step(self._event(regs_read=(5,)))
        assert check.register_tainted and check.coarse_tainted
        assert latch.stats.register_positives == 1

    def test_clean_step(self):
        latch = LatchModule()
        check = latch.check_step(
            self._event(regs_read=(1, 2), accesses=[MemoryAccess(0x100, 4, False)])
        )
        assert not check.coarse_tainted

    def test_memory_positive(self):
        latch = LatchModule()
        latch.update_memory_tags(0x100, b"\x01")
        check = latch.check_step(
            self._event(accesses=[MemoryAccess(0x100, 4, False)])
        )
        assert check.coarse_tainted
        assert latch.stats.coarse_positives == 1


class TestUpdatePath:
    def test_strf_loads_register_mask(self):
        latch = LatchModule()
        latch.set_trf_mask((1 << 3) | (1 << 7))
        assert latch.trf.tainted_registers() == (3, 7)

    def test_bulk_load_from_shadow(self):
        latch = LatchModule()
        shadow = ShadowMemory()
        shadow.set_range(0x4000, 10, 1)
        latch.bulk_load_from_shadow(shadow)
        assert latch.check_memory(0x4000).coarse_tainted
        assert not latch.check_memory(0x8000).coarse_tainted

    def test_update_keeps_tlb_bits_coherent(self):
        latch = LatchModule()
        latch.check_memory(0x1000)  # TLB entry resident, bit clean
        latch.update_memory_tags(0x1000, b"\x01")
        # The resident TLB entry must now route the access to the CTC.
        result = latch.check_memory(0x1000)
        assert result.coarse_tainted

    def test_reconcile_clears_refreshes_tlb(self):
        latch = LatchModule()
        shadow = ShadowMemory()
        latch.update_memory_tags(0x1000, b"\x01")
        latch.update_memory_tags(0x1000, b"\x00")
        assert latch.check_memory(0x1000).coarse_tainted  # deferred
        cleared = latch.reconcile_clears(shadow.region_clean)
        assert cleared == 1
        result = latch.check_memory(0x1000)
        assert not result.coarse_tainted
        assert result.level == CheckLevel.TLB

    def test_reset_stats_keeps_state(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1000, b"\x01")
        latch.check_memory(0x1000)
        latch.reset_stats()
        assert latch.stats.memory_checks == 0
        assert latch.check_memory(0x1000).coarse_tainted


class TestSupersetInvariant:
    """Coarse state ⊇ precise state under arbitrary update sequences."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x7FFF),  # address
                st.integers(min_value=1, max_value=8),       # length
                st.booleans(),                               # taint or clear
            ),
            min_size=1,
            max_size=60,
        ),
        st.booleans(),  # defer clears (S-LATCH) or immediate (H-LATCH)
    )
    def test_no_false_negatives(self, operations, defer):
        latch = LatchModule(LatchConfig(ctc_entries=4, tlb_entries=8))
        shadow = ShadowMemory()
        for address, length, taint in operations:
            tag = 1 if taint else 0
            shadow.set_range(address, length, tag)
            tags = bytes([tag]) * length
            if defer:
                latch.update_memory_tags(address, tags)
            else:
                latch.update_memory_tags(
                    address, tags, defer_clear=False,
                    clean_oracle=shadow.region_clean,
                )
        # Every precisely tainted byte must be coarse-tainted.
        for byte_address in shadow.iter_tainted_bytes():
            assert latch.check_memory(byte_address, 1).coarse_tainted
        # After reconciling clears, the invariant still holds and fully
        # clean domains are released.
        latch.reconcile_clears(shadow.region_clean)
        for byte_address in shadow.iter_tainted_bytes():
            assert latch.check_memory(byte_address, 1).coarse_tainted

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x3FFF),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_immediate_clears_are_exact_at_domain_level(self, operations):
        """With the Figure 12 logic, a domain bit is set iff the domain
        holds at least one tainted byte."""
        latch = LatchModule(LatchConfig(ctc_entries=8))
        shadow = ShadowMemory()
        for address, taint in operations:
            tag = 1 if taint else 0
            shadow.set(address, tag)
            latch.update_memory_tags(
                address, bytes([tag]), defer_clear=False,
                clean_oracle=shadow.region_clean,
            )
        geometry = latch.geometry
        touched_domains = {geometry.domain_base(a) for a, _ in operations}
        for base in touched_domains:
            expected = shadow.any_tainted(base, geometry.domain_size)
            assert latch.ctt.is_domain_tainted(base) == expected


class TestStraddlingAndWrap:
    """Multi-byte accesses across domain / page / address-space edges."""

    def test_straddling_store_taints_both_domains(self):
        latch = LatchModule()
        latch.update_memory_tags(0x103E, b"\x01" * 4)  # 2 bytes each side
        assert latch.ctt.is_domain_tainted(0x1000)
        assert latch.ctt.is_domain_tainted(0x1040)

    def test_straddling_clear_defers_in_both_domains(self):
        latch = LatchModule()
        shadow = ShadowMemory()
        latch.update_memory_tags(0x103E, b"\x01" * 4)
        latch.update_memory_tags(0x103E, b"\x00" * 4)
        # Deferred: both bits still set until reconcile releases both.
        assert latch.check_memory(0x1000, 1).coarse_tainted
        assert latch.check_memory(0x1040, 1).coarse_tainted
        assert latch.reconcile_clears(shadow.region_clean) == 2
        assert not latch.check_memory(0x103E, 4).coarse_tainted

    def test_store_straddling_page_domains_updates_both_tlb_bits(self):
        latch = LatchModule()
        span = latch.geometry.word_span
        latch.check_memory(span - 4, 1)   # both pages TLB-resident, clean
        latch.check_memory(span, 1)
        latch.update_memory_tags(span - 4, b"\x01" * 8)
        assert latch.check_memory(span - 4, 1).coarse_tainted
        assert latch.check_memory(span, 1).coarse_tainted

    def test_wrap_around_store_taints_top_and_bottom(self):
        latch = LatchModule()
        latch.update_memory_tags(0xFFFF_FFFE, b"\x01" * 4)
        assert latch.ctt.is_domain_tainted(0xFFFF_FFC0)
        assert latch.ctt.is_domain_tainted(0)

    def test_wrap_around_check_sees_low_memory_taint(self):
        latch = LatchModule()
        latch.update_memory_tags(0x0, b"\x01")
        result = latch.check_memory(0xFFFF_FFFE, 4)
        assert result.coarse_tainted

    def test_wrap_around_check_clean_terminates(self):
        latch = LatchModule(LatchConfig(use_tlb_bits=False))
        result = latch.check_memory(0xFFFF_FFF8, 16)
        assert not result.coarse_tainted

    def test_unmasked_addresses_fold_to_canonical_domains(self):
        latch = LatchModule()
        latch.update_memory_tags(0x1_0000_1000, b"\x01")
        assert latch.check_memory(0x1000, 1).coarse_tainted

    def test_invariants_hold_after_wrap_traffic(self):
        latch = LatchModule(LatchConfig(ctc_entries=2, tlb_entries=2))
        shadow = ShadowMemory()
        for address, tags in (
            (0xFFFF_FFFE, b"\x01" * 4),
            (0x103E, b"\x01" * 4),
            (0xFFFF_FFFE, b"\x00" * 2),
        ):
            for offset, tag in enumerate(tags):
                shadow.set((address + offset) & 0xFFFF_FFFF, tag)
            latch.update_memory_tags(address, tags)
            latch.check_memory(address, len(tags))
            latch.check_invariants(shadow)
        latch.reconcile_clears(shadow.region_clean)
        latch.check_invariants(shadow)
