"""Tests for the live telemetry plane (obs layer).

Covers the bounded streaming histogram (fixed-bucket ladder + P²
quantile estimators) and its equivalence with exact mode, the
:class:`TelemetryExporter` delta-snapshot loop and its sinks, SLO rule
parsing and firing/resolved transitions, Prometheus-style exposition,
the ``$REPRO_FLIGHT_DIR`` dump-directory override (including the
SIGTERM path in a real subprocess), and ``read_jsonl`` tolerance of a
concurrently appending exporter.
"""

import json
import math
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import (
    AlertRule,
    FlightRecorder,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    P2Quantile,
    RingSink,
    SLOMonitor,
    TelemetryExporter,
    default_buckets,
    read_jsonl,
    render_prometheus,
)
from repro.obs.exposition import sanitize_name, split_tenant
from repro.obs.flight import ENV_FLIGHT_DIR, flight_dir, flight_path

# ---------------------------------------------------- bounded histograms


class TestBoundedHistogram:
    def _samples(self, n=20_000, seed=7):
        rng = random.Random(seed)
        return [rng.lognormvariate(0.0, 1.0) for _ in range(n)]

    def test_bounded_tracks_exact_within_tolerance(self):
        exact = Histogram("h", mode="exact")
        bounded = Histogram("h", mode="bounded")
        for value in self._samples():
            exact.record(value)
            bounded.record(value)
        assert bounded.count == exact.count
        assert bounded.total == pytest.approx(exact.total, rel=1e-9)
        assert bounded.min == exact.min
        assert bounded.max == exact.max
        for p in (50, 90, 95, 99):
            assert bounded.percentile(p) == pytest.approx(
                exact.percentile(p), rel=0.05
            ), f"p{p} diverged"

    def test_bounded_memory_is_constant(self):
        histogram = Histogram("h", mode="bounded")
        histogram.record_many(self._samples(5_000))
        # No raw samples retained — that is the whole point.
        with pytest.raises(RuntimeError):
            histogram.values()
        assert histogram._values == []
        # Fixed ladder: one bucket per bound plus the overflow bucket.
        assert len(histogram.bucket_counts()) == len(default_buckets()) + 1

    def test_exact_mode_has_no_bucket_ladder(self):
        histogram = Histogram("h")
        histogram.record(1.0)
        with pytest.raises(RuntimeError):
            histogram.bucket_counts()

    def test_value_dict_reports_mode_and_cumulative_buckets(self):
        histogram = Histogram("h", mode="bounded")
        histogram.record_many([0.001, 0.1, 3.0, 700.0])
        payload = histogram.value_dict()
        assert payload["mode"] == "bounded"
        for key in ("count", "sum", "min", "max", "mean", "percentiles"):
            assert key in payload
        buckets = payload["buckets"]
        counts = [cumulative for _bound, cumulative in buckets]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == histogram.count
        exact = Histogram("h").value_dict()
        assert exact["mode"] == "exact"
        assert "buckets" not in exact

    def test_percentile_endpoints_are_min_and_max(self):
        histogram = Histogram("h", mode="bounded")
        histogram.record_many([2.0, 9.0, 4.0])
        assert histogram.percentile(0) == 2.0
        assert histogram.percentile(100) == 9.0

    def test_merge_exact_into_bounded(self):
        source = Histogram("h")
        source.record_many([1.0, 2.0, 3.0])
        target = Histogram("h", mode="bounded")
        target.merge_from(source)
        assert target.count == 3
        assert target.total == pytest.approx(6.0)

    def test_merge_bounded_into_fresh_bounded(self):
        source = Histogram("h", mode="bounded")
        source.record_many(self._samples(2_000))
        target = Histogram("h", mode="bounded")
        target.merge_from(source)
        assert target.count == source.count
        assert target.percentile(95) == source.percentile(95)
        assert target.bucket_counts() == source.bucket_counts()

    def test_merge_bounded_into_exact_raises(self):
        source = Histogram("h", mode="bounded")
        source.record(1.0)
        with pytest.raises(RuntimeError):
            Histogram("h").merge_from(source)

    def test_reset_clears_bounded_state(self):
        histogram = Histogram("h", mode="bounded")
        histogram.record_many([1.0, 2.0])
        histogram.reset()
        assert histogram.count == 0
        assert math.isnan(histogram.percentile(50))
        histogram.record(5.0)
        assert histogram.percentile(50) == 5.0

    def test_registry_mode_applies_on_creation_only(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", mode="bounded")
        second = registry.histogram("h")  # existing instance wins
        assert second is first
        assert second.mode == "bounded"

    def test_timer_forwards_mode(self):
        registry = MetricsRegistry()
        timer = registry.timer("t", mode="bounded")
        assert timer.mode == "bounded"
        with timer:
            pass
        assert timer.histogram.count == 1


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        estimator = P2Quantile(50)
        for value in (5.0, 1.0, 3.0):
            estimator.update(value)
        assert estimator.value() == 3.0

    def test_converges_on_uniform(self):
        rng = random.Random(11)
        estimator = P2Quantile(90)
        for _ in range(20_000):
            estimator.update(rng.random())
        assert estimator.value() == pytest.approx(0.9, abs=0.02)


# --------------------------------------------------------------- SLO rules


def _latency_registry(latencies, requests=10, retries=0):
    registry = MetricsRegistry()
    timer = registry.timer(
        "serve.request_seconds", unit="seconds", mode="bounded"
    )
    for value in latencies:
        timer.record(value)
    registry.gauge("serve.requests").set(requests)
    registry.gauge("serve.retries_sent").set(retries)
    return registry


class TestAlertRules:
    def test_parse_units(self):
        assert AlertRule.parse("latency_p99 < 250ms").threshold == 250.0
        assert AlertRule.parse("latency_p99 < 0.25s").threshold == 250.0
        assert AlertRule.parse("retry_rate < 20%").threshold == pytest.approx(0.2)
        assert AlertRule.parse("divergence == 0").op == "=="

    @pytest.mark.parametrize("text", [
        "latency_p99", "latency_p99 <", "p99 ~ 3", "a < b", "x < 1day",
    ])
    def test_bad_rules_raise(self, text):
        with pytest.raises(ValueError):
            AlertRule.parse(text)

    def test_unknown_indicator_reads_snapshot_scalar(self):
        registry = MetricsRegistry()
        registry.gauge("serve.inflight").set(7)
        rule = AlertRule.parse("serve.inflight <= 4")
        value = rule.measure(registry.snapshot(), {})
        assert value == 7
        assert not rule.holds(value)

    def test_unknown_value_counts_as_met(self):
        rule = AlertRule.parse("latency_p99 < 1ms")
        assert rule.holds(None)

    def test_retry_rate_indicator(self):
        rule = AlertRule.parse("retry_rate < 50%")
        snapshot = MetricsRegistry().snapshot()
        deltas = {"serve.requests": 10, "serve.retries_sent": 8}
        assert rule.measure(snapshot, deltas) == pytest.approx(0.8)
        assert rule.measure(snapshot, {"serve.requests": 0}) is None


class TestSLOMonitor:
    def test_firing_and_resolved_transitions(self):
        registry = _latency_registry([0.5] * 50)
        flight = FlightRecorder()
        monitor = SLOMonitor(["latency_p99 < 50ms"], flight=flight)
        events = monitor.evaluate(registry.snapshot(), {})
        assert [e["name"] for e in events] == ["slo.alert.firing"]
        assert monitor.firing == ["latency_p99 < 50ms"]
        assert monitor.health == 0.0
        # Still firing: no new transition event.
        assert monitor.evaluate(registry.snapshot(), {}) == []
        # Recover: fast requests only.
        recovered = _latency_registry([0.001] * 50)
        events = monitor.evaluate(recovered.snapshot(), {})
        assert [e["name"] for e in events] == ["slo.alert.resolved"]
        assert monitor.firing == []
        assert monitor.health == 1.0
        names = [record["name"] for record in flight.snapshot()]
        assert names == ["slo.alert.firing", "slo.alert.resolved"]

    def test_health_scales_per_rule(self):
        registry = _latency_registry([0.5] * 50)
        monitor = SLOMonitor(["latency_p99 < 50ms", "divergence == 0"])
        monitor.evaluate(registry.snapshot(), {})
        assert monitor.health == pytest.approx(0.5)


class TestLatencyInjectionAlert:
    """The acceptance path: injected latency fires ``latency_p99``."""

    def test_injected_latency_fires_and_lands_in_flight_dump(self, tmp_path):
        registry = _latency_registry([0.300] * 100)
        dump = tmp_path / "flight.json"
        flight = FlightRecorder(path=str(dump))
        monitor = SLOMonitor(["latency_p99 < 100ms"], flight=flight)
        exporter = TelemetryExporter(registry, monitor=monitor)
        sample = exporter.tick()
        assert sample.firing == ["latency_p99 < 100ms"]
        assert sample.health < 1.0
        assert sample.alerts and sample.alerts[0]["name"] == "slo.alert.firing"
        assert sample.alerts[0]["value"] == pytest.approx(300.0, rel=0.05)
        flight.dump(reason="test")
        payload = json.loads(dump.read_text())
        recorded = [r for r in payload["records"]
                    if r["name"] == "slo.alert.firing"]
        assert recorded and recorded[0]["rule"] == "latency_p99 < 100ms"

    def test_firing_alert_raises_admission_pressure(self):
        from repro.serve.admission import AdmissionController, InFlightTable

        controller = AdmissionController(InFlightTable(4))
        assert controller._price(100) == 100  # neutral by default
        controller.pressure = 2.0
        assert controller._price(100) == 200
        controller.pressure = 100.0
        assert controller._price(100) == controller.max_backoff_ms


# --------------------------------------------------------------- exporter


class TestTelemetryExporter:
    def test_deltas_across_ticks(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.requests")
        histogram = registry.histogram("lat", mode="bounded")
        exporter = TelemetryExporter(registry)
        counter.inc(5)
        histogram.record(1.0)
        first = exporter.tick()
        assert first.deltas["serve.requests"] == 5
        assert first.deltas["lat.count"] == 1
        counter.inc(3)
        second = exporter.tick()
        assert second.deltas["serve.requests"] == 3
        assert second.deltas["lat.count"] == 0
        assert second.seq == 2
        assert exporter.latest() is second

    def test_ring_sink_retains_history(self):
        registry = MetricsRegistry()
        ring = RingSink(capacity=2)
        exporter = TelemetryExporter(registry, sinks=[ring])
        for _ in range(3):
            exporter.tick()
        assert len(ring) == 2
        assert [s.seq for s in ring.history()] == [2, 3]
        assert ring.latest().seq == 3

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = MetricsRegistry()
        registry.counter("c").inc()
        exporter = TelemetryExporter(registry, sinks=[JsonlSink(str(path))])
        exporter.tick()
        exporter.tick()
        exporter.stop(flush=True)  # closes the sink, final tick
        records = read_jsonl(str(path))
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[0]["snapshot"]["metrics"][0]["name"] == "c"

    def test_sink_failures_are_counted_not_raised(self):
        class Broken:
            def emit(self, sample):
                raise RuntimeError("boom")

        exporter = TelemetryExporter(MetricsRegistry(), sinks=[Broken()])
        sample = exporter.tick()
        assert sample.seq == 1
        assert exporter.errors == 1
        assert isinstance(exporter.last_error, RuntimeError)

    def test_collect_hook_runs_before_snapshot(self):
        registry = MetricsRegistry()

        def publish():
            registry.counter("late").inc()

        exporter = TelemetryExporter(registry, collect=publish)
        sample = exporter.tick()
        assert sample.snapshot.get("late") == 1

    def test_on_tick_callback_and_thread_lifecycle(self):
        registry = MetricsRegistry()
        seen = []
        exporter = TelemetryExporter(registry, interval=0.02)
        exporter.on_tick(lambda sample: seen.append(sample.seq))
        with exporter:
            deadline = time.time() + 2.0
            while len(seen) < 2 and time.time() < deadline:
                time.sleep(0.01)
        assert len(seen) >= 2
        assert seen == sorted(seen)

    def test_sample_dict_round_trip(self):
        from repro.obs import TelemetrySample

        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        sample = TelemetryExporter(registry).tick()
        clone = TelemetrySample.from_dict(
            json.loads(json.dumps(sample.to_dict()))
        )
        assert clone.seq == sample.seq
        assert clone.snapshot.get("g") == 4


class TestReadJsonlUnderConcurrentAppends:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = MetricsRegistry()
        with JsonlSink(str(path)) as sink:
            TelemetryExporter(registry, sinks=[sink]).tick()
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "truncat')  # mid-write tail
        records = read_jsonl(str(path))
        assert [r["seq"] for r in records] == [1]

    def test_reader_never_sees_torn_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = MetricsRegistry()
        registry.counter("c")
        exporter = TelemetryExporter(registry, sinks=[JsonlSink(str(path))])
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                exporter.tick()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.time() + 1.0
            while time.time() < deadline:
                try:
                    records = read_jsonl(str(path))
                except Exception as error:  # torn line escaped
                    failures.append(error)
                    break
                for record in records:
                    assert "seq" in record
        finally:
            stop.set()
            thread.join()
            exporter.stop(flush=False)
        assert not failures


# ------------------------------------------------------------- exposition


class TestExposition:
    def test_sanitize_and_tenant_split(self):
        assert sanitize_name("serve.request_seconds") == \
            "repro_serve_request_seconds"
        assert split_tenant("serve.inflight") == ("serve.inflight", None)
        assert split_tenant("serve.tenant.acme.events") == \
            ("serve.tenant.events", "acme")
        # Tenant names may contain dots: split at the first family head.
        assert split_tenant("serve.tenant.acme.prod.latency_seconds") == \
            ("serve.tenant.latency_seconds", "acme.prod")
        assert split_tenant(
            "serve.tenant.acme.pipeline.queue.stalls"
        ) == ("serve.tenant.pipeline.queue.stalls", "acme")

    def _sample(self):
        registry = MetricsRegistry()
        registry.counter(
            "serve.tenant.acme.events", unit="events",
            description="Trace events accepted",
        ).inc(42)
        registry.counter("serve.tenant.acme.rejected.rate").inc(3)
        latency = registry.timer(
            "serve.tenant.acme.latency_seconds", mode="bounded"
        )
        for value in (0.001, 0.002, 0.004):
            latency.record(value)
        exact = registry.histogram("runner.job.duration_seconds")
        exact.record_many([0.5, 1.5])
        registry.gauge("serve.health").set(0.5)
        monitor = SLOMonitor(["divergence == 0"])
        registry.gauge("serve.divergences").set(2)
        exporter = TelemetryExporter(registry, monitor=monitor)
        return exporter.tick()

    def test_render_prometheus_text(self):
        text = render_prometheus(self._sample())
        # Counters fold the tenant into a label and get _total.
        assert ('repro_serve_tenant_events_total{tenant="acme"} 42'
                in text)
        assert ('repro_serve_tenant_rejected_rate_total{tenant="acme"} 3'
                in text)
        # Bounded histogram: bucket ladder AND P² quantile lines.
        assert 'repro_serve_tenant_latency_seconds_bucket{tenant="acme",le="+Inf"} 3' in text
        assert 'repro_serve_tenant_latency_seconds{tenant="acme",quantile="0.99"}' in text
        # Exact histogram renders as a summary.
        assert 'repro_runner_job_duration_seconds{quantile="0.5"}' in text
        assert "repro_runner_job_duration_seconds_count 2" in text
        # Metadata + the firing divergence alert.
        assert "repro_telemetry_seq 1" in text
        assert 'repro_alert_firing{rule="divergence == 0"} 1' in text
        assert "# TYPE repro_serve_tenant_events_total counter" in text or \
            "# TYPE repro_serve_tenant_events counter" in text

    def test_render_accepts_serialized_dict(self):
        sample = self._sample()
        text_direct = render_prometheus(sample)
        text_dict = render_prometheus(
            json.loads(json.dumps(sample.to_dict()))
        )
        assert text_dict == text_direct


# ------------------------------------------------------------- flight dir


class TestFlightDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_FLIGHT_DIR, raising=False)
        assert flight_dir() is None
        assert flight_path() is None
        assert flight_dir("fallback") == "fallback"
        monkeypatch.setenv(ENV_FLIGHT_DIR, str(tmp_path))
        assert flight_dir("fallback") == str(tmp_path)
        path = flight_path("fallback")
        assert path == str(tmp_path / f"flight.{os.getpid()}.json")
        assert flight_path(filename="f.json") == str(tmp_path / "f.json")

    def test_sigterm_dumps_into_env_dir(self, tmp_path):
        script = (
            "import signal, sys, time\n"
            "from repro.obs import FlightRecorder\n"
            "from repro.obs.flight import flight_path\n"
            "flight = FlightRecorder(path=flight_path())\n"
            "assert flight.path is not None\n"
            "flight.record({'name': 'job.start', 'job': 'unit'})\n"
            "flight.install()\n"
            "print('ready', flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ)
        env[ENV_FLIGHT_DIR] = str(tmp_path)
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            assert process.stdout.readline().strip() == "ready"
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=10)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 128 + signal.SIGTERM
        dump = tmp_path / f"flight.{process.pid}.json"
        assert dump.exists(), "SIGTERM did not leave a flight dump"
        payload = json.loads(dump.read_text())
        assert payload["reason"] == f"signal:{signal.SIGTERM}"
        assert payload["records"][0]["name"] == "job.start"
