"""Conformance battery for the ``.ltrace`` columnar container.

Three layers of lock-down:

* **event conformance** — every observer event kind round-trips through
  :class:`~repro.trace.record.TraceRecorder` field-exact: the decoded
  ``StepEvent`` / ``InputEvent`` / ``OutputEvent`` stream compares equal
  (dataclass equality) to what the live CPU emitted, in the same commit
  order, and replaying it into a fresh byte-precise engine reproduces
  the reference signature;
* **golden layout pin** — the committed ``tests/golden/trace_v1.ltrace``
  must equal a fresh encode byte for byte, so the v1 binary layout
  (prologue, 64-byte alignment, section order, directory JSON) cannot
  drift silently, and its sharded replay must still reproduce the
  long-standing golden H-LATCH counters from ``expected.json``;
* **corruption hardening** — truncation, flipped bytes, foreign magic,
  and future format versions all fail at *open* time with a
  :class:`StorageFormatError` naming the file and the problem.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.check.generator import generate_program
from repro.check.oracle import run_reference, state_signature
from repro.dift.engine import DIFTEngine
from repro.machine.events import InputEvent, Observer, OutputEvent, StepEvent
from repro.trace.convert import (
    ACCESS_KIND,
    epoch_starts,
    load_columnar_trace,
    save_columnar_trace,
)
from repro.trace.format import (
    TRACE_MAGIC,
    TRACE_VERSION,
    ColumnarFile,
    to_bytes,
)
from repro.trace.record import (
    EVENT_KIND,
    TraceRecorder,
    access_window,
    iter_events,
    replay_events,
)
from repro.trace.replay import replay_columnar
from repro.workloads.storage import StorageFormatError, load_access_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
EXPECTED = json.loads((GOLDEN_DIR / "expected.json").read_text())

#: Seeds whose generated programs exercise inputs, outputs, tainted and
#: clean loads/stores, straddles, and syscall-free stretches.
SEEDS = (0, 3, 7, 11, 42)


class _EventLog(Observer):
    """Record the live object-path event stream for exact comparison."""

    def __init__(self) -> None:
        self.events = []
        self.halt = None

    def on_step(self, event: StepEvent) -> None:
        self.events.append(event)

    def on_input(self, event: InputEvent) -> None:
        self.events.append(event)

    def on_output(self, event: OutputEvent) -> None:
        self.events.append(event)

    def on_halt(self, step_index: int) -> None:
        self.halt = step_index


def _record(seed):
    """Run one generated program with recorder + live log attached."""
    cp = generate_program(seed)
    cpu = cp.make_cpu()
    recorder = TraceRecorder(name=cp.name)
    log = _EventLog()
    cpu.attach(log)
    cpu.attach(recorder)
    try:
        cpu.run(10_000)
    except Exception:
        pass
    return cp, recorder, log


class TestEventConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip_is_field_exact(self, seed):
        _, recorder, log = _record(seed)
        decoded = list(iter_events(recorder.to_bytes()))
        assert len(decoded) == len(log.events)
        for got, want in zip(decoded, log.events):
            assert type(got) is type(want)
            assert got == want

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_kind_appears_somewhere(self, seed):
        # The battery is only meaningful if the corpus of generated
        # programs actually exercises the whole event vocabulary.
        _, recorder, log = _record(seed)
        kinds = {type(event) for event in log.events}
        assert StepEvent in kinds
        if seed in (0, 7, 42):
            assert InputEvent in kinds or OutputEvent in kinds

    @pytest.mark.parametrize("seed", SEEDS)
    def test_replay_reproduces_reference_signature(self, seed):
        cp, recorder, _ = _record(seed)
        reference, _ = run_reference(cp)
        replayed = DIFTEngine()
        steps = replay_events(recorder.to_bytes(), replayed)
        assert steps == recorder.step_count
        assert state_signature(replayed) == state_signature(reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_access_window_matches_object_walk(self, seed):
        cp, recorder, _ = _record(seed)
        _, collector = run_reference(cp)
        addresses, sizes, is_write = access_window(recorder.to_bytes())
        assert addresses.tolist() == collector.addresses
        assert sizes.tolist() == collector.sizes
        assert is_write.tolist() == collector.writes

    def test_halt_is_replayed(self, tmp_path):
        _, recorder, log = _record(0)
        path = tmp_path / "run.ltrace"
        recorder.save(path)
        sink = _EventLog()
        replay_events(path, sink)
        assert recorder.halt_step == log.halt
        assert sink.halt == log.halt

    def test_kind_guard_rejects_access_trace(self):
        trace = load_access_trace(GOLDEN_DIR / "gcc_w2000_s0.npz")
        blob = to_bytes(ACCESS_KIND, {"addresses": trace.addresses}, {})
        with pytest.raises(StorageFormatError, match=EVENT_KIND):
            list(iter_events(blob))


class TestAccessTraceRoundTrip:
    @pytest.fixture(scope="class")
    def golden_trace(self):
        return load_access_trace(GOLDEN_DIR / "gcc_w2000_s0.npz")

    def test_columns_round_trip_exactly(self, golden_trace, tmp_path):
        path = tmp_path / "gcc.ltrace"
        save_columnar_trace(golden_trace, path)
        with load_columnar_trace(path) as view:
            assert view.name == golden_trace.name
            assert len(view) == golden_trace.access_count
            for column in ("addresses", "sizes", "is_write", "tainted",
                           "gap_before", "active_epoch"):
                np.testing.assert_array_equal(
                    getattr(view, column), getattr(golden_trace, column)
                )
            assert view.layout.extents == list(golden_trace.layout.extents)
            assert (view.layout.accessed_pages
                    == golden_trace.layout.accessed_pages)

    def test_views_are_zero_copy_and_read_only(self, golden_trace, tmp_path):
        path = tmp_path / "gcc.ltrace"
        save_columnar_trace(golden_trace, path)
        view = load_columnar_trace(path)
        addresses = view.addresses
        assert not addresses.flags.owndata
        assert not addresses.flags.writeable
        with pytest.raises(ValueError):
            addresses[0] = 1
        sliced = addresses[5:50]
        assert sliced.base is not None  # still a view over the map
        view.close()

    def test_epoch_starts_mark_flag_flips(self):
        flags = np.array([1, 1, 0, 0, 0, 1, 0], dtype=bool)
        assert epoch_starts(flags).tolist() == [0, 2, 5, 6]
        assert epoch_starts(np.empty(0, dtype=bool)).tolist() == []
        assert epoch_starts(np.ones(4, dtype=bool)).tolist() == [0]

    def test_bytes_and_path_sources_agree(self, golden_trace, tmp_path):
        from repro.trace.convert import columnar_trace_bytes

        path = tmp_path / "gcc.ltrace"
        save_columnar_trace(golden_trace, path)
        assert path.read_bytes() == columnar_trace_bytes(golden_trace)


class TestGoldenLayout:
    def test_v1_layout_is_byte_stable(self):
        golden = (GOLDEN_DIR / "trace_v1.ltrace").read_bytes()
        from repro.trace.convert import columnar_trace_bytes

        trace = load_access_trace(GOLDEN_DIR / "gcc_w2000_s0.npz")
        assert columnar_trace_bytes(trace) == golden

    def test_golden_prologue_fields(self):
        golden = (GOLDEN_DIR / "trace_v1.ltrace").read_bytes()
        assert golden[:4] == TRACE_MAGIC
        version = struct.unpack_from("<H", golden, 4)[0]
        assert version == TRACE_VERSION == 1

    def test_golden_replay_matches_golden_counters(self):
        # Cross-format pin: the sharded columnar replay of the committed
        # container must reproduce the long-standing golden H-LATCH
        # snapshot produced by the scalar object path.
        result = replay_columnar(
            GOLDEN_DIR / "trace_v1.ltrace", shards=4, baseline_config=None
        )
        metrics = result.system.snapshot().to_dict()["metrics"]
        assert metrics == EXPECTED["gcc"]["hlatch_snapshot"]["metrics"]


class TestCorruption:
    @pytest.fixture()
    def intact(self):
        return (GOLDEN_DIR / "trace_v1.ltrace").read_bytes()

    def _must_fail(self, blob, match):
        with pytest.raises(StorageFormatError, match=match):
            ColumnarFile(bytes(blob))

    def test_committed_truncated_fixture(self):
        with pytest.raises(StorageFormatError) as excinfo:
            ColumnarFile(GOLDEN_DIR / "corrupt_trace.ltrace")
        assert "corrupt_trace.ltrace" in str(excinfo.value)

    def test_truncated_tail(self, intact):
        self._must_fail(intact[:-7], "truncated")

    def test_truncated_to_prologue_fragment(self, intact):
        self._must_fail(intact[:10], "prologue")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ltrace"
        path.write_bytes(b"")
        with pytest.raises(StorageFormatError, match="empty"):
            ColumnarFile(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ColumnarFile(tmp_path / "nope.ltrace")

    def test_bad_magic(self, intact):
        self._must_fail(b"NOPE" + intact[4:], "bad magic")

    def test_future_version(self, intact):
        blob = bytearray(intact)
        struct.pack_into("<H", blob, 4, TRACE_VERSION + 1)
        self._must_fail(blob, "newer than this build")

    def test_version_zero(self, intact):
        blob = bytearray(intact)
        struct.pack_into("<H", blob, 4, 0)
        self._must_fail(blob, "invalid format version")

    def test_flipped_section_byte(self, intact):
        blob = bytearray(intact)
        blob[200] ^= 0xFF  # inside the first section payload
        self._must_fail(blob, "checksum mismatch")

    def test_flipped_directory_byte(self, intact):
        blob = bytearray(intact)
        blob[-3] ^= 0xFF  # inside the trailing JSON directory
        self._must_fail(blob, "checksum mismatch")

    def test_directory_crc_field_flipped(self, intact):
        blob = bytearray(intact)
        blob[24] ^= 0xFF  # the prologue's dir_crc32 field itself
        self._must_fail(blob, "checksum mismatch")

    def test_missing_section(self):
        blob = to_bytes(ACCESS_KIND, {"addresses": np.arange(4)}, {})
        handle = ColumnarFile(blob)
        with pytest.raises(StorageFormatError, match="no section"):
            handle.array("sizes")

    def test_wrong_kind_for_access_reader(self):
        blob = to_bytes("event-trace", {"steps": np.arange(4)}, {})
        with pytest.raises(StorageFormatError, match=ACCESS_KIND):
            load_columnar_trace(blob)

    def test_corrupt_errors_name_the_file(self, tmp_path, intact):
        path = tmp_path / "flip.ltrace"
        blob = bytearray(intact)
        blob[200] ^= 0xFF
        path.write_bytes(blob)
        with pytest.raises(StorageFormatError) as excinfo:
            ColumnarFile(path)
        assert "flip.ltrace" in str(excinfo.value)

    def test_misaligned_row_sections_rejected(self):
        arrays = {
            "addresses": np.arange(8, dtype=np.int64),
            "sizes": np.ones(7, dtype=np.int64),  # one row short
            "is_write": np.zeros(8, dtype=bool),
            "tainted": np.zeros(8, dtype=bool),
            "gap_before": np.zeros(8, dtype=np.int64),
            "active_epoch": np.ones(8, dtype=bool),
            "epoch_starts": np.zeros(1, dtype=np.int64),
            "extents": np.empty((0, 2), dtype=np.int64),
            "accessed_pages": np.empty(0, dtype=np.int64),
        }
        blob = to_bytes(ACCESS_KIND, arrays, {"name": "bad"})
        with pytest.raises(StorageFormatError, match="misaligned"):
            load_columnar_trace(blob)
