"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", []),
    ("attack_detection.py", []),
    ("web_server_gating.py", []),
    ("locality_survey.py", ["--scale", "1000000"]),
    ("hlatch_cache_study.py", ["--window", "40000", "--benchmarks", "gcc", "curl"]),
    ("record_and_analyze.py", []),
    ("performance_models.py",
     ["--benchmarks", "gcc", "curl", "--scale", "1000000"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_matching_taint():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "final taint state matches plain DIFT: True" in result.stdout


def test_attack_detection_flags_only_malicious():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "attack_detection.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.stdout.count("tainted-jump") == 2  # plain + S-LATCH
    assert result.stdout.count("tainted-output") == 2
