"""Workload generator tests: calibration, consistency, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generator import WorkloadGenerator, _ranges
from repro.workloads.profiles import get_profile
from repro.workloads.trace import PAGE_SIZE


class TestLayout:
    def test_page_counts_match_profile(self):
        for name in ("astar", "hmmer", "curl"):
            profile = get_profile(name)
            layout = WorkloadGenerator(profile).layout()
            assert len(layout.accessed_pages) == profile.pages_accessed, name
            assert len(layout.tainted_pages()) == profile.pages_tainted, name

    def test_tainted_pages_subset_of_accessed(self):
        layout = WorkloadGenerator(get_profile("gcc")).layout()
        assert layout.tainted_pages() <= layout.accessed_pages

    def test_extents_sorted_and_nonoverlapping(self):
        layout = WorkloadGenerator(get_profile("perlbench")).layout()
        previous_end = -1
        for start, length in layout.extents:
            assert start > previous_end
            assert length > 0
            previous_end = start + length - 1

    def test_page_aligned_profiles_fully_taint_pages(self):
        layout = WorkloadGenerator(get_profile("bzip2")).layout()
        for start, length in layout.extents:
            assert start % PAGE_SIZE == 0
            assert length == PAGE_SIZE

    def test_layout_memoised(self):
        generator = WorkloadGenerator(get_profile("gcc"))
        assert generator.layout() is generator.layout()

    def test_deterministic_given_seed(self):
        a = WorkloadGenerator(get_profile("gcc"), seed=3).layout()
        b = WorkloadGenerator(get_profile("gcc"), seed=3).layout()
        assert a.extents == b.extents

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(get_profile("gcc"), seed=1).layout()
        b = WorkloadGenerator(get_profile("gcc"), seed=2).layout()
        assert a.extents != b.extents


class TestEpochStream:
    @pytest.mark.parametrize("name", ["astar", "bzip2", "apache", "curl"])
    def test_total_instructions_exact(self, name):
        stream = WorkloadGenerator(get_profile(name)).epoch_stream(2_000_000)
        assert stream.total_instructions == 2_000_000

    @pytest.mark.parametrize("name", ["astar", "gcc", "sphinx", "apache-50"])
    def test_taint_fraction_calibrated(self, name):
        profile = get_profile(name)
        stream = WorkloadGenerator(profile).epoch_stream(20_000_000)
        measured = 100 * stream.tainted_fraction
        assert measured == pytest.approx(profile.taint_percent, rel=0.35)

    def test_tainted_counts_bounded_by_lengths(self):
        stream = WorkloadGenerator(get_profile("soplex")).epoch_stream(1_000_000)
        assert (stream.tainted_counts <= stream.lengths).all()

    def test_all_lengths_positive(self):
        stream = WorkloadGenerator(get_profile("mySQL")).epoch_stream(1_000_000)
        assert (stream.lengths > 0).all()

    def test_zero_taint_profile_would_be_all_free(self):
        import dataclasses

        profile = dataclasses.replace(get_profile("gcc"), taint_percent=0.0)
        stream = WorkloadGenerator(profile).epoch_stream(100_000)
        assert stream.tainted_instructions == 0

    def test_deterministic(self):
        a = WorkloadGenerator(get_profile("lbm"), seed=5).epoch_stream(500_000)
        b = WorkloadGenerator(get_profile("lbm"), seed=5).epoch_stream(500_000)
        assert (a.lengths == b.lengths).all()
        assert (a.tainted_counts == b.tainted_counts).all()

    def test_fragmented_profile_has_more_epochs(self):
        astar = WorkloadGenerator(get_profile("astar")).epoch_stream(2_000_000)
        bzip2 = WorkloadGenerator(get_profile("bzip2")).epoch_stream(2_000_000)
        assert astar.epoch_count > bzip2.epoch_count * 5


class TestAccessTrace:
    def test_arrays_aligned(self):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(100_000)
        n = trace.access_count
        assert len(trace.sizes) == len(trace.is_write) == n
        assert len(trace.tainted) == len(trace.gap_before) == n
        assert len(trace.active_epoch) == n

    def test_total_instructions_close_to_request(self):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(100_000)
        assert trace.total_instructions == pytest.approx(100_000, rel=0.2)

    def test_tainted_flags_agree_with_layout(self):
        trace = WorkloadGenerator(get_profile("soplex")).access_trace(50_000)
        layout = trace.layout
        tainted_indices = np.flatnonzero(trace.tainted)[:300]
        for index in tainted_indices:
            assert layout.byte_is_tainted(int(trace.addresses[index]))

    def test_clean_flags_agree_with_layout(self):
        trace = WorkloadGenerator(get_profile("soplex")).access_trace(50_000)
        layout = trace.layout
        clean_indices = np.flatnonzero(~trace.tainted)[:300]
        for index in clean_indices:
            assert not layout.byte_is_tainted(int(trace.addresses[index]))

    def test_tainted_accesses_only_in_active_epochs(self):
        trace = WorkloadGenerator(get_profile("apache")).access_trace(100_000)
        assert not (trace.tainted & ~trace.active_epoch).any()

    def test_trace_taint_fraction_tracks_profile(self):
        profile = get_profile("sphinx")
        trace = WorkloadGenerator(profile).access_trace(300_000)
        fraction = trace.tainted_access_count / trace.total_instructions
        assert 100 * fraction == pytest.approx(profile.taint_percent, rel=0.3)

    def test_sizes_are_valid(self):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(50_000)
        assert set(np.unique(trace.sizes)) <= {1, 2, 4}

    def test_deterministic(self):
        a = WorkloadGenerator(get_profile("wget"), seed=9).access_trace(50_000)
        b = WorkloadGenerator(get_profile("wget"), seed=9).access_trace(50_000)
        assert (a.addresses == b.addresses).all()

    def test_addresses_within_footprint_or_taint(self):
        trace = WorkloadGenerator(get_profile("hmmer")).access_trace(50_000)
        pages = trace.layout.accessed_pages | trace.layout.tainted_pages()
        access_pages = set((trace.addresses // PAGE_SIZE).tolist())
        assert access_pages <= pages


class TestHelpers:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30)
    )
    def test_ranges_concatenates_aranges(self, counts):
        counts_array = np.array(counts, dtype=np.int64)
        result = _ranges(counts_array)
        expected = np.concatenate(
            [np.arange(c, dtype=np.int64) for c in counts]
        ) if sum(counts) else np.empty(0, dtype=np.int64)
        assert (result == expected).all()

    @settings(max_examples=100)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_split_total_properties(self, total, parts, seed):
        result = WorkloadGenerator._split_total(
            total, parts, np.random.default_rng(seed)
        )
        if total <= 0 or parts <= 0:
            assert len(result) == 0
            return
        # The split must account for exactly the requested budget: the
        # pre-fix implementation returned ``parts`` ones when
        # ``total <= parts`` (summing to ``parts``, over-counting).
        assert int(result.sum()) == total
        assert (result >= 1).all()
        assert len(result) == min(total, parts)

    def test_split_total_edge_grid(self):
        # Deterministic sweep of the (total, parts) boundary lattice:
        # equality, off-by-one on either side, and degenerate inputs.
        edges = [0, 1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 200, 201]
        for total in edges:
            for parts in edges:
                result = WorkloadGenerator._split_total(
                    total, parts, np.random.default_rng(1234)
                )
                if total <= 0 or parts <= 0:
                    assert len(result) == 0, (total, parts)
                    continue
                assert int(result.sum()) == total, (total, parts)
                assert (result >= 1).all(), (total, parts)
