"""Differential tests: LATCH-gated DIFT ≡ pure software DIFT.

The paper's central accuracy claim: "LATCH implements this policy
without sacrificing the accuracy of DIFT" — the combined system offers
precise taint checking with no false negatives (Section 1, Figure 1).

Every scenario is executed twice — once under a reference
:class:`repro.dift.DIFTEngine` (always-on software tracking) and once
under the functional :class:`repro.slatch.SLatchSystem` — and must
produce identical alerts and identical final taint state, across a
sweep of timeout values (aggressive switching stresses the clear-bit
reconcile and TRF resynchronisation paths the hardest).
"""

import dataclasses

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.policy import TaintPolicy, leak_detection_policy
from repro.slatch.controller import SLatchSystem
from repro.slatch.costs import SLatchCostModel
from repro.core.latch import LatchConfig
from repro.workloads import attacks, programs

SCENARIO_BUILDERS = [
    ("file-filter", lambda: programs.file_filter(), None),
    ("file-filter-clean", lambda: programs.file_filter(tainted=False), None),
    ("checksum", lambda: programs.checksum(), None),
    ("cipher", lambda: programs.substitution_cipher(), None),
    ("echo", lambda: programs.echo_server(), None),
    (
        "echo-mixed-trust",
        lambda: programs.echo_server(
            requests=[b"a" * 30, b"b" * 30, b"c" * 30, b"d" * 30],
            trusted_flags=[True, False, True, False],
        ),
        None,
    ),
    ("phased", lambda: programs.phased_compute(), None),
    ("overflow-benign", lambda: attacks.buffer_overflow(hijack=False), None),
    ("overflow-hijack", lambda: attacks.buffer_overflow(hijack=True), None),
    ("leak", lambda: attacks.data_leak(leak=True), leak_detection_policy),
    ("leak-benign", lambda: attacks.data_leak(leak=False), leak_detection_policy),
]

TIMEOUTS = [1, 7, 50, 1000]


def run_reference(build, policy_factory):
    scenario = build()
    cpu = scenario.make_cpu()
    engine = DIFTEngine(policy_factory() if policy_factory else None)
    cpu.attach(engine)
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return engine


def run_gated(build, policy_factory, timeout, latch_config=None):
    scenario = build()
    cpu = scenario.make_cpu()
    costs = dataclasses.replace(SLatchCostModel(), timeout_instructions=timeout)
    system = SLatchSystem(
        cpu,
        policy=policy_factory() if policy_factory else None,
        latch_config=latch_config,
        costs=costs,
    )
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return system


def state_signature(engine):
    return (
        [(alert.kind, alert.pc) for alert in engine.alerts],
        list(engine.shadow.iter_tainted_bytes()),
        [engine.trf.get(register) for register in range(16)],
    )


@pytest.mark.parametrize(
    "name,build,policy_factory",
    SCENARIO_BUILDERS,
    ids=[entry[0] for entry in SCENARIO_BUILDERS],
)
@pytest.mark.parametrize("timeout", TIMEOUTS)
def test_gated_equals_reference(name, build, policy_factory, timeout):
    reference = run_reference(build, policy_factory)
    gated = run_gated(build, policy_factory, timeout)
    ref_alerts, ref_shadow, ref_trf = state_signature(reference)
    gated_alerts, gated_shadow, gated_trf = state_signature(gated.engine)
    assert gated_alerts == ref_alerts
    assert gated_shadow == ref_shadow
    assert gated_trf == ref_trf


@pytest.mark.parametrize("domain_size", [8, 32, 64, 128])
def test_equivalence_across_domain_sizes(domain_size):
    """Coarser domains create more false positives, never different
    results."""
    config = LatchConfig(domain_size=domain_size, ctc_entries=4, tlb_entries=8)
    reference = run_reference(lambda: programs.file_filter(), None)
    gated = run_gated(lambda: programs.file_filter(), None, 25, config)
    assert state_signature(gated.engine) == state_signature(reference)


@pytest.mark.parametrize("ctc_entries", [1, 2, 16])
def test_equivalence_under_ctc_pressure(ctc_entries):
    """A tiny CTC forces evictions (including clear-bit evictions)
    without affecting correctness."""
    config = LatchConfig(ctc_entries=ctc_entries, tlb_entries=2)
    reference = run_reference(lambda: programs.phased_compute(), None)
    gated = run_gated(lambda: programs.phased_compute(), None, 10, config)
    assert state_signature(gated.engine) == state_signature(reference)


def test_detection_latency_identical_for_hijack():
    """The hijack is flagged at the same instruction in both systems."""
    reference = run_reference(lambda: attacks.buffer_overflow(True), None)
    gated = run_gated(lambda: attacks.buffer_overflow(True), None, 50)
    assert reference.alerts and gated.engine.alerts
    assert reference.alerts[0].pc == gated.engine.alerts[0].pc
