"""Hardware complexity-model tests (Section 6.4)."""

import pytest

from repro.core.latch import LatchConfig
from repro.hw.area import (
    AO486_BUDGET,
    CoreBudget,
    LatchAreaModel,
    estimate_latch_complexity,
)
from repro.hw.power import estimate_power_delta


class TestAreaModel:
    def test_paper_configuration_close_to_reported(self):
        report = estimate_latch_complexity(LatchConfig())
        # Paper: +4% logic elements, +5% memory bits.
        assert 2.0 < report.logic_percent < 6.0
        assert 2.0 < report.memory_percent < 8.0

    def test_no_cycle_time_impact(self):
        assert not estimate_latch_complexity(LatchConfig()).affects_cycle_time

    def test_ctc_memory_includes_clear_bits(self):
        model = LatchAreaModel(LatchConfig(ctc_entries=16))
        bits = model.ctc_memory_bits()
        # 16 entries × (32 taint + 32 clear + tag + valid).
        assert bits >= 16 * 64

    def test_bigger_ctc_costs_more(self):
        small = LatchAreaModel(LatchConfig(ctc_entries=16))
        large = LatchAreaModel(LatchConfig(ctc_entries=64))
        assert large.logic_elements() > small.logic_elements()
        assert large.memory_bits() > small.memory_bits()

    def test_disabling_tlb_bits_saves_resources(self):
        with_bits = LatchAreaModel(LatchConfig(use_tlb_bits=True))
        without = LatchAreaModel(LatchConfig(use_tlb_bits=False))
        assert without.memory_bits() < with_bits.memory_bits()
        assert without.logic_elements() < with_bits.logic_elements()

    def test_trf_is_64_bits(self):
        assert LatchAreaModel(LatchConfig()).trf_memory_bits() == 64

    def test_tlb_bits_scale_with_entries_and_domains(self):
        few = LatchAreaModel(LatchConfig(tlb_entries=64))
        many = LatchAreaModel(LatchConfig(tlb_entries=128))
        assert many.tlb_taint_memory_bits() == 2 * few.tlb_taint_memory_bits()
        fine = LatchAreaModel(LatchConfig(domain_size=16))
        assert fine.tlb_taint_memory_bits() > many.tlb_taint_memory_bits()

    def test_smaller_domains_wider_tags(self):
        fine = LatchAreaModel(LatchConfig(domain_size=8))
        coarse = LatchAreaModel(LatchConfig(domain_size=128))
        assert fine.ctc_tag_bits() > coarse.ctc_tag_bits()

    def test_custom_budget(self):
        budget = CoreBudget(name="big", logic_elements=300_000, memory_bits=400_000)
        report = estimate_latch_complexity(LatchConfig(), budget=budget)
        assert report.logic_percent < 1.0  # negligible on a big core


class TestPowerModel:
    def test_paper_configuration_power(self):
        delta = estimate_power_delta(LatchConfig())
        # Paper: +5% dynamic, +0.2% static.
        assert 3.0 < delta.dynamic_percent < 8.0
        assert 0.05 < delta.static_percent < 1.0

    def test_power_scales_with_structures(self):
        small = estimate_power_delta(LatchConfig(ctc_entries=16))
        large = estimate_power_delta(LatchConfig(ctc_entries=128))
        assert large.dynamic_percent > small.dynamic_percent
        assert large.static_percent > small.static_percent
