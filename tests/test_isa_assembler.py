"""Assembler tests: syntax, labels, pseudo-instructions, data directives."""

import pytest

from repro.isa.assembler import AssemblyError, DATA_BASE, TEXT_BASE, assemble
from repro.isa.instructions import Opcode


class TestBasicSyntax:
    def test_empty_source(self):
        program = assemble("")
        assert program.instructions == []
        assert program.entry_point == TEXT_BASE

    def test_single_instruction(self):
        program = assemble("add r1, r2, r3")
        assert len(program.instructions) == 1
        instr = program.instructions[0]
        assert instr.opcode == Opcode.ADD
        assert (instr.rd, instr.rs1, instr.rs2) == (1, 2, 3)

    def test_comments_stripped(self):
        program = assemble("add r1, r2, r3  # comment\n; full line comment\n")
        assert len(program.instructions) == 1

    def test_hash_inside_string_preserved(self):
        program = assemble('.data\ns: .asciiz "a#b"\n.text\nnop')
        offset = program.address_of("s") - program.data_base
        assert program.data[offset : offset + 4] == b"a#b\x00"

    def test_immediates_in_all_bases(self):
        program = assemble(
            "addi r1, r0, 0x10\naddi r2, r0, 0b101\naddi r3, r0, -7\n"
            "addi r4, r0, 'A'"
        )
        imms = [i.imm for i in program.instructions]
        assert imms == [16, 5, -7, 65]

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblyError) as err:
            assemble("nop\nfrobnicate r1\n")
        assert "line 2" in str(err.value)

    def test_missing_operand(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")


class TestLabelsAndBranches:
    def test_branch_offset_is_pc_relative(self):
        program = assemble("_start:\nnop\nloop: addi r1, r1, 1\nj loop\n")
        jal = program.instructions[2]
        # jal at TEXT_BASE+8 targeting TEXT_BASE+4 → offset -4
        assert jal.opcode == Opcode.JAL
        assert jal.imm == -4

    def test_forward_branch(self):
        program = assemble("beq r1, r2, done\nnop\ndone: halt")
        assert program.instructions[0].imm == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\nnop\na:\nnop")

    def test_label_on_same_line(self):
        program = assemble("start: nop")
        assert program.address_of("start") == TEXT_BASE

    def test_entry_point_from_start_label(self):
        program = assemble("nop\n_start:\nhalt")
        assert program.entry_point == TEXT_BASE + 4

    def test_numeric_branch_target_absolute_offset(self):
        program = assemble("beq r0, r0, 8")
        assert program.instructions[0].imm == 8


class TestMemoryOperands:
    def test_load_displacement_syntax(self):
        program = assemble("lw r1, 8(r2)")
        instr = program.instructions[0]
        assert (instr.rd, instr.rs1, instr.imm) == (1, 2, 8)

    def test_store_displacement_syntax(self):
        program = assemble("sw r3, -4(sp)")
        instr = program.instructions[0]
        assert (instr.rs2, instr.rs1, instr.imm) == (3, 2, -4)

    def test_bare_parens_default_displacement(self):
        program = assemble("lw r1, (r2)")
        assert program.instructions[0].imm == 0

    def test_jalr_uses_memory_syntax(self):
        program = assemble("jalr r1, 4(r5)")
        instr = program.instructions[0]
        assert (instr.rd, instr.rs1, instr.imm) == (1, 5, 4)

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("lw r1, r2")


class TestPseudoInstructions:
    def test_li_expands_to_two_instructions(self):
        program = assemble("li r1, 0x12345678")
        assert len(program.instructions) == 2
        assert program.instructions[0].opcode == Opcode.LUI
        assert program.instructions[0].imm == 0x1234
        assert program.instructions[1].opcode == Opcode.ORI
        assert program.instructions[1].imm == 0x5678

    def test_la_resolves_data_label(self):
        program = assemble(".data\nbuf: .space 4\n.text\nla r1, buf")
        target = program.address_of("buf")
        assert program.instructions[0].imm == (target >> 16) & 0xFFFF
        assert program.instructions[1].imm == target & 0xFFFF

    def test_mv(self):
        program = assemble("mv r1, r2")
        instr = program.instructions[0]
        assert instr.opcode == Opcode.ADDI and instr.imm == 0

    def test_j_and_call_and_ret(self):
        program = assemble("f: ret\n_start: call f\nj f")
        call = program.instructions[1]
        assert call.opcode == Opcode.JAL and call.rd == 1
        jump = program.instructions[2]
        assert jump.opcode == Opcode.JAL and jump.rd == 0
        ret = program.instructions[0]
        assert ret.opcode == Opcode.JALR and ret.rd == 0 and ret.rs1 == 1

    def test_beqz_bnez(self):
        program = assemble("t: beqz r5, t\nbnez r6, t")
        assert program.instructions[0].opcode == Opcode.BEQ
        assert program.instructions[0].rs2 == 0
        assert program.instructions[1].opcode == Opcode.BNE


class TestDataDirectives:
    def test_word_half_byte(self):
        program = assemble(
            ".data\nw: .word 0x11223344\nh: .half 0x5566\nb: .byte 0x77"
        )
        assert program.data[:7] == bytes(
            [0x44, 0x33, 0x22, 0x11, 0x66, 0x55, 0x77]
        )

    def test_ascii_and_asciiz(self):
        program = assemble('.data\na: .ascii "hi"\nz: .asciiz "yo"')
        assert program.data == b"hiyo\x00"

    def test_escapes_in_strings(self):
        program = assemble('.data\ns: .asciiz "a\\nb"')
        assert program.data == b"a\nb\x00"

    def test_space_reserves_zeroes(self):
        program = assemble(".data\nbuf: .space 8\nafter: .byte 1")
        assert program.address_of("after") - program.address_of("buf") == 8

    def test_align(self):
        program = assemble(".data\n.byte 1\n.align 4\nw: .word 2")
        assert (program.address_of("w") - DATA_BASE) % 4 == 0

    def test_word_negative_value(self):
        program = assemble(".data\nw: .word -1")
        assert program.data == b"\xff\xff\xff\xff"

    def test_data_labels_resolve_to_data_base(self):
        program = assemble(".data\nx: .word 0\n.text\nnop")
        assert program.address_of("x") == DATA_BASE

    def test_instruction_in_data_section_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nadd r1, r2, r3")

    def test_data_directive_in_text_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".text\n.word 5")

    def test_org_in_data(self):
        program = assemble(f".data\n.org {DATA_BASE + 16}\nx: .byte 9")
        assert program.address_of("x") == DATA_BASE + 16
        assert program.data[16] == 9

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".bogus 1")


class TestProgramImage:
    def test_instruction_at(self):
        program = assemble("nop\nhalt")
        assert program.instruction_at(TEXT_BASE).opcode == Opcode.NOP
        assert program.instruction_at(TEXT_BASE + 4).opcode == Opcode.HALT

    def test_instruction_at_errors(self):
        program = assemble("nop")
        with pytest.raises(IndexError):
            program.instruction_at(TEXT_BASE + 4)
        with pytest.raises(IndexError):
            program.instruction_at(TEXT_BASE + 2)
        with pytest.raises(IndexError):
            program.instruction_at(TEXT_BASE - 4)

    def test_text_geometry(self):
        program = assemble("nop\nnop\nnop")
        assert program.text_size == 12
        assert program.text_end == TEXT_BASE + 12
