"""Report-formatting tests."""

from repro.report.tables import (
    format_comparison_table,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1.23456]], precision=2)
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.23" in lines[2]

    def test_title_and_rule(self):
        text = format_table(["x"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert set(lines[1]) == {"="}

    def test_alignment_with_wide_values(self):
        text = format_table(["n", "v"], [["benchmark-name", 1], ["x", 22]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestComparisonTable:
    def test_ratio_column(self):
        text = format_comparison_table(
            ["x"], {"x": 2.0}, {"x": 1.0}, precision=1
        )
        assert "2.00x" in text

    def test_missing_paper_value_leaves_blank_ratio(self):
        text = format_comparison_table(["x"], {"x": 2.0}, {})
        assert "x" in text and "2.0" in text

    def test_missing_measured_row_skipped(self):
        text = format_comparison_table(["x", "y"], {"x": 1.0}, {"x": 1.0})
        assert "y" not in text.splitlines()[-1]


class TestBarCharts:
    def test_largest_value_fills_width(self):
        from repro.report.figures import format_bar_chart

        text = format_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_unit_suffix(self):
        from repro.report.figures import format_bar_chart

        text = format_bar_chart({"x": 1.0}, unit="%")
        assert "1.00%" in text

    def test_explicit_scale(self):
        from repro.report.figures import format_bar_chart

        text = format_bar_chart({"x": 5.0}, width=10, max_value=10.0)
        assert text.splitlines()[0].count("█") == 5

    def test_empty_values(self):
        from repro.report.figures import format_bar_chart

        assert format_bar_chart({}, title="t") == "t"

    def test_grouped_bars(self):
        from repro.report.figures import format_grouped_bars

        text = format_grouped_bars(
            {"astar": {"libdft": 6.0, "slatch": 5.4}},
            title="overheads",
            unit="x",
        )
        assert "astar:" in text
        assert "libdft" in text and "5.40x" in text


class TestSeries:
    def test_columns_from_union_of_x_values(self):
        text = format_series(
            {"a": {1: 0.5, 2: 0.6}, "b": {2: 0.7, 3: 0.8}},
            x_label="L",
        )
        header = text.splitlines()[0]
        for column in ("L", "1", "2", "3"):
            assert column in header

    def test_missing_points_render_as_nan(self):
        text = format_series({"a": {1: 0.5}, "b": {2: 0.7}})
        assert "nan" in text
