"""Profile data tests: paper constants and validation rules."""

import pytest

from repro.workloads.profiles import (
    EPOCH_BUCKETS,
    NETWORK_PROFILES,
    SPEC_PROFILES,
    WorkloadProfile,
    all_profiles,
    get_profile,
)

# Spot values straight from the paper's tables.
TABLE1_SPOT = {"astar": 21.73, "bzip2": 0.01, "perlbench": 2.67,
               "soplex": 7.69, "sphinx": 13.53, "Xalan": 0.11}
TABLE2_SPOT = {"curl": 1.13, "wget": 0.15, "mySQL": 0.19, "apache": 1.94,
               "apache-25": 1.49, "apache-50": 0.95, "apache-75": 0.45}
TABLE3_SPOT = {"astar": (2344, 2001), "lbm": (104766, 2), "sphinx": (7133, 4133)}
TABLE4_SPOT = {"curl": (600, 33), "apache": (1113, 238), "mySQL": (10483, 435)}


class TestSuiteContents:
    def test_twenty_spec_benchmarks(self):
        assert len(SPEC_PROFILES) == 20
        assert all(p.kind == "spec" for p in SPEC_PROFILES)

    def test_seven_network_benchmarks(self):
        assert len(NETWORK_PROFILES) == 7
        assert all(p.kind == "network" for p in NETWORK_PROFILES)

    def test_all_profiles_order(self):
        names = [p.name for p in all_profiles()]
        assert names[0] == "astar"
        assert names[20] == "curl"
        # 20 SPEC + 7 network + the 6-profile service-engine zoo.
        assert names[27] == "kv-cache"
        assert len(names) == len(set(names)) == 33

    def test_get_profile(self):
        assert get_profile("sphinx").taint_percent == 13.53
        with pytest.raises(KeyError):
            get_profile("nonexistent")


class TestPaperConstants:
    @pytest.mark.parametrize("name,value", sorted(TABLE1_SPOT.items()))
    def test_table1_taint_percent(self, name, value):
        assert get_profile(name).taint_percent == value

    @pytest.mark.parametrize("name,value", sorted(TABLE2_SPOT.items()))
    def test_table2_taint_percent(self, name, value):
        assert get_profile(name).taint_percent == value

    @pytest.mark.parametrize("name,pages", sorted(TABLE3_SPOT.items()))
    def test_table3_pages(self, name, pages):
        profile = get_profile(name)
        assert (profile.pages_accessed, profile.pages_tainted) == pages

    @pytest.mark.parametrize("name,pages", sorted(TABLE4_SPOT.items()))
    def test_table4_pages(self, name, pages):
        profile = get_profile(name)
        assert (profile.pages_accessed, profile.pages_tainted) == pages

    def test_apache_taint_declines_linearly_with_trust(self):
        values = [get_profile(f"apache-{p}").taint_percent for p in (25, 50, 75)]
        assert get_profile("apache").taint_percent > values[0] > values[1] > values[2]

    def test_page_aligned_benchmarks_have_no_gaps(self):
        for name in ("bzip2", "gobmk", "lbm"):
            profile = get_profile(name)
            assert profile.taint_gap_bytes == 0 or (
                profile.taint_run_bytes >= 4096
            ), name


class TestValidation:
    def _valid_kwargs(self, **overrides):
        kwargs = dict(
            name="x",
            kind="spec",
            taint_percent=1.0,
            pages_accessed=100,
            pages_tainted=10,
            epoch_weights=(0.2, 0.2, 0.2, 0.2, 0.1, 0.1),
            taint_run_bytes=64,
            taint_gap_bytes=64,
            baseline_tcache_miss_percent=10.0,
            libdft_slowdown=5.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_valid_profile_accepted(self):
        WorkloadProfile(**self._valid_kwargs())

    def test_percent_range_enforced(self):
        with pytest.raises(ValueError):
            WorkloadProfile(**self._valid_kwargs(taint_percent=101))

    def test_epoch_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                **self._valid_kwargs(epoch_weights=(0.5, 0.1, 0.1, 0.1, 0.1, 0.0))
            )

    def test_epoch_weights_arity(self):
        with pytest.raises(ValueError):
            WorkloadProfile(**self._valid_kwargs(epoch_weights=(1.0,)))

    def test_tainted_pages_bounded(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                **self._valid_kwargs(pages_accessed=5, pages_tainted=6)
            )

    def test_density_range(self):
        with pytest.raises(ValueError):
            WorkloadProfile(**self._valid_kwargs(taint_density=0.0))

    def test_all_shipped_profiles_validate(self):
        for profile in all_profiles():
            assert abs(sum(profile.epoch_weights) - 1.0) < 1e-6
            assert profile.pages_tainted <= profile.pages_accessed

    def test_bucket_boundaries_cover_fig5_thresholds(self):
        boundaries = {lo for lo, _ in EPOCH_BUCKETS} | {hi for _, hi in EPOCH_BUCKETS}
        for threshold in (100, 1_000, 10_000, 100_000, 1_000_000):
            assert threshold in boundaries
