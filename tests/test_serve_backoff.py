"""Client RETRY backoff: floor, cap, jitter, and wiring in both clients."""

import asyncio

import pytest

from repro.serve.client import (
    AsyncServeClient,
    DecorrelatedBackoff,
    RetryExhausted,
    ServeClient,
)


class TestDecorrelatedBackoff:
    def test_zero_hint_never_busy_spins(self):
        backoff = DecorrelatedBackoff(seed=1)
        for _ in range(50):
            assert backoff.next_delay(0) >= backoff.floor

    def test_delays_respect_the_cap(self):
        backoff = DecorrelatedBackoff(seed=2, cap=0.5)
        for _ in range(200):
            assert backoff.next_delay(10_000) <= 0.5

    def test_hint_is_the_base_not_the_delay(self):
        backoff = DecorrelatedBackoff(seed=3)
        delay = backoff.next_delay(100)
        assert delay >= 0.1
        # The next retry escalates: drawn from [base, 3 * previous].
        assert backoff.next_delay(100) <= 3 * delay + 1e-9

    def test_deterministic_by_seed(self):
        a = DecorrelatedBackoff(seed=42)
        b = DecorrelatedBackoff(seed=42)
        hints = [0, 5, 5, 20, 1]
        assert [a.next_delay(h) for h in hints] == \
            [b.next_delay(h) for h in hints]

    def test_different_seeds_decorrelate(self):
        a = DecorrelatedBackoff(seed=1)
        b = DecorrelatedBackoff(seed=2)
        delays_a = [a.next_delay(50) for _ in range(10)]
        delays_b = [b.next_delay(50) for _ in range(10)]
        assert delays_a != delays_b

    def test_default_seeds_differ_per_instance(self):
        a, b = DecorrelatedBackoff(), DecorrelatedBackoff()
        assert a.seed != b.seed

    def test_reset_forgets_escalation(self):
        backoff = DecorrelatedBackoff(seed=9)
        for _ in range(20):
            backoff.next_delay(1000)
        backoff.reset()
        # After a reset the first delay is drawn from [base, 3 * base]
        # again instead of continuing the escalated range.
        assert 0.01 <= backoff.next_delay(10) <= 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            DecorrelatedBackoff(floor=0.0)
        with pytest.raises(ValueError):
            DecorrelatedBackoff(floor=1.0, cap=0.5)


def _stub_sync_client(replies, sleeps, seed=7, max_retries=200):
    """A ServeClient wired to canned replies, no socket involved."""
    client = ServeClient.__new__(ServeClient)
    client.max_retries = max_retries
    client._sleep = sleeps.append
    client._backoff = DecorrelatedBackoff(seed=seed)
    replies = iter(replies)
    client._checked = lambda message, *expected: next(replies)
    return client


class TestSyncClientWiring:
    def test_retry_sleeps_use_jittered_delays(self):
        sleeps = []
        client = _stub_sync_client(
            [{"type": "retry", "backoff_ms": 0},
             {"type": "retry", "backoff_ms": 4},
             {"type": "ok"}],
            sleeps,
        )
        reply, retries = client._with_retries({"type": "events"}, "ok")
        assert reply == {"type": "ok"}
        assert retries == 2
        assert len(sleeps) == 2
        # The 0 ms hint still slept at least the floor.
        assert all(delay >= client._backoff.floor for delay in sleeps)

    def test_backoff_resets_between_requests(self):
        sleeps = []
        script = [{"type": "retry", "backoff_ms": 8}, {"type": "ok"}]
        client = _stub_sync_client(script + script, sleeps, seed=5)
        client._with_retries({"type": "events"}, "ok")
        client._with_retries({"type": "events"}, "ok")
        twin_sleeps = []
        twin = _stub_sync_client(script + script, twin_sleeps, seed=5)
        twin._with_retries({"type": "events"}, "ok")
        twin._with_retries({"type": "events"}, "ok")
        assert sleeps == twin_sleeps

    def test_retry_exhausted_still_raises(self):
        sleeps = []
        client = _stub_sync_client(
            [{"type": "retry", "backoff_ms": 1, "reason": "rate"}] * 4,
            sleeps, max_retries=2,
        )
        with pytest.raises(RetryExhausted):
            client._with_retries({"type": "events"}, "ok")
        assert len(sleeps) == 2


class TestAsyncClientWiring:
    def test_async_retry_uses_injected_sleeper(self):
        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        async def scenario():
            client = AsyncServeClient(
                "localhost", 0, backoff_seed=11, sleep=fake_sleep
            )
            replies = iter([
                {"type": "retry", "backoff_ms": 0},
                {"type": "retry", "backoff_ms": 3},
                {"type": "ok"},
            ])

            async def checked(message, *expected):
                return next(replies)

            client._checked = checked
            return await client._with_retries({"type": "events"}, "ok")

        reply = asyncio.run(scenario())
        assert reply == {"type": "ok"}
        assert len(sleeps) == 2
        assert all(delay >= 0.002 for delay in sleeps)

    def test_async_jitter_is_seeded(self):
        async def collect(seed):
            sleeps = []

            async def fake_sleep(delay):
                sleeps.append(delay)

            client = AsyncServeClient(
                "localhost", 0, backoff_seed=seed, sleep=fake_sleep
            )
            replies = iter(
                [{"type": "retry", "backoff_ms": 5}] * 3 + [{"type": "ok"}]
            )

            async def checked(message, *expected):
                return next(replies)

            client._checked = checked
            await client._with_retries({"type": "events"}, "ok")
            return sleeps

        assert asyncio.run(collect(3)) == asyncio.run(collect(3))
        assert asyncio.run(collect(3)) != asyncio.run(collect(4))
