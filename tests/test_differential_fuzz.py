"""Property-based differential fuzzing: random programs, identical taint.

Hypothesis generates random (terminating) programs that read a tainted
file and then mix loads, stores, and ALU operations over the buffer and
a scratch region.  Each program runs under the reference DIFT engine
and under S-LATCH with a random timeout; the final taint state and the
alert streams must be identical, whatever the program does.

This is the strongest form of the paper's accuracy claim: not just on
curated scenarios, but over an open-ended program space.

The whole module carries the ``fuzz`` marker so CI can budget it
separately (``-m "not fuzz"`` skips it; the tier-1 run includes it).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.latch import LatchConfig, LatchModule
from repro.dift.engine import DIFTEngine
from repro.dift.tags import ShadowMemory
from repro.kernels import replay_check_memory
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import DeviceTable, VirtualFile
from repro.slatch.controller import SLatchSystem
from repro.slatch.costs import SLatchCostModel

pytestmark = pytest.mark.fuzz

_SCRATCH_REGISTERS = list(range(4, 12))  # r4..r11; r12 = buffer base
_BUFFER_WINDOW = 96  # program touches buf[0 .. 96+4)


def _operation_strategy():
    reg = st.sampled_from(_SCRATCH_REGISTERS)
    offset = st.integers(min_value=0, max_value=_BUFFER_WINDOW)
    return st.one_of(
        st.tuples(st.just("lw"), reg, offset),
        st.tuples(st.just("lbu"), reg, offset),
        st.tuples(st.just("lb"), reg, offset),
        st.tuples(st.just("sw"), reg, offset),
        st.tuples(st.just("sb"), reg, offset),
        st.tuples(st.just("sh"), reg, offset),
        st.tuples(st.sampled_from(["add", "xor", "and", "or", "sub", "sll"]),
                  reg, reg, reg),
        st.tuples(st.just("addi"), reg, reg,
                  st.integers(min_value=-64, max_value=64)),
        st.tuples(st.just("li"), reg,
                  st.integers(min_value=0, max_value=0xFFFF)),
    )


def _render(operations):
    lines = [
        ".data",
        'path:   .asciiz "fuzz.bin"',
        "buf:    .space 128",
        ".text",
        "_start:",
        "    li   r3, 3",
        "    li   r4, path",
        "    syscall",
        "    mv   r7, r3",
        "    li   r3, 1",
        "    mv   r4, r7",
        "    li   r5, buf",
        "    li   r6, 48",      # taint buf[0..48)
        "    syscall",
        "    li   r12, buf",
    ]
    for op in operations:
        mnemonic = op[0]
        if mnemonic in ("lw", "lbu", "lb"):
            lines.append(f"    {mnemonic} r{op[1]}, {op[2]}(r12)")
        elif mnemonic in ("sw", "sb", "sh"):
            lines.append(f"    {mnemonic} r{op[1]}, {op[2]}(r12)")
        elif mnemonic == "addi":
            lines.append(f"    addi r{op[1]}, r{op[2]}, {op[3]}")
        elif mnemonic == "li":
            lines.append(f"    li r{op[1]}, {op[2]}")
        else:
            lines.append(f"    {mnemonic} r{op[1]}, r{op[2]}, r{op[3]}")
    lines.append("    halt")
    return "\n".join(lines)


def _signature(engine):
    return (
        list(engine.shadow.iter_tainted_bytes()),
        [engine.trf.get(register) for register in range(16)],
        [(alert.kind, alert.pc) for alert in engine.alerts],
    )


def _run_reference(source, payload):
    devices = DeviceTable()
    devices.register_file(VirtualFile("fuzz.bin", payload))
    cpu = CPU(assemble(source), devices=devices)
    engine = DIFTEngine()
    cpu.attach(engine)
    cpu.run(50_000)
    return _signature(engine), cpu.step_count


def _run_gated(source, payload, timeout):
    devices = DeviceTable()
    devices.register_file(VirtualFile("fuzz.bin", payload))
    cpu = CPU(assemble(source), devices=devices)
    costs = dataclasses.replace(
        SLatchCostModel(), timeout_instructions=timeout
    )
    system = SLatchSystem(cpu, costs=costs)
    cpu.run(50_000)
    return _signature(system.engine), system.counters


@settings(max_examples=120, deadline=None)
@given(
    st.lists(_operation_strategy(), min_size=1, max_size=40),
    st.binary(min_size=48, max_size=48),
    st.sampled_from([1, 3, 17, 400]),
)
def test_random_programs_identical_taint(operations, payload, timeout):
    source = _render(operations)
    reference_signature, steps = _run_reference(source, payload)
    gated_signature, counters = _run_gated(source, payload, timeout)
    assert gated_signature == reference_signature
    assert counters.total_instructions == steps


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_operation_strategy(), min_size=5, max_size=40),
    st.sampled_from([1, 9]),
)
def test_random_programs_with_domain_straddling_config(operations, timeout):
    """Tiny 8-byte domains + 1-entry CTC: maximal structural stress."""
    from repro.core.latch import LatchConfig

    source = _render(operations)
    payload = bytes(range(48))
    reference_signature, _ = _run_reference(source, payload)

    devices = DeviceTable()
    devices.register_file(VirtualFile("fuzz.bin", payload))
    cpu = CPU(assemble(source), devices=devices)
    costs = dataclasses.replace(
        SLatchCostModel(), timeout_instructions=timeout
    )
    system = SLatchSystem(
        cpu,
        latch_config=LatchConfig(domain_size=8, ctc_entries=1, tlb_entries=2),
        costs=costs,
    )
    cpu.run(50_000)
    assert _signature(system.engine) == reference_signature


# --------------------------------------------------------------------------
# Vector kernels vs the byte-precise engine.  The coarse check is allowed
# false positives (that is the LATCH trade-off) but never false negatives,
# and its false-positive *set* must be exactly the scalar module's.


@st.composite
def _taint_windows(draw):
    """A taint layout plus an access window over a 4-page span."""
    span = 4 * 4096
    extents = []
    cursor = 0
    for _ in range(draw(st.integers(0, 4))):
        start = cursor + draw(st.integers(0, 1024))
        length = draw(st.integers(1, 256))
        if start + length > span:
            break
        extents.append((start, length))
        cursor = start + length
    n = draw(st.integers(0, 48))
    addresses = draw(st.lists(
        st.one_of(
            st.integers(0, span - 8),
            st.sampled_from([0, 7, 63, 64, 255, 2047, 4095, 4096, 8191]),
        ),
        min_size=n, max_size=n,
    ))
    sizes = draw(st.lists(st.sampled_from([1, 2, 4, 8]),
                          min_size=n, max_size=n))
    return extents, addresses, sizes


@settings(max_examples=60, deadline=None)
@given(
    window=_taint_windows(),
    config=st.builds(
        LatchConfig,
        domain_size=st.sampled_from([8, 64, 128]),
        ctc_entries=st.sampled_from([1, 16]),
        tlb_entries=st.sampled_from([2, 128]),
        use_tlb_bits=st.booleans(),
    ),
)
def test_vector_coarse_check_against_precise_engine(window, config):
    extents, address_list, size_list = window
    shadow = ShadowMemory()
    for start, length in extents:
        shadow.set_range(start, length, 1)

    addresses = np.array(address_list, dtype=np.int64)
    sizes = np.array(size_list, dtype=np.int64)

    vector_latch = LatchModule(config)
    vector_latch.bulk_load_from_shadow(shadow)
    coarse_vector = replay_check_memory(vector_latch, addresses, sizes)

    scalar_latch = LatchModule(config)
    scalar_latch.bulk_load_from_shadow(shadow)
    coarse_scalar = np.array(
        [
            scalar_latch.check_memory(int(a), int(s)).coarse_tainted
            for a, s in zip(addresses, sizes)
        ],
        dtype=bool,
    )

    precise = np.array(
        [
            not shadow.region_clean(int(a), max(int(s), 1))
            for a, s in zip(addresses, sizes)
        ],
        dtype=bool,
    )

    # Soundness: the coarse filter never clears a precisely tainted access.
    assert not np.any(precise & ~coarse_vector)
    # Exactness: the vector kernel's false-positive set is the scalar's.
    assert np.array_equal(coarse_vector, coarse_scalar)
