"""Rule-by-rule tests of the classical DTA propagation."""

from repro.dift.propagation import propagate
from repro.dift.tags import ShadowMemory, TaintRegisterFile
from repro.isa.instructions import Instruction, Opcode
from repro.machine.events import MemoryAccess, StepEvent


def step(instruction, reads=(), writes=()):
    return StepEvent(
        index=0,
        pc=0x1000,
        instruction=instruction,
        regs_read=instruction.source_registers(),
        regs_written=(instruction.rd,) if instruction.rd is not None else (),
        reads=tuple(reads),
        writes=tuple(writes),
        next_pc=0x1004,
    )


class TestAluRules:
    def test_union_of_sources(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(1)
        result = propagate(
            step(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)), trf, shadow
        )
        assert trf.is_tainted(3)
        assert result.touched_taint and result.tainted_sources

    def test_clean_sources_clear_destination(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(3)  # stale
        result = propagate(
            step(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)), trf, shadow
        )
        assert not trf.is_tainted(3)
        assert not result.touched_taint

    def test_xor_same_register_clears(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(5)
        propagate(step(Instruction(Opcode.XOR, rd=5, rs1=5, rs2=5)), trf, shadow)
        assert not trf.is_tainted(5)

    def test_sub_same_register_clears(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(5)
        propagate(step(Instruction(Opcode.SUB, rd=6, rs1=5, rs2=5)), trf, shadow)
        assert not trf.is_tainted(6)

    def test_immediate_copies_source(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.set(1, b"\x01\x01\x00\x00")
        propagate(step(Instruction(Opcode.ADDI, rd=2, rs1=1, imm=4)), trf, shadow)
        assert trf.get(2) == b"\x01\x01\x00\x00"

    def test_lui_clears(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(4)
        propagate(step(Instruction(Opcode.LUI, rd=4, imm=1)), trf, shadow)
        assert not trf.is_tainted(4)


class TestMemoryRules:
    def test_load_pulls_shadow_tags(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        shadow.set_range(0x100, 4, 1)
        event = step(
            Instruction(Opcode.LW, rd=2, rs1=1, imm=0),
            reads=[MemoryAccess(0x100, 4, False)],
        )
        result = propagate(event, trf, shadow)
        assert trf.get(2) == b"\x01\x01\x01\x01"
        assert result.touched_taint
        assert result.register_tag_writes == [(2, b"\x01\x01\x01\x01")]

    def test_partial_load_taint(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        shadow.set(0x101, 1)  # only second byte
        event = step(
            Instruction(Opcode.LW, rd=2, rs1=1, imm=0),
            reads=[MemoryAccess(0x100, 4, False)],
        )
        propagate(event, trf, shadow)
        assert trf.get(2) == b"\x00\x01\x00\x00"

    def test_signed_byte_load_extends_taint(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        shadow.set(0x100, 1)
        event = step(
            Instruction(Opcode.LB, rd=2, rs1=1, imm=0),
            reads=[MemoryAccess(0x100, 1, False)],
        )
        propagate(event, trf, shadow)
        # Sign-extension bytes inherit the top byte's tag.
        assert trf.get(2) == b"\x01\x01\x01\x01"

    def test_unsigned_byte_load_does_not_extend(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        shadow.set(0x100, 1)
        event = step(
            Instruction(Opcode.LBU, rd=2, rs1=1, imm=0),
            reads=[MemoryAccess(0x100, 1, False)],
        )
        propagate(event, trf, shadow)
        assert trf.get(2) == b"\x01\x00\x00\x00"

    def test_clean_load_clears_destination(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(2)
        event = step(
            Instruction(Opcode.LW, rd=2, rs1=1, imm=0),
            reads=[MemoryAccess(0x200, 4, False)],
        )
        result = propagate(event, trf, shadow)
        assert not trf.is_tainted(2)
        assert not result.touched_taint

    def test_store_writes_tags(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.set(2, b"\x01\x01\x00\x00")
        event = step(
            Instruction(Opcode.SW, rs1=1, rs2=2, imm=0),
            writes=[MemoryAccess(0x300, 4, True)],
        )
        result = propagate(event, trf, shadow)
        assert shadow.get_range(0x300, 4) == b"\x01\x01\x00\x00"
        assert result.touched_taint
        assert result.memory_tag_writes == [(0x300, b"\x01\x01\x00\x00")]

    def test_clean_store_over_tainted_bytes_clears_and_counts(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        shadow.set_range(0x300, 4, 1)
        event = step(
            Instruction(Opcode.SW, rs1=1, rs2=2, imm=0),
            writes=[MemoryAccess(0x300, 4, True)],
        )
        result = propagate(event, trf, shadow)
        assert not shadow.any_tainted(0x300, 4)
        # The store touched tainted memory (it cleared it).
        assert result.touched_taint

    def test_narrow_store_only_covers_its_bytes(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(2)
        event = step(
            Instruction(Opcode.SB, rs1=1, rs2=2, imm=0),
            writes=[MemoryAccess(0x400, 1, True)],
        )
        propagate(event, trf, shadow)
        assert shadow.get(0x400) == 1
        assert shadow.get(0x401) == 0


class TestControlAndSpecialRules:
    def test_branches_do_not_propagate(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(1)
        result = propagate(
            step(Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=8)), trf, shadow
        )
        assert result.touched_taint  # reading a tainted register counts
        assert result.register_tag_writes == []

    def test_jal_clears_link_register(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(1)
        propagate(step(Instruction(Opcode.JAL, rd=1, imm=8)), trf, shadow)
        assert not trf.is_tainted(1)

    def test_jalr_flags_tainted_source(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(5)
        result = propagate(
            step(Instruction(Opcode.JALR, rd=1, rs1=5, imm=0)), trf, shadow
        )
        assert result.tainted_sources

    def test_stnt_not_counted_as_application_taint(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(1)
        result = propagate(
            step(Instruction(Opcode.STNT, rs1=1, rs2=2)), trf, shadow
        )
        assert not result.touched_taint

    def test_ltnt_destination_untainted(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        trf.taint(3)
        propagate(step(Instruction(Opcode.LTNT, rd=3)), trf, shadow)
        assert not trf.is_tainted(3)

    def test_nop_touches_nothing(self):
        trf, shadow = TaintRegisterFile(), ShadowMemory()
        result = propagate(step(Instruction(Opcode.NOP)), trf, shadow)
        assert not result.touched_taint
        assert result.memory_tag_writes == []
        assert result.register_tag_writes == []
