"""Result and trace cache behaviour: hits, misses, corruption, staleness."""

import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.runner import JobSpec, ResultCache, TraceCache
from repro.workloads import WorkloadGenerator, get_profile


def _snapshot(value=1.0):
    registry = MetricsRegistry()
    registry.gauge("test.value", unit="").set(value)
    return registry.snapshot()


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("chaos", "cell", value=1)
        assert cache.get(spec) is None
        cache.put(spec, _snapshot(3.5))
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.get("test.value") == 3.5
        assert len(cache) == 1

    def test_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = JobSpec.make("chaos", "cell", value=1)
        b = JobSpec.make("chaos", "cell", value=2)
        cache.put(a, _snapshot(1.0))
        cache.put(b, _snapshot(2.0))
        assert cache.get(a).get("test.value") == 1.0
        assert cache.get(b).get("test.value") == 2.0

    def test_corrupt_document_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("chaos", "cell")
        path = cache.put(spec, _snapshot())
        path.write_text("{ truncated garbage")
        assert cache.get(spec) is None

    def test_stale_format_version_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("chaos", "cell")
        path = cache.put(spec, _snapshot())
        document = json.loads(path.read_text())
        document["result_format_version"] = 999
        path.write_text(json.dumps(document))
        assert cache.get(spec) is None

    def test_spec_mismatch_reads_as_miss(self, tmp_path):
        """A hash collision (or tampered file) can never serve the wrong
        spec's snapshot."""
        cache = ResultCache(tmp_path)
        spec = JobSpec.make("chaos", "cell")
        path = cache.put(spec, _snapshot())
        document = json.loads(path.read_text())
        document["spec"]["workload"] = "other"
        path.write_text(json.dumps(document))
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(JobSpec.make("chaos", "a"), _snapshot())
        cache.put(JobSpec.make("chaos", "b"), _snapshot())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestTraceCache:
    def test_epoch_stream_cached_and_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("wget"))
        first = cache.epoch_stream(generator, 100_000)
        assert len(cache) == 1
        second = cache.epoch_stream(
            WorkloadGenerator(get_profile("wget")), 100_000
        )
        assert len(cache) == 1  # served from disk, not regenerated
        assert (first.lengths == second.lengths).all()
        assert (first.tainted_counts == second.tainted_counts).all()

    def test_access_trace_cached_and_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("curl"))
        first = cache.access_trace(generator, 5_000)
        second = cache.access_trace(
            WorkloadGenerator(get_profile("curl")), 5_000
        )
        assert len(cache) == 1
        assert (first.addresses == second.addresses).all()
        assert (first.tainted == second.tainted).all()
        assert first.layout.extents == second.layout.extents

    def test_scale_and_seed_key_separate_artefacts(self, tmp_path):
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("wget"))
        cache.epoch_stream(generator, 100_000)
        cache.epoch_stream(generator, 50_000)
        cache.epoch_stream(WorkloadGenerator(get_profile("wget"), seed=1),
                           100_000)
        assert len(cache) == 3

    def test_corrupt_archive_regenerated_in_place(self, tmp_path):
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("wget"))
        fresh = cache.epoch_stream(generator, 100_000)
        path = cache.path_for(generator, "epochs", 100_000)
        path.write_bytes(b"this is not an npz archive")
        reloaded = cache.epoch_stream(generator, 100_000)
        assert (reloaded.lengths == fresh.lengths).all()
        # The corrupt file was replaced with a valid one.
        from repro.workloads import load_epoch_stream

        assert (load_epoch_stream(path).lengths == fresh.lengths).all()

    def test_wrong_sized_archive_not_served(self, tmp_path):
        """A stale/foreign npz at the right path is rejected, not loaded."""
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("wget"))
        path = cache.path_for(generator, "epochs", 100_000)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, whatever=np.arange(3))
        stream = cache.epoch_stream(generator, 100_000)
        assert stream.total_instructions >= 100_000

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        generator = WorkloadGenerator(get_profile("wget"))
        cache.epoch_stream(generator, 50_000)
        cache.access_trace(generator, 2_000)
        assert cache.clear() == 2
        assert len(cache) == 0
