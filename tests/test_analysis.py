"""Locality-analysis tests (Section 3 metrics) on crafted inputs."""

import numpy as np
import pytest

from repro.analysis.spatial import (
    domain_coverage,
    false_positive_multiplier,
    false_positive_sweep,
    page_taint_distribution,
    tainted_byte_density,
)
from repro.analysis.temporal import (
    epoch_count_histogram,
    epoch_duration_profile,
    mean_taint_free_epoch,
    tainted_instruction_fraction,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import AccessTrace, Epoch, EpochStream, TaintLayout


def stream(*epochs):
    return EpochStream.from_epochs(
        "s", [Epoch(length=l, tainted_instructions=t) for l, t in epochs]
    )


class TestTemporal:
    def test_fraction(self):
        s = stream((900, 0), (100, 100))
        assert tainted_instruction_fraction(s) == pytest.approx(0.1)

    def test_empty_stream(self):
        s = stream()
        assert tainted_instruction_fraction(s) == 0.0
        assert epoch_duration_profile(s)[100] == 0.0

    def test_duration_profile_cumulative_sets(self):
        # One 2M free epoch + one 500-instr free epoch + taint.
        s = stream((2_000_000, 0), (100, 50), (500, 0))
        profile = epoch_duration_profile(s)
        total = 2_000_600
        # The 2M epoch counts toward every threshold.
        assert profile[1_000_000] == pytest.approx(2_000_000 / total * 100)
        # The 500-instr epoch counts only toward the 100 threshold.
        assert profile[100] == pytest.approx(2_000_500 / total * 100)
        assert profile[1_000] == profile[1_000_000]

    def test_profile_monotone_decreasing(self):
        s = WorkloadGenerator(get_profile("gcc")).epoch_stream(2_000_000)
        profile = epoch_duration_profile(s)
        values = list(profile.values())
        assert values == sorted(values, reverse=True)

    def test_mean_taint_free_epoch(self):
        s = stream((100, 0), (10, 5), (300, 0))
        assert mean_taint_free_epoch(s) == pytest.approx(200.0)
        assert mean_taint_free_epoch(stream((10, 5))) == 0.0

    def test_epoch_count_histogram(self):
        s = stream((150, 0), (10, 5), (5_000, 0))
        histogram = epoch_count_histogram(s)
        assert histogram[100] == 2
        assert histogram[1_000] == 1
        assert histogram[1_000_000] == 0


class TestSpatialPages:
    def test_page_distribution(self):
        layout = TaintLayout(
            extents=[(0x1000, 16), (0x3000, 4096)],
            accessed_pages={0, 1, 2, 3, 4},
        )
        stats = page_taint_distribution(layout)
        assert stats.pages_accessed == 5
        assert stats.pages_tainted == 2
        assert stats.tainted_percent == pytest.approx(40.0)

    def test_extent_spanning_pages(self):
        layout = TaintLayout(extents=[(0x0FFE, 4)], accessed_pages={0, 1})
        assert page_taint_distribution(layout).pages_tainted == 2

    def test_empty_layout(self):
        stats = page_taint_distribution(TaintLayout())
        assert stats.pages_accessed == 0
        assert stats.tainted_percent == 0.0

    def test_density_and_coverage(self):
        layout = TaintLayout(extents=[(0, 1024)], accessed_pages={0})
        assert tainted_byte_density(layout) == pytest.approx(0.25)
        assert domain_coverage(layout, 64) == pytest.approx(16 / 64)


class TestFalsePositives:
    def _trace(self, layout, addresses, tainted):
        n = len(addresses)
        return AccessTrace(
            name="t",
            addresses=np.array(addresses, dtype=np.int64),
            sizes=np.ones(n, dtype=np.uint8),
            is_write=np.zeros(n, dtype=bool),
            tainted=np.array(tainted),
            gap_before=np.zeros(n, dtype=np.int64),
            active_epoch=np.array(tainted),
            layout=layout,
        )

    def test_footprint_multiplier_exact(self):
        # 16 tainted bytes in a 64-byte domain → 4x inflation at 64 B.
        layout = TaintLayout(extents=[(0x1000, 16)], accessed_pages={1})
        trace = self._trace(layout, [0x1000], [True])
        assert false_positive_multiplier(trace, 64) == pytest.approx(4.0)
        assert false_positive_multiplier(trace, 16) == pytest.approx(1.0)

    def test_footprint_grows_with_domain_size(self):
        layout = TaintLayout(
            extents=[(0x1000 + i * 128, 8) for i in range(8)],
            accessed_pages={1},
        )
        trace = self._trace(layout, [0x1000], [True])
        sweep = false_positive_sweep(trace, domain_sizes=(8, 64, 1024))
        assert sweep[8] <= sweep[64] <= sweep[1024]

    def test_events_mode(self):
        layout = TaintLayout(extents=[(0x1000, 8)], accessed_pages={1})
        trace = self._trace(
            layout,
            [0x1000, 0x1020, 0x2000],  # tainted, FP-in-domain, clean
            [True, False, False],
        )
        assert false_positive_multiplier(trace, 64, mode="events") == pytest.approx(2.0)

    def test_elements_mode_deduplicates(self):
        layout = TaintLayout(extents=[(0x1000, 8)], accessed_pages={1})
        trace = self._trace(
            layout,
            [0x1000, 0x1000, 0x1020],
            [True, True, False],
        )
        # Unique addresses: 0x1000 (tainted), 0x1020 (coarse FP) → 2/1.
        assert false_positive_multiplier(trace, 64, mode="elements") == pytest.approx(2.0)

    def test_nan_when_no_taint(self):
        layout = TaintLayout(extents=[], accessed_pages={1})
        trace = self._trace(layout, [0x1000], [False])
        assert false_positive_multiplier(trace, 64) != false_positive_multiplier(trace, 64)

    def test_unknown_mode_rejected(self):
        layout = TaintLayout(extents=[(0, 8)], accessed_pages={0})
        trace = self._trace(layout, [0], [True])
        with pytest.raises(ValueError):
            false_positive_multiplier(trace, 64, mode="bogus")

    def test_page_aligned_taint_has_multiplier_one(self):
        trace = WorkloadGenerator(get_profile("bzip2")).access_trace(50_000)
        sweep = false_positive_sweep(trace)
        for value in sweep.values():
            assert value == pytest.approx(1.0)
