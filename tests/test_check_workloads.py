"""The zoo soundness pass: artifact invariants + family oracle programs."""

import pytest

from repro.check.workloads import (
    ENGINE_FAMILY_PROGRAMS,
    check_engine_artifacts,
    check_replay_roundtrip,
    run_workloads,
)
from repro.check.oracle import check_program
from repro.workloads import SERVICE_SUITE


class TestArtifactInvariants:
    @pytest.mark.parametrize("name", SERVICE_SUITE)
    def test_every_engine_is_sound(self, name):
        failures = check_engine_artifacts(
            name, seed=0, epoch_scale=60_000, trace_window=6_000
        )
        assert failures == []

    def test_replay_roundtrip_is_bit_identical(self):
        assert check_replay_roundtrip(seed=0, window=6_000) == []


class TestFamilyPrograms:
    @pytest.mark.parametrize("family", sorted(ENGINE_FAMILY_PROGRAMS))
    def test_family_program_passes_the_oracle(self, family):
        program = ENGINE_FAMILY_PROGRAMS[family](seed=0)
        report = check_program(program, paths=("core", "hlatch"))
        assert report.ok, [str(v) for v in report.violations]

    def test_programs_are_deterministic_by_seed(self):
        for builder in ENGINE_FAMILY_PROGRAMS.values():
            assert builder(3).source() == builder(3).source()
            assert builder(3).payload == builder(3).payload


class TestEntryPoint:
    def test_run_workloads_clean_pass(self, capsys):
        failures = run_workloads(
            seed=0, names=["kv-cache"], paths=("core",),
            epoch_scale=60_000, trace_window=6_000,
        )
        assert failures == 0
        out = capsys.readouterr().out
        assert "artifacts  kv-cache" in out
        assert "round-trip" in out

    def test_cli_subcommand(self, capsys):
        from repro.check.cli import cli

        code = cli([
            "workloads", "--names", "kv-cache", "--paths", "core",
            "--epoch-scale", "60000", "--trace-window", "6000",
        ])
        assert code == 0
        assert "0 violations" in capsys.readouterr().out
