"""CPU semantics tests: ALU, control flow, memory, events, observers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.assembler import TEXT_BASE, assemble
from repro.machine.cpu import CPU, ExecutionError
from repro.machine.events import Observer

_U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run_fragment(body: str, max_steps: int = 10_000) -> CPU:
    cpu = CPU(assemble(body + "\nhalt\n"))
    cpu.run(max_steps)
    return cpu


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x8000_0000 else value


class TestALU:
    def test_add_sub(self):
        cpu = run_fragment("li r1, 7\nli r2, 5\nadd r3, r1, r2\nsub r4, r1, r2")
        assert cpu.registers[3] == 12
        assert cpu.registers[4] == 2

    def test_wraparound(self):
        cpu = run_fragment("li r1, 0xFFFFFFFF\naddi r2, r1, 1")
        assert cpu.registers[2] == 0

    def test_logic_ops(self):
        cpu = run_fragment(
            "li r1, 0xF0F0\nli r2, 0x0FF0\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2"
        )
        assert cpu.registers[3] == 0x00F0
        assert cpu.registers[4] == 0xFFF0
        assert cpu.registers[5] == 0xFF00

    def test_shifts(self):
        cpu = run_fragment(
            "li r1, 0x80000000\nsrli r2, r1, 4\nsrai r3, r1, 4\n"
            "li r4, 1\nslli r5, r4, 31"
        )
        assert cpu.registers[2] == 0x0800_0000
        assert cpu.registers[3] == 0xF800_0000
        assert cpu.registers[5] == 0x8000_0000

    def test_slt_signed_vs_unsigned(self):
        cpu = run_fragment(
            "li r1, 0xFFFFFFFF\nli r2, 1\n"
            "slt r3, r1, r2\nsltu r4, r1, r2"
        )
        assert cpu.registers[3] == 1  # -1 < 1 signed
        assert cpu.registers[4] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_mul_div_rem(self):
        cpu = run_fragment(
            "li r1, -7\nli r2, 2\nmul r3, r1, r2\ndiv r4, r1, r2\nrem r5, r1, r2"
        )
        assert _signed(cpu.registers[3]) == -14
        assert _signed(cpu.registers[4]) == -3  # truncated toward zero
        assert _signed(cpu.registers[5]) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run_fragment("li r1, 1\ndiv r2, r1, r0")

    def test_r0_hardwired_zero(self):
        cpu = run_fragment("addi r0, r0, 5\nadd r1, r0, r0")
        assert cpu.registers[0] == 0
        assert cpu.registers[1] == 0

    @given(_U32, _U32)
    def test_add_matches_python(self, a, b):
        cpu = CPU(assemble("add r3, r1, r2\nhalt"))
        cpu.registers[1] = a
        cpu.registers[2] = b
        cpu.run()
        assert cpu.registers[3] == (a + b) & 0xFFFFFFFF

    @given(_U32, st.integers(min_value=0, max_value=31))
    def test_sra_matches_python(self, a, shift):
        cpu = CPU(assemble("sra r3, r1, r2\nhalt"))
        cpu.registers[1] = a
        cpu.registers[2] = shift
        cpu.run()
        assert cpu.registers[3] == (_signed(a) >> shift) & 0xFFFFFFFF


class TestControlFlow:
    def test_loop_sums_1_to_10(self):
        cpu = run_fragment(
            "li r1, 10\nli r2, 0\nloop: add r2, r2, r1\n"
            "addi r1, r1, -1\nbne r1, r0, loop"
        )
        assert cpu.registers[2] == 55

    def test_branch_signed_comparison(self):
        cpu = run_fragment(
            "li r1, -1\nli r2, 1\nli r3, 0\n"
            "bge r1, r2, skip\nli r3, 42\nskip:"
        )
        assert cpu.registers[3] == 42

    def test_bltu_unsigned(self):
        cpu = run_fragment(
            "li r1, 0xFFFFFFFF\nli r2, 1\nli r3, 0\n"
            "bltu r1, r2, skip\nli r3, 9\nskip:"
        )
        assert cpu.registers[3] == 9

    def test_jal_links_return_address(self):
        cpu = run_fragment("call f\nj end\nf: li r5, 3\nret\nend:")
        assert cpu.registers[5] == 3

    def test_jalr_target_word_aligned(self):
        cpu = CPU(assemble("li r1, 0x1009\njalr r0, 0(r1)\nnop\nhalt"))
        cpu.step()
        cpu.step()
        event = cpu.step()  # the jalr lands at 0x1008, its own address+?
        assert cpu.pc % 4 == 0

    def test_bad_pc_raises(self):
        cpu = CPU(assemble("li r1, 0x9000\njalr r0, 0(r1)"))
        cpu.run(2 + 1)
        with pytest.raises(ExecutionError):
            cpu.step()

    def test_step_after_halt_raises(self):
        cpu = run_fragment("nop")
        with pytest.raises(ExecutionError):
            cpu.step()


class TestMemoryInstructions:
    def test_store_load_word(self):
        cpu = run_fragment("li r1, 0x3000\nli r2, 0xBEEF\nsw r2, 0(r1)\nlw r3, 0(r1)")
        assert cpu.registers[3] == 0xBEEF

    def test_lb_sign_extends(self):
        cpu = run_fragment("li r1, 0x3000\nli r2, 0x80\nsb r2, 0(r1)\nlb r3, 0(r1)")
        assert cpu.registers[3] == 0xFFFF_FF80

    def test_lbu_zero_extends(self):
        cpu = run_fragment("li r1, 0x3000\nli r2, 0x80\nsb r2, 0(r1)\nlbu r3, 0(r1)")
        assert cpu.registers[3] == 0x80

    def test_lh_sign_extends(self):
        cpu = run_fragment(
            "li r1, 0x3000\nli r2, 0x8001\nsh r2, 0(r1)\nlh r3, 0(r1)"
        )
        assert cpu.registers[3] == 0xFFFF_8001

    def test_data_section_loaded(self):
        cpu = CPU(assemble(".data\nv: .word 77\n.text\n_start:\nla r1, v\nlw r2, 0(r1)\nhalt"))
        cpu.run()
        assert cpu.registers[2] == 77


class TestEventsAndObservers:
    def test_step_event_fields(self):
        cpu = CPU(assemble("li r1, 0x3000\nsw r2, 4(r1)\nhalt"))
        cpu.step()  # lui
        cpu.step()  # ori
        event = cpu.step()  # sw
        assert event.writes[0].address == 0x3004
        assert event.writes[0].size == 4
        assert event.writes[0].is_write
        assert set(event.regs_read) == {1, 2}
        assert event.next_pc == event.pc + 4

    def test_branch_event_next_pc(self):
        cpu = CPU(assemble("beq r0, r0, target\nnop\ntarget: halt"))
        event = cpu.step()
        assert event.next_pc == TEXT_BASE + 8

    def test_observer_sees_every_step_and_halt(self):
        seen = {"steps": 0, "halts": 0}

        class Counter(Observer):
            def on_step(self, event):
                seen["steps"] += 1

            def on_halt(self, step_index):
                seen["halts"] += 1

        cpu = CPU(assemble("nop\nnop\nhalt"))
        cpu.attach(Counter())
        cpu.run()
        assert seen == {"steps": 3, "halts": 1}

    def test_detach(self):
        class Boom(Observer):
            def on_step(self, event):
                raise AssertionError("should not run")

        cpu = CPU(assemble("nop\nhalt"))
        observer = Boom()
        cpu.attach(observer)
        cpu.detach(observer)
        cpu.run()

    def test_run_respects_max_steps(self):
        cpu = CPU(assemble("loop: j loop"))
        executed = cpu.run(max_steps=25)
        assert executed == 25
        assert not cpu.halted
