"""TLB model tests."""

import pytest

from repro.mem.tlb import TLB


class TestTranslation:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4)
        tlb.access(0x1234)
        assert tlb.stats.misses == 1
        tlb.access(0x1FFF)  # same page
        assert tlb.stats.hits == 1

    def test_page_of(self):
        tlb = TLB(page_size=4096)
        assert tlb.page_of(0x1FFF) == 1
        assert tlb.page_of(0x2000) == 2

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)  # refresh page 0
        tlb.access(0x2000)  # evicts page 1
        assert tlb.probe(0x0000) is not None
        assert tlb.probe(0x1000) is None
        assert tlb.stats.evictions == 1

    def test_metadata_loader_called_on_miss_only(self):
        calls = []

        def loader(page):
            calls.append(page)
            return page * 10

        tlb = TLB(entries=4, metadata_loader=loader)
        entry = tlb.access(0x3000)
        assert entry.metadata == 30
        tlb.access(0x3008)
        assert calls == [3]

    def test_invalidate_page(self):
        tlb = TLB(entries=4)
        tlb.access(0x5000)
        assert tlb.invalidate_page(5)
        assert not tlb.invalidate_page(5)

    def test_flush(self):
        tlb = TLB(entries=4)
        tlb.access(0x0)
        tlb.flush()
        assert tlb.resident_entries() == 0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(page_size=1000)
