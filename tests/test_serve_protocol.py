"""Wire protocol: framing, the event codec, and the canonical signature."""

import json
import struct

import pytest

from repro.machine.events import InputEvent, MemoryAccess, OutputEvent, StepEvent
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    canonical_json,
    canonical_signature,
    decode_batch,
    decode_event,
    decode_payload,
    encode_frame,
    encode_halt,
    encode_input,
    encode_output,
    encode_step,
)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "hello", "tenant": "t1", "proto": 1}
        frame = encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == message

    def test_encoding_is_deterministic(self):
        a = encode_frame({"b": 1, "a": 2, "type": "x"})
        b = encode_frame({"a": 2, "type": "x", "b": 1})
        assert a == b

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "x", "pad": "y" * MAX_FRAME_BYTES})

    def test_payload_must_be_object_with_type(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_payload(json.dumps({"no_type": 1}).encode())
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")


class TestFrameDecoder:
    def test_byte_at_a_time(self):
        frame = encode_frame({"type": "ping"})
        decoder = FrameDecoder()
        messages = []
        for index in range(len(frame)):
            messages.extend(decoder.feed(frame[index:index + 1]))
        assert messages == [{"type": "ping"}]

    def test_multiple_frames_in_one_read(self):
        data = encode_frame({"type": "a"}) + encode_frame({"type": "b"})
        assert [m["type"] for m in FrameDecoder().feed(data)] == ["a", "b"]

    def test_partial_frame_buffers_across_feeds(self):
        frame = encode_frame({"type": "ping", "pad": "x" * 100})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:50]) == []
        assert decoder.feed(frame[50:]) == [
            {"type": "ping", "pad": "x" * 100}
        ]

    def test_announced_oversize_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame=64)
        bogus = struct.pack(">I", 1 << 20)
        with pytest.raises(ProtocolError):
            decoder.feed(bogus)


def _step_event(**overrides):
    from repro.isa.assembler import assemble

    program = assemble("""
    .text
    ADDI r1, r0, 7
    HALT
    """)
    fields = dict(
        index=3,
        pc=0x20,
        instruction=program.instructions[0],
        regs_read=(0,),
        regs_written=(1,),
        reads=(MemoryAccess(address=0x100, size=4, is_write=False),),
        writes=(MemoryAccess(address=0x200, size=2, is_write=True),),
        next_pc=0x24,
        syscall_number=None,
    )
    fields.update(overrides)
    return StepEvent(**fields)


class TestEventCodec:
    def test_step_round_trip(self):
        event = _step_event()
        kind, decoded = decode_event(encode_step(event))
        assert kind == "step"
        assert decoded == event

    def test_step_with_syscall(self):
        event = _step_event(syscall_number=2, reads=(), writes=())
        kind, decoded = decode_event(encode_step(event))
        assert decoded.syscall_number == 2
        assert decoded.reads == () and decoded.writes == ()

    def test_input_round_trip(self):
        event = InputEvent(
            step_index=9, address=0x400, data=b"\x00\xffsecret",
            source_kind="file", source_name="input.txt", tainted_hint=True,
        )
        kind, decoded = decode_event(encode_input(event))
        assert kind == "input"
        assert decoded == event

    def test_output_round_trip(self):
        event = OutputEvent(
            step_index=11, address=0x500, length=16,
            sink_kind="file", sink_name="out.txt",
        )
        kind, decoded = decode_event(encode_output(event))
        assert kind == "output"
        assert decoded == event

    def test_halt_round_trip(self):
        kind, index = decode_event(encode_halt(42))
        assert (kind, index) == ("halt", 42)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode_event({"k": "z", "i": 0})

    def test_malformed_step_rejected(self):
        with pytest.raises(ProtocolError):
            decode_event({"k": "s", "i": 0})  # missing pc/w/np

    def test_bad_base64_rejected(self):
        record = encode_input(InputEvent(
            step_index=0, address=0, data=b"x", source_kind="file",
            source_name="f", tainted_hint=True,
        ))
        record["d"] = "!!! not base64 !!!"
        with pytest.raises(ProtocolError):
            decode_event(record)

    def test_batch_decodes_atomically(self):
        good = encode_halt(1)
        with pytest.raises(ProtocolError):
            decode_batch([good, {"k": "z"}])
        with pytest.raises(ProtocolError):
            decode_batch("not a list")

    def test_wire_survives_json(self):
        event = _step_event()
        record = json.loads(json.dumps(encode_step(event)))
        assert decode_event(record)[1] == event


class TestCanonicalSignature:
    def test_mirrors_oracle_state_signature(self):
        from repro.check.oracle import state_signature
        from repro.platch.functional import PLatchSystem
        from repro.workloads.programs import checksum

        cpu = checksum().make_cpu()
        system = PLatchSystem(cpu)
        cpu.run(100_000)
        system.finish()

        wire = canonical_signature(system.engine)
        alerts, tainted, trf = state_signature(system.engine)
        assert [tuple(a) for a in wire["alerts"]] == [
            (kind.value, pc) for kind, pc in
            [(alert.kind, alert.pc) for alert in system.engine.alerts]
        ]
        assert list(wire["tainted"]) == list(tainted)
        assert len(wire["trf"]) == 16

    def test_survives_json_round_trip(self):
        from repro.platch.functional import PLatchSystem
        from repro.workloads.programs import checksum

        cpu = checksum().make_cpu()
        system = PLatchSystem(cpu)
        cpu.run(100_000)
        system.finish()
        wire = canonical_signature(system.engine)
        assert json.loads(canonical_json(wire)) == wire

    def test_canonical_json_is_stable(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'
