"""Coarse Taint Table tests."""

from repro.core.ctt import CoarseTaintTable
from repro.core.domains import DomainGeometry


def make_table(domain_size=64):
    return CoarseTaintTable(DomainGeometry(domain_size=domain_size))


class TestBits:
    def test_initially_clean(self):
        table = make_table()
        assert not table.is_domain_tainted(0x1234)
        assert table.tainted_domain_count() == 0

    def test_set_and_clear(self):
        table = make_table()
        assert table.set_domain(0x100)
        assert table.is_domain_tainted(0x100)
        assert table.is_domain_tainted(0x13F)  # same 64 B domain
        assert not table.is_domain_tainted(0x140)
        assert table.clear_domain(0x100)
        assert not table.is_domain_tainted(0x100)

    def test_idempotent_returns(self):
        table = make_table()
        assert table.set_domain(0)
        assert not table.set_domain(0)
        assert table.clear_domain(0)
        assert not table.clear_domain(0)

    def test_zero_words_elided(self):
        table = make_table()
        table.set_domain(0x100)
        table.clear_domain(0x100)
        assert table.tainted_words() == set()

    def test_any_domain_tainted_over_range(self):
        table = make_table()
        table.set_domain(0x80)
        assert table.any_domain_tainted(0x40, 0x100)
        assert not table.any_domain_tainted(0x100, 0x40)
        assert table.any_domain_tainted(0x7F, 2)  # straddles into domain

    def test_word_value(self):
        table = make_table()
        table.set_domain(0)       # bit 0 of word 0
        table.set_domain(64 * 5)  # bit 5
        assert table.word(0) == 0b100001
        assert table.word(1) == 0

    def test_set_word(self):
        table = make_table()
        table.set_word(2, 0xF)
        assert table.is_domain_tainted(2 * 2048)
        table.set_word(2, 0)
        assert not table.is_domain_tainted(2 * 2048)

    def test_iter_tainted_domains(self):
        table = make_table()
        table.set_domain(64 * 40)
        table.set_domain(0)
        assert list(table.iter_tainted_domains()) == [0, 40]

    def test_clear_all(self):
        table = make_table()
        table.set_domain(0)
        table.clear_all()
        assert table.tainted_domain_count() == 0


class TestPageSummaries:
    def test_page_word_or(self):
        table = make_table()
        table.set_domain(0x0800)  # second half of page 0
        assert table.page_word_or(0) != 0
        assert table.page_word_or(1) == 0

    def test_page_taint_bits_per_word(self):
        table = make_table()
        table.set_domain(0x0000)  # page 0, page-domain 0
        table.set_domain(0x1800)  # page 1, page-domain 1
        assert table.page_taint_bits(0) == 0b01
        assert table.page_taint_bits(1) == 0b10
        assert table.page_taint_bits(2) == 0
