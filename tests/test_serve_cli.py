"""``repro-serve`` CLI: selftest gating, metrics artifact, loadgen."""

import json
import threading

import pytest

from repro.serve.cli import cli


class TestSelftest:
    def test_selftest_passes_and_writes_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "serve_metrics.json"
        code = cli([
            "selftest", "--clients", "12", "--tenants", "3",
            "--duration", "0.2", "--seed", "42",
            "--metrics-out", str(metrics_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "selftest ok: 12/12" in out
        assert "clean shutdown" in out

        payload = json.loads(metrics_path.read_text())
        assert payload["meta"]["command"] == "selftest"
        assert payload["meta"]["clients"] == 12
        names = [record["name"] for record in payload["metrics"]]
        assert "serve.inflight_peak" in names
        # Per-tenant rows are present for every simulated tenant.
        for index in range(3):
            assert f"serve.tenant.load-{index}.results" in names

    def test_selftest_exercises_retry_under_pressure(self, capsys):
        code = cli([
            "selftest", "--clients", "16", "--tenants", "2",
            "--duration", "0.0", "--max-inflight", "2",
            "--burst", "256", "--rate", "30000",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "divergences: 0" in out

    def test_selftest_phases_accepted(self, capsys):
        for phase in ("steady", "diurnal"):
            assert cli([
                "selftest", "--clients", "6", "--phase", phase,
                "--duration", "0.1",
            ]) == 0


class TestLoadgenCommand:
    def test_loadgen_against_running_server(self, capsys):
        from repro.serve import ServeConfig, running_server

        with running_server(ServeConfig()) as (_server, (host, port)):
            code = cli([
                "loadgen", "--host", host, "--port", str(port),
                "--clients", "8", "--tenants", "2", "--duration", "0.1",
            ])
        out = capsys.readouterr().out
        assert code == 0
        assert "clients completed: 8" in out

    def test_loadgen_fails_loudly_when_no_server(self, capsys):
        # A vacant port: every client errors, exit code goes non-zero.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = cli([
            "loadgen", "--port", str(port),
            "--clients", "3", "--duration", "0.0",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "failed: 3" in out


class TestServeCommand:
    def test_serve_runs_until_interrupted(self, capsys):
        # Drive the foreground command on a thread and interrupt it the
        # way an operator would (loop stop == SIGINT's effect).
        import asyncio

        result = {}

        def target():
            # KeyboardInterrupt is delivered to the main thread only,
            # so emulate it by stopping the loop from outside.
            result["code"] = cli(["serve", "--port", "0"])

        # Instead of signals, verify the command binds and reports.
        # Use a short-lived asyncio.run patch: run the server setup and
        # cancel serve_forever immediately.
        from repro.serve import cli as cli_module

        original = asyncio.run

        def run_briefly(coro):
            async def wrapper():
                task = asyncio.ensure_future(coro)
                await asyncio.sleep(0.2)
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            return original(wrapper())

        cli_module.__dict__  # keep linters quiet about the import
        asyncio.run = run_briefly
        try:
            thread = threading.Thread(target=target)
            thread.start()
            thread.join(10.0)
        finally:
            asyncio.run = original
        assert result["code"] == 0
        assert "listening on" in capsys.readouterr().out

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            cli([])

    def test_entry_point_is_registered(self):
        # Satellite: pyproject must expose the console script.
        import pathlib

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        text = pyproject.read_text()
        assert 'repro-serve = "repro.serve.cli:cli"' in text
