"""Figure 12 update-chain tests, including behavioural equivalence."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ctc import CoarseTaintCache
from repro.core.ctt import CoarseTaintTable
from repro.core.domains import DomainGeometry
from repro.core.update_logic import (
    UpdateChain,
    bits_to_word,
    decode_one_hot,
    masked_or_reduce,
    word_to_bits,
)
from repro.dift.tags import ShadowMemory


class TestPrimitives:
    def test_decoder_one_hot(self):
        lines = decode_one_hot(3, 8)
        assert lines == [False, False, False, True, False, False, False, False]

    def test_decoder_range_checked(self):
        with pytest.raises(ValueError):
            decode_one_hot(8, 8)

    def test_masked_or_excludes_selected(self):
        select = [True, False, False]
        assert not masked_or_reduce([True, False, False], select)
        assert masked_or_reduce([True, True, False], select)

    def test_word_bit_packing_roundtrip(self):
        assert bits_to_word(word_to_bits(0xDEAD_BEEF)) == 0xDEAD_BEEF


class TestChainSemantics:
    def setup_method(self):
        self.chain = UpdateChain(width=16)

    def test_setting_taint_sets_coarse_bit(self):
        result = self.chain.update([False] * 16, offset=5, new_tag_tainted=True)
        assert result.coarse_bit
        assert result.new_tags[5]
        assert result.page_bit

    def test_clearing_last_tag_clears_coarse_bit(self):
        tags = [False] * 16
        tags[5] = True
        result = self.chain.update(tags, offset=5, new_tag_tainted=False)
        assert not result.coarse_bit
        assert not result.page_bit

    def test_clearing_one_of_many_keeps_coarse_bit(self):
        tags = [False] * 16
        tags[5] = True
        tags[9] = True
        result = self.chain.update(tags, offset=5, new_tag_tainted=False)
        # The updated tag clears, but another tag keeps the domain hot.
        assert result.coarse_bit
        assert not result.new_tags[5]
        assert result.new_tags[9]

    def test_retagging_a_tainted_slot_with_taint(self):
        tags = [False] * 16
        tags[5] = True
        result = self.chain.update(tags, offset=5, new_tag_tainted=True)
        assert result.coarse_bit

    def test_sibling_units_hold_page_bit(self):
        tags = [False] * 16
        tags[5] = True
        result = self.chain.update(
            tags, offset=5, new_tag_tainted=False, sibling_units_or=True
        )
        assert not result.coarse_bit
        assert result.page_bit  # another domain under the page is hot

    def test_width_validation(self):
        with pytest.raises(ValueError):
            self.chain.update([False] * 8, offset=0, new_tag_tainted=True)
        with pytest.raises(ValueError):
            UpdateChain(width=0)

    def test_gate_estimate(self):
        assert UpdateChain(width=32).gate_estimate == 32 + 32 + 31 + 1


class TestBehaviouralEquivalence:
    """The gate network computes exactly what the CTC update path does.

    One 8-byte domain with byte-granularity tags: the chain's inputs are
    the domain's 8 precise tags; the behavioural path is
    ``CoarseTaintCache.update_taint`` with the immediate (Figure 12)
    clear policy over a shadow memory holding the same tags.
    """

    @given(
        st.integers(min_value=0, max_value=255),  # pre-update tag byte mask
        st.integers(min_value=0, max_value=7),    # which byte is written
        st.booleans(),                            # new tag value
    )
    def test_matches_ctc_immediate_update(self, tag_mask, offset, taint):
        geometry = DomainGeometry(domain_size=8)
        ctt = CoarseTaintTable(geometry)
        ctc = CoarseTaintCache(geometry, ctt, entries=4)
        shadow = ShadowMemory()

        base = 0x1000
        tags = [bool(tag_mask & (1 << index)) for index in range(8)]
        for index, tainted in enumerate(tags):
            if tainted:
                shadow.set(base + index, 1)
        if any(tags):
            ctt.set_domain(base)

        # Behavioural update.
        shadow.set(base + offset, 1 if taint else 0)
        ctc.update_taint(
            base + offset,
            tainted=taint,
            defer_clear=False,
            clean_oracle=shadow.region_clean,
        )

        # Gate-level evaluation.
        chain = UpdateChain(width=8)
        expected = chain.update(tags, offset=offset, new_tag_tainted=taint)

        assert ctt.is_domain_tainted(base) == expected.coarse_bit
        assert shadow.any_tainted(base, 8) == any(expected.new_tags)
        # Chained page level: this is the page's only hot word, so the
        # page summary equals the word's occupancy.
        page_hot = ctt.page_word_or(base // geometry.page_size) != 0
        assert page_hot == expected.page_bit
