"""Cross-model validation: independent models must agree.

These tests tie different layers of the reproduction together — if a
refactor breaks one model silently, its disagreement with an
independent model of the same quantity surfaces here.
"""

import numpy as np
import pytest

from repro.analysis.reuse import lru_hit_rate, reuse_distances
from repro.core.latch import LatchConfig
from repro.hlatch import run_hlatch
from repro.workloads import WorkloadGenerator, get_profile


class TestCtcReusePrediction:
    """Stack-distance analysis predicts the measured CTC hit rate.

    The CTC is fully associative LRU, so over the stream of accesses
    that actually reach it (those in hot page-level domains), the
    reuse-distance histogram at CTT-word granularity must predict its
    hit rate.  Small deviations come from accesses that straddle two
    words (checked twice) — hence the tolerance.
    """

    @pytest.mark.parametrize("name", ["astar", "sphinx", "apache"])
    def test_prediction_matches_simulation(self, name):
        config = LatchConfig()
        geometry = config.geometry()
        trace = WorkloadGenerator(get_profile(name)).access_trace(120_000)

        report = run_hlatch(trace, latch_config=config)
        ctc_accesses = report.accesses - report.resolved_by_tlb
        if ctc_accesses < 500:
            pytest.skip("not enough CTC traffic to compare")
        measured_hit = 1.0 - report.ctc_misses / ctc_accesses

        # Reconstruct the CTC-visible stream: accesses whose page-level
        # domain contains taint (the TLB screen is static here because
        # the trace carries no taint updates).
        span = geometry.word_span
        hot_words = set(
            (np.asarray(trace.layout.tainted_domains(geometry.domain_size))
             * geometry.domain_size // span).tolist()
        )
        access_words = trace.addresses // span
        visible = np.isin(access_words, np.fromiter(
            sorted(hot_words), dtype=np.int64, count=len(hot_words)
        ))
        stream = trace.addresses[visible]
        distances = reuse_distances(stream, granularity=span)
        predicted_hit = lru_hit_rate(distances, config.ctc_entries)

        assert predicted_hit == pytest.approx(measured_hit, abs=0.05)


class TestFunctionalVsAnalyticSLatch:
    """The functional controller and the performance model agree on the
    hardware/software split for a workload both can express."""

    def test_trap_counts_consistent_on_phased_program(self):
        import dataclasses

        from repro.dift.engine import DIFTEngine
        from repro.machine.tracing import TraceRecorder
        from repro.slatch import (
            FixedTimeout,
            SLatchCostModel,
            SLatchSystem,
            simulate_slatch_with_policy,
        )
        from repro.workloads.programs import phased_compute

        # Run functionally and record the epoch structure.
        scenario = phased_compute(clean_iterations=600)
        cpu = scenario.make_cpu()
        engine = DIFTEngine()
        recorder = TraceRecorder(engine)
        cpu.attach(engine)
        cpu.attach(recorder)
        cpu.run(200_000)
        stream = recorder.epoch_stream()

        # Functional S-LATCH on a fresh copy of the same program.
        scenario2 = phased_compute(clean_iterations=600)
        cpu2 = scenario2.make_cpu()
        costs = dataclasses.replace(
            SLatchCostModel(), timeout_instructions=200
        )
        functional = SLatchSystem(cpu2, costs=costs)
        cpu2.run(200_000)

        # Analytic model over the recorded stream with the same timeout.
        profile = get_profile("gcc")  # slowdown irrelevant to the split
        analytic = simulate_slatch_with_policy(
            profile, stream, FixedTimeout(200), costs=costs
        )

        assert analytic.traps == functional.counters.traps
        assert analytic.returns == functional.counters.returns
        # Instruction-split agreement within the replayed-instruction
        # bookkeeping differences (the trap instruction itself).
        assert analytic.sw_instructions == pytest.approx(
            functional.counters.sw_instructions, abs=5
        )
