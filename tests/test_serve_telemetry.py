"""Server-side telemetry plane: verb, TCP exposition, SLO wiring, top.

Every test runs a real :class:`TaintServer` on an ephemeral port.
Covers the ``telemetry`` protocol verb (text + json modes, the
disabled-side error), the ``--telemetry-port`` plain-TCP exposition
endpoint, bit-identity of served results with the exporter running,
load-shedding pressure from a firing SLO alert, and the ``repro-top``
dashboard (render, ``--once``, ``--fail-on-alert``).
"""

import json
import socket

import pytest

from repro.obs import MetricsRegistry, read_jsonl
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    fetch_telemetry,
    local_reference,
    record_trace,
    running_server,
)
from repro.serve.protocol import canonical_json
from repro.tools.top import render_dashboard
from repro.workloads import programs


@pytest.fixture(scope="module")
def checksum_trace():
    factory = lambda: programs.checksum().make_cpu()
    return record_trace(factory), local_reference(factory)


def _telemetry_config(**overrides):
    overrides.setdefault("slo_rules", ("divergence == 0",))
    return ServeConfig(**overrides)


class TestTelemetryVerb:
    def test_text_mode_exposes_prometheus_families(self, checksum_trace):
        events, _ = checksum_trace
        with running_server(_telemetry_config()) as (_server, (host, port)):
            with ServeClient(host, port, tenant="acme") as client:
                client.check_trace(events)
            text = fetch_telemetry(host, port)
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert "repro_serve_request_seconds_bucket" in text
        # Per-tenant latency percentiles and counters, tenant-labelled.
        assert ('repro_serve_tenant_latency_seconds'
                '{tenant="acme",quantile="0.99"}') in text
        assert 'repro_serve_tenant_events_total{tenant="acme"}' in text
        assert "repro_telemetry_seq" in text

    def test_json_mode_returns_sample_dict(self, checksum_trace):
        events, _ = checksum_trace
        with running_server(_telemetry_config()) as (_server, (host, port)):
            with ServeClient(host, port, tenant="acme") as client:
                client.check_trace(events)
            sample = fetch_telemetry(host, port, mode="json")
        names = {m["name"] for m in sample["snapshot"]["metrics"]}
        assert "serve.request_seconds" in names
        assert "serve.tenant.acme.latency_seconds" in names
        assert sample["firing"] == []
        assert sample["health"] == 1.0

    def test_verb_errors_when_telemetry_disabled(self):
        with running_server() as (_server, (host, port)):
            with pytest.raises(ServeError):
                fetch_telemetry(host, port)

    def test_verb_allowed_before_hello(self):
        # fetch_telemetry never sends hello; reaching the assert above
        # proves it, but pin the pre-hello contract explicitly too.
        with running_server(_telemetry_config()) as (_server, (host, port)):
            text = fetch_telemetry(host, port)
        assert text.startswith("# HELP")


class TestExpositionEndpoint:
    def test_plain_tcp_port_serves_text(self, checksum_trace):
        events, _ = checksum_trace
        config = _telemetry_config(telemetry_port=0)
        with running_server(config) as (server, (host, port)):
            with ServeClient(host, port, tenant="curl") as client:
                client.check_trace(events)
            address = server.telemetry_address
            assert address is not None
            with socket.create_connection(address, timeout=10) as sock:
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
        text = b"".join(chunks).decode("utf-8")
        assert text.startswith("# HELP")
        assert 'repro_serve_tenant_events_total{tenant="curl"}' in text


class TestBitIdentityWithExporter:
    def test_results_identical_with_telemetry_on(self, checksum_trace,
                                                 tmp_path):
        events, reference = checksum_trace
        jsonl = tmp_path / "telemetry.jsonl"
        config = _telemetry_config(
            telemetry_interval=0.02,
            telemetry_jsonl=str(jsonl),
        )
        with running_server(config) as (server, (host, port)):
            with ServeClient(host, port, tenant="ident") as client:
                result = client.check_trace(events)
            assert server.exporter is not None
            server.exporter.tick()
        assert canonical_json(result.signature) == canonical_json(
            reference["signature"]
        )
        assert canonical_json(result.stats) == canonical_json(
            reference["stats"]
        )
        samples = read_jsonl(str(jsonl))
        assert samples, "exporter thread never flushed a sample"
        assert samples[-1]["snapshot"]["metrics"]

    def test_request_latency_routed_through_bounded_timer(
            self, checksum_trace):
        events, _ = checksum_trace
        with running_server(_telemetry_config()) as (server, (host, port)):
            with ServeClient(host, port, tenant="timed") as client:
                client.check_trace(events)
            timer = server.obs.timer("serve.request_seconds")
            assert timer.mode == "bounded"
            assert timer.count >= 3  # open + events + close at least
            tenant_timer = server.obs.timer(
                "serve.tenant.timed.latency_seconds"
            )
            assert tenant_timer.mode == "bounded"
            assert tenant_timer.count >= 3


class TestSLOLoadShedding:
    def test_firing_alert_scales_retry_pricing(self):
        config = _telemetry_config(
            slo_rules=("serve.inflight <= -1",),  # impossible objective
        )
        with running_server(config) as (server, _address):
            sample = server.exporter.tick()
            assert sample.firing == ["serve.inflight <= -1"]
            assert server.obs.gauge("serve.health").value == 0.0
            assert server.controller.pressure == 2.0
            assert server.flight is not None
            names = [r["name"] for r in server.flight.snapshot()]
            assert "slo.alert.firing" in names

    def test_healthy_server_keeps_neutral_pressure(self):
        with running_server(_telemetry_config()) as (server, _address):
            server.exporter.tick()
            assert server.controller.pressure == 1.0
            assert server.obs.gauge("serve.health").value == 1.0


class TestReproTop:
    def _sample_from_server(self, checksum_trace):
        events, _ = checksum_trace
        with running_server(_telemetry_config()) as (_server, (host, port)):
            with ServeClient(host, port, tenant="dash") as client:
                client.check_trace(events)
            return fetch_telemetry(host, port, mode="json")

    def test_render_dashboard_shows_tenant_row(self, checksum_trace):
        sample = self._sample_from_server(checksum_trace)
        frame = render_dashboard(sample)
        assert "repro-top — seq" in frame
        assert "dash" in frame
        assert "p99ms" in frame
        assert "alerts: none firing" in frame

    def test_once_mode_renders_jsonl(self, checksum_trace, tmp_path,
                                     capsys):
        from repro.tools.top import cli

        sample = self._sample_from_server(checksum_trace)
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(sample) + "\n")
        assert cli(["--once", "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dash" in out

    def test_fail_on_alert_exits_two(self, checksum_trace, tmp_path,
                                     capsys):
        from repro.tools.top import cli

        sample = self._sample_from_server(checksum_trace)
        sample["firing"] = ["divergence == 0"]
        path = tmp_path / "telemetry.jsonl"
        path.write_text(json.dumps(sample) + "\n")
        assert cli(["--once", "--jsonl", str(path),
                    "--fail-on-alert", "divergence"]) == 2
        assert "FAIL: alert firing" in capsys.readouterr().out
        # A non-matching pattern leaves the exit status clean.
        assert cli(["--once", "--jsonl", str(path),
                    "--fail-on-alert", "latency"]) == 0

    def test_missing_file_exits_one(self, tmp_path, capsys):
        from repro.tools.top import cli

        assert cli(["--once", "--jsonl", str(tmp_path / "nope.jsonl")]) == 1
