"""Disassembler tests, including assemble → disassemble → assemble loops."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.instructions import Instruction, Opcode


class TestFormatting:
    def test_r_format(self):
        assert format_instruction(
            Instruction(Opcode.XOR, rd=4, rs1=5, rs2=6)
        ) == "xor r4, r5, r6"

    def test_load_store_syntax(self):
        assert format_instruction(
            Instruction(Opcode.LW, rd=1, rs1=2, imm=8)
        ) == "lw r1, 8(r2)"
        assert format_instruction(
            Instruction(Opcode.SB, rs1=2, rs2=3, imm=-1)
        ) == "sb r3, -1(r2)"

    def test_branch_uses_label_when_known(self):
        instr = Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=8, label="done")
        assert format_instruction(instr) == "beq r1, r2, done"

    def test_branch_numeric_fallback(self):
        instr = Instruction(Opcode.BNE, rs1=1, rs2=2, imm=-12)
        assert format_instruction(instr) == "bne r1, r2, -12"

    def test_bare_mnemonics(self):
        assert format_instruction(Instruction(Opcode.NOP)) == "nop"
        assert format_instruction(Instruction(Opcode.HALT)) == "halt"
        assert format_instruction(Instruction(Opcode.SYSCALL)) == "syscall"

    def test_latch_instructions(self):
        assert format_instruction(Instruction(Opcode.STRF, rs1=5)) == "strf r5"
        assert format_instruction(Instruction(Opcode.LTNT, rd=6)) == "ltnt r6"
        assert format_instruction(
            Instruction(Opcode.STNT, rs1=1, rs2=2)
        ) == "stnt r1, r2"

    def test_lui(self):
        assert format_instruction(
            Instruction(Opcode.LUI, rd=3, imm=0x1234)
        ) == "lui r3, 4660"


class TestListing:
    def test_addresses_in_listing(self):
        listing = disassemble(
            [Instruction(Opcode.NOP), Instruction(Opcode.HALT)],
            base_address=0x1000,
        )
        lines = listing.splitlines()
        assert lines[0].startswith("0x00001000:")
        assert lines[1].startswith("0x00001004:")
        assert "halt" in lines[1]


class TestRoundTrip:
    def test_reassembling_disassembly_preserves_semantics(self):
        source = """
        _start:
            addi r4, r0, 10
            addi r5, r0, 0
        loop:
            add  r5, r5, r4
            addi r4, r4, -1
            bne  r4, r0, loop
            halt
        """
        first = assemble(source)
        # Strip symbolic labels so the listing is self-contained (numeric
        # pc-relative offsets), then assemble the listing again.
        import dataclasses

        text = "\n".join(
            format_instruction(dataclasses.replace(instr, label=None))
            for instr in first.instructions
        )
        second = assemble(text)
        assert [i.opcode for i in first.instructions] == [
            i.opcode for i in second.instructions
        ]
        assert [i.imm for i in first.instructions] == [
            i.imm for i in second.instructions
        ]
