"""Scheduler semantics: caching, determinism, and fault tolerance.

These tests exercise every row of the failure table in docs/RUNNER.md:
job raises (retry then fail), worker death (BrokenProcessPool
recovery), per-job timeout, and graceful degradation to serial
execution.  Scales are tiny so the whole module stays fast even on a
single-core machine.
"""

import pytest

from repro.runner import (
    JobSpec,
    ResultCache,
    Runner,
    RunnerConfig,
    TraceCache,
    suite_jobs,
)

EPOCH_SCALE = 120_000
TRACE_WINDOW = 3_000


def _smoke_jobs(seed=0):
    return suite_jobs(
        "smoke", epoch_scale=EPOCH_SCALE, trace_window=TRACE_WINDOW, seed=seed
    )


def _fast_config(**overrides):
    defaults = dict(max_workers=1, backoff_base=0.0, backoff_max=0.0)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def _snapshots(results):
    return {job_id: r.snapshot for job_id, r in sorted(results.items())}


class TestCaching:
    def test_cold_run_computes_everything(self, tmp_path):
        runner = Runner(
            cache=ResultCache(tmp_path), trace_cache=TraceCache(tmp_path),
            config=_fast_config(),
        )
        results = runner.run(_smoke_jobs())
        assert len(results) == 6
        assert all(r.ok and not r.from_cache for r in results.values())
        snap = runner.registry.snapshot()
        assert snap.get("runner.jobs.scheduled") == 6
        assert snap.get("runner.jobs.completed") == 6
        assert snap.get("runner.cache.misses") == 6
        assert snap.get("runner.cache.hits") == 0
        assert snap.get("runner.job.duration_seconds")["count"] == 6

    def test_warm_run_recomputes_nothing(self, tmp_path):
        cold = Runner(
            cache=ResultCache(tmp_path), trace_cache=TraceCache(tmp_path),
            config=_fast_config(),
        )
        cold_results = cold.run(_smoke_jobs())

        warm = Runner(cache=ResultCache(tmp_path), config=_fast_config())
        warm_results = warm.run(_smoke_jobs())
        assert all(r.from_cache for r in warm_results.values())
        snap = warm.registry.snapshot()
        assert snap.get("runner.cache.hits") == 6
        assert snap.get("runner.jobs.completed") == 0
        assert _snapshots(warm_results) == _snapshots(cold_results)

    def test_changed_scale_invalidates_only_affected_cells(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path), config=_fast_config())
        runner.run(_smoke_jobs())

        rerun = Runner(cache=ResultCache(tmp_path), config=_fast_config())
        jobs = suite_jobs(
            "smoke", epoch_scale=EPOCH_SCALE + 10_000,
            trace_window=TRACE_WINDOW,
        )
        results = rerun.run(jobs)
        snap = rerun.registry.snapshot()
        # page_taint and hlatch specs ignore epoch_scale → still cached;
        # the two taint_fraction cells recompute.
        assert snap.get("runner.cache.hits") == 4
        assert snap.get("runner.jobs.completed") == 2
        recomputed = {
            job_id for job_id, r in results.items() if not r.from_cache
        }
        assert recomputed == {"taint_fraction:gcc", "taint_fraction:curl"}

    def test_duplicate_job_ids_rejected(self):
        runner = Runner(config=_fast_config())
        jobs = [
            JobSpec.make("chaos", "cell", value=1),
            JobSpec.make("chaos", "cell", value=2),
        ]
        with pytest.raises(ValueError, match="duplicate job ids"):
            runner.run(jobs)


class TestDeterminism:
    def test_parallel_equals_serial_bit_identical(self, tmp_path):
        """Acceptance: a cold parallel run on >=2 workers produces
        snapshots identical to a cold serial run, including a nonzero
        propagated seed."""
        serial = Runner(config=_fast_config())
        serial_results = serial.run(_smoke_jobs(seed=7))

        parallel = Runner(config=_fast_config(max_workers=2))
        parallel_results = parallel.run(_smoke_jobs(seed=7))

        assert all(r.ok for r in serial_results.values())
        assert all(r.ok for r in parallel_results.values())
        assert _snapshots(parallel_results) == _snapshots(serial_results)

    def test_seed_changes_results(self):
        runner = Runner(config=_fast_config())
        spec0 = suite_jobs("smoke", epoch_scale=EPOCH_SCALE,
                           trace_window=TRACE_WINDOW, seed=0)[:1]
        spec9 = suite_jobs("smoke", epoch_scale=EPOCH_SCALE,
                           trace_window=TRACE_WINDOW, seed=9)[:1]
        a = runner.run(spec0)["taint_fraction:gcc"].snapshot
        b = Runner(config=_fast_config()).run(spec9)[
            "taint_fraction:gcc"
        ].snapshot
        assert a != b


class TestFaultTolerance:
    def test_retry_recovers_flaky_job(self, tmp_path):
        runner = Runner(config=_fast_config(max_retries=2))
        sentinel = tmp_path / "crashed-once"
        results = runner.run([
            JobSpec.make("chaos", "flaky", crash_once=str(sentinel), value=5),
        ])
        result = results["chaos:flaky"]
        assert result.ok and result.attempts == 2
        assert result.snapshot.get("chaos.value") == 5
        assert runner.registry.snapshot().get("runner.jobs.retried") == 1

    def test_retries_exhausted_marks_failed(self):
        runner = Runner(config=_fast_config(max_retries=2))
        results = runner.run([
            JobSpec.make("chaos", "doomed", fail_always=True),
            JobSpec.make("chaos", "fine", value=1),
        ])
        doomed = results["chaos:doomed"]
        assert doomed.status == "failed"
        assert doomed.attempts == 3  # initial + max_retries
        assert "fail_always" in doomed.error
        # Other jobs in the batch are unaffected.
        assert results["chaos:fine"].ok
        snap = runner.registry.snapshot()
        assert snap.get("runner.jobs.failed") == 1
        assert snap.get("runner.jobs.retried") == 2

    def test_worker_death_recovered_and_suite_completes(self, tmp_path):
        """Acceptance: injected worker death mid-suite still yields the
        complete, correct suite via pool rebuild + requeue."""
        sentinel = tmp_path / "killed-once"
        jobs = [
            JobSpec.make("chaos", "killer", crash_once=str(sentinel),
                         crash_mode="exit", value=3),
            JobSpec.make("chaos", "bystander-a", value=1),
            JobSpec.make("chaos", "bystander-b", value=2),
        ]
        runner = Runner(config=_fast_config(max_workers=2, job_timeout=60.0))
        results = runner.run(jobs)
        assert all(r.ok for r in results.values())
        assert results["chaos:killer"].snapshot.get("chaos.value") == 3
        snap = runner.registry.snapshot()
        assert snap.get("runner.workers.deaths") >= 1
        assert snap.get("runner.pool.restarts") >= 1

    def test_job_timeout_abandons_stalled_job(self):
        runner = Runner(config=_fast_config(
            max_workers=2, job_timeout=0.5, max_retries=0,
        ))
        results = runner.run([
            JobSpec.make("chaos", "stalled", sleep=30),
            JobSpec.make("chaos", "fine", value=1),
        ])
        stalled = results["chaos:stalled"]
        assert stalled.status == "failed"
        assert "timed out" in stalled.error
        assert results["chaos:fine"].ok
        assert runner.registry.snapshot().get("runner.jobs.timeouts") >= 1

    def test_pool_start_failure_degrades_to_serial(self, monkeypatch):
        runner = Runner(config=_fast_config(max_workers=2))

        def broken_executor():
            raise OSError("no more processes")

        monkeypatch.setattr(runner, "_make_executor", broken_executor)
        results = runner.run([JobSpec.make("chaos", "cell", value=4)])
        assert results["chaos:cell"].ok
        assert results["chaos:cell"].snapshot.get("chaos.value") == 4
        assert runner.registry.snapshot().get("runner.serial_fallbacks") == 1

    def test_serial_run_survives_exit_mode_crash(self, tmp_path):
        """A hard-crash chaos job downgrades to an exception in-process,
        so serial execution can retry it instead of dying."""
        sentinel = tmp_path / "serial-crash"
        runner = Runner(config=_fast_config(max_retries=1))
        results = runner.run([
            JobSpec.make("chaos", "hard", crash_once=str(sentinel),
                         crash_mode="exit", value=6),
        ])
        result = results["chaos:hard"]
        assert result.ok and result.attempts == 2

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache, config=_fast_config(max_retries=0))
        runner.run([JobSpec.make("chaos", "doomed", fail_always=True)])
        assert len(cache) == 0
