"""P-LATCH model tests: window localisation and the queue mechanism."""

import pytest

from repro.platch.lba import LBA_OPTIMIZED, LBA_SIMPLE, LbaParameters
from repro.platch.model import analytic_platch
from repro.platch.queue_sim import TwoCoreQueueSimulator
from repro.workloads.profiles import get_profile
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import Epoch, EpochStream


def stream(*epochs, name="crafted"):
    return EpochStream.from_epochs(
        name, [Epoch(length=l, tainted_instructions=t) for l, t in epochs]
    )


class TestLbaParameters:
    def test_reported_overheads(self):
        assert LBA_SIMPLE.mean_overhead == pytest.approx(3.38)
        assert LBA_OPTIMIZED.mean_overhead == pytest.approx(0.36)

    def test_analysis_cost_derivation(self):
        assert LBA_SIMPLE.analysis_cycles_per_event == pytest.approx(4.38)


class TestAnalyticModel:
    def test_taint_free_stream_no_overhead(self):
        report = analytic_platch(stream((100_000, 0)))
        assert report.monitored_fraction == 0.0
        assert report.overhead == 0.0
        assert report.speedup_vs_baseline == pytest.approx(1.0 + 3.38)

    def test_single_window_for_small_epoch(self):
        # One 100-instruction taint epoch inside one 1000-instr window.
        report = analytic_platch(stream((500, 0), (100, 50), (10_000, 0)))
        assert report.monitored_instructions == 1000

    def test_epoch_spanning_window_boundary(self):
        # Active epoch crosses a window boundary → two windows monitored.
        report = analytic_platch(stream((900, 0), (200, 100), (10_000, 0)))
        assert report.monitored_instructions == 2000

    def test_adjacent_epochs_share_windows(self):
        # Two active epochs falling in the same window count it once.
        report = analytic_platch(
            stream((100, 0), (50, 25), (100, 0), (50, 25), (10_000, 0))
        )
        assert report.monitored_instructions == 1000

    def test_fully_tainted_capped_at_total(self):
        report = analytic_platch(stream((600, 300)))
        assert report.monitored_instructions == 600
        assert report.monitored_fraction == 1.0
        assert report.overhead == pytest.approx(3.38)

    def test_overhead_scales_with_baseline(self):
        epochs = stream((500, 0), (100, 50), (10_000, 0))
        simple = analytic_platch(epochs, LBA_SIMPLE)
        optimized = analytic_platch(epochs, LBA_OPTIMIZED)
        assert simple.monitored_fraction == optimized.monitored_fraction
        ratio = simple.overhead / optimized.overhead
        assert ratio == pytest.approx(3.38 / 0.36)


class TestQueueSimulation:
    def test_unfiltered_saturates_to_lba_overhead(self):
        # Long uniform stream: every instruction enqueued, monitor slower
        # than producer → steady-state overhead equals the rate deficit.
        epochs = stream(*[(10_000, 0)] * 100)
        report = TwoCoreQueueSimulator(LBA_SIMPLE, filtered=False).run(epochs)
        assert report.overhead == pytest.approx(3.38, rel=0.01)

    def test_filtered_clean_stream_never_stalls(self):
        epochs = stream(*[(10_000, 0)] * 50)
        report = TwoCoreQueueSimulator(LBA_SIMPLE, filtered=True).run(epochs)
        assert report.stall_cycles == 0
        assert report.events_enqueued == 0

    def test_filtered_overhead_below_baseline(self):
        epochs = stream(
            *([(5_000, 0), (500, 250)] * 50),
        )
        filtered = TwoCoreQueueSimulator(LBA_SIMPLE, filtered=True).run(epochs)
        unfiltered = TwoCoreQueueSimulator(LBA_SIMPLE, filtered=False).run(epochs)
        assert filtered.overhead < unfiltered.overhead

    def test_queue_capacity_absorbs_short_bursts(self):
        # A burst smaller than the queue does not stall the producer.
        epochs = stream((100, 100), (100_000, 0))
        report = TwoCoreQueueSimulator(
            LbaParameters(name="x", mean_overhead=3.38, queue_entries=1024),
            filtered=True,
        ).run(epochs)
        assert report.stall_cycles == 0

    def test_fp_rate_adds_events(self):
        epochs = stream((100_000, 0))
        report = TwoCoreQueueSimulator(
            LBA_SIMPLE, filtered=True, fp_rate=0.01
        ).run(epochs)
        assert report.events_enqueued == pytest.approx(1000, rel=0.05)


class TestFigure15Shape:
    def test_platch_beats_baseline_on_all_workloads(self):
        for name in ("astar", "bzip2", "apache", "curl", "mySQL"):
            generator = WorkloadGenerator(get_profile(name))
            report = analytic_platch(generator.epoch_stream(5_000_000))
            assert report.overhead < 3.38, name

    def test_taint_fraction_orders_monitored_fraction(self):
        def monitored(name):
            generator = WorkloadGenerator(get_profile(name))
            return analytic_platch(
                generator.epoch_stream(5_000_000)
            ).monitored_fraction

        assert monitored("astar") > monitored("gcc") > monitored("gobmk")
