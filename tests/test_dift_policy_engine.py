"""Policy and engine tests: sources, sinks, alerts, end-to-end flows."""

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.events import AlertKind, SecurityException
from repro.dift.policy import TaintPolicy, hardened_policy, leak_detection_policy
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import DeviceTable, VirtualFile
from repro.machine.events import InputEvent
from repro.machine.syscalls import Syscall


def make_input(kind="file", name="f", tainted_hint=True, data=b"xy", address=0x100):
    return InputEvent(
        step_index=0,
        address=address,
        data=data,
        source_kind=kind,
        source_name=name,
        tainted_hint=tainted_hint,
    )


class TestPolicyDecisions:
    def test_default_taints_files_and_sockets(self):
        policy = TaintPolicy()
        assert policy.should_taint(make_input("file"))
        assert policy.should_taint(make_input("socket"))

    def test_device_hint_respected(self):
        assert not TaintPolicy().should_taint(make_input(tainted_hint=False))

    def test_source_kind_toggles(self):
        policy = TaintPolicy(taint_files=False)
        assert not policy.should_taint(make_input("file"))
        assert policy.should_taint(make_input("socket"))

    def test_allowlist(self):
        policy = TaintPolicy(source_name_allowlist=frozenset({"evil.bin"}))
        assert policy.should_taint(make_input(name="evil.bin"))
        assert not policy.should_taint(make_input(name="good.bin"))

    def test_zero_tag_rejected(self):
        with pytest.raises(ValueError):
            TaintPolicy(taint_tag=0)

    def test_hardened_policy_protects_open(self):
        policy = hardened_policy()
        assert policy.check_syscall_args
        assert int(Syscall.OPEN) in policy.protected_syscalls


class TestEngineInitialisation:
    def test_tainted_input_sets_shadow(self):
        engine = DIFTEngine()
        engine.on_input(make_input(data=b"abcd", address=0x2000))
        assert engine.shadow.all_tainted(0x2000, 4)
        assert engine.stats.taint_source_bytes == 4

    def test_trusted_input_clears_previous_taint(self):
        engine = DIFTEngine()
        engine.on_input(make_input(data=b"abcd", address=0x2000))
        engine.on_input(make_input(data=b"wxyz", address=0x2000, tainted_hint=False))
        assert not engine.shadow.any_tainted(0x2000, 4)

    def test_tag_listener_sees_inputs_and_clears(self):
        engine = DIFTEngine()
        writes = []
        engine.add_tag_listener(lambda addr, tags: writes.append((addr, tags)))
        engine.on_input(make_input(data=b"ab", address=0x10))
        engine.on_input(make_input(data=b"ab", address=0x10, tainted_hint=False))
        assert writes == [(0x10, b"\x01\x01"), (0x10, b"\x00\x00")]

    def test_manual_taint_region(self):
        engine = DIFTEngine()
        engine.taint_region(0x500, 3)
        assert engine.shadow.all_tainted(0x500, 3)
        engine.clear_region(0x500, 3)
        assert not engine.shadow.any_tainted(0x500, 3)


class TestEndToEndDetection:
    def _run_attack(self, policy=None):
        source = """
        .data
path: .asciiz "in"
buf:  .space 8
        .text
_start:
    li r3, 3
    li r4, path
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, buf
    li r6, 4
    syscall
    li r8, buf
    lw r9, 0(r8)
    jalr r1, 0(r9)
    halt
"""
        devices = DeviceTable()
        # Hijack target outside the text section: execution faults right
        # after the (detected) tainted jump.
        devices.register_file(VirtualFile("in", (0x2000).to_bytes(4, "little")))
        cpu = CPU(assemble(source), devices=devices)
        engine = DIFTEngine(policy)
        cpu.attach(engine)
        try:
            cpu.run(1000)
        except Exception:
            pass
        return engine

    def test_tainted_jump_detected(self):
        engine = self._run_attack()
        assert [a.kind for a in engine.alerts] == [AlertKind.TAINTED_JUMP]
        assert engine.stats.alert_count == 1

    def test_tainted_return_classified_separately(self):
        engine = DIFTEngine()
        from repro.isa.instructions import Instruction, Opcode
        from repro.machine.events import StepEvent

        engine.trf.taint(1)  # ra
        engine.on_step(
            StepEvent(
                index=0,
                pc=0,
                instruction=Instruction(Opcode.JALR, rd=0, rs1=1, imm=0),
                regs_read=(1,),
                next_pc=0,
            )
        )
        assert engine.alerts[0].kind == AlertKind.TAINTED_RETURN

    def test_jump_check_can_be_disabled(self):
        engine = self._run_attack(TaintPolicy(check_jump_targets=False))
        assert engine.alerts == []

    def test_stop_on_alert_raises(self):
        policy = TaintPolicy(stop_on_alert=True)
        with pytest.raises(SecurityException):
            source = """
            .data
p: .asciiz "in"
b: .space 4
            .text
_start:
    li r3, 3
    li r4, p
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, b
    li r6, 4
    syscall
    li r8, b
    lw r9, 0(r8)
    jalr r1, 0(r9)
    halt
"""
            devices = DeviceTable()
            devices.register_file(VirtualFile("in", b"\x00\x10\x00\x00"))
            cpu = CPU(assemble(source), devices=devices)
            cpu.attach(DIFTEngine(policy))
            cpu.run(1000)

    def test_protected_syscall_arg(self):
        # Tainted bytes used to build an OPEN path argument.
        source = """
        .data
p: .asciiz "in"
b: .space 8
        .text
_start:
    li r3, 3
    li r4, p
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, b
    li r6, 4
    syscall
    li r8, b
    lw r9, 0(r8)
    li r3, 3
    mv r4, r9        # tainted argument to OPEN
    syscall
    halt
"""
        devices = DeviceTable()
        devices.register_file(VirtualFile("in", b"\x01\x02\x03\x04"))
        cpu = CPU(assemble(source), devices=devices)
        engine = DIFTEngine(hardened_policy())
        cpu.attach(engine)
        try:
            cpu.run(1000)
        except Exception:
            pass
        assert AlertKind.TAINTED_SYSCALL_ARG in [a.kind for a in engine.alerts]

    def test_leak_policy_flags_tainted_output(self):
        source = """
        .data
p: .asciiz "in"
b: .space 8
        .text
_start:
    li r3, 3
    li r4, p
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, b
    li r6, 4
    syscall
    li r3, 2          # WRITE to console
    li r4, 0
    li r5, b
    li r6, 4
    syscall
    halt
"""
        devices = DeviceTable()
        devices.register_file(VirtualFile("in", b"ssshh"))
        cpu = CPU(assemble(source), devices=devices)
        engine = DIFTEngine(leak_detection_policy())
        cpu.attach(engine)
        cpu.run(1000)
        assert [a.kind for a in engine.alerts] == [AlertKind.TAINTED_OUTPUT]

    def test_stats_fraction(self):
        engine = self._run_attack()
        assert 0 < engine.stats.tainted_fraction < 1
