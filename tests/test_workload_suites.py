"""Workload-suite convenience tests."""

import pytest

from repro.workloads.suites import (
    APACHE_SWEEP,
    FULL_SUITE,
    NETWORK_SUITE,
    PAGE_ALIGNED,
    POOR_LOCALITY,
    SPEC_SUITE,
    iter_generators,
    profiles_for,
    suite_summary,
)


class TestSuiteContents:
    def test_sizes(self):
        assert len(SPEC_SUITE) == 20
        assert len(NETWORK_SUITE) == 7
        assert len(FULL_SUITE) == 27

    def test_ordering_spec_first(self):
        assert FULL_SUITE[:20] == SPEC_SUITE
        assert FULL_SUITE[20:] == NETWORK_SUITE

    def test_special_groups_subsets(self):
        assert set(POOR_LOCALITY) <= set(SPEC_SUITE)
        assert set(PAGE_ALIGNED) <= set(SPEC_SUITE)
        assert set(APACHE_SWEEP) <= set(NETWORK_SUITE)

    def test_profiles_for(self):
        profiles = profiles_for(POOR_LOCALITY)
        assert [p.name for p in profiles] == list(POOR_LOCALITY)
        with pytest.raises(KeyError):
            profiles_for(["nope"])


class TestHelpers:
    def test_iter_generators(self):
        pairs = list(iter_generators(PAGE_ALIGNED, seed=4))
        assert [name for name, _ in pairs] == list(PAGE_ALIGNED)
        for name, generator in pairs:
            assert generator.profile.name == name
            assert generator.seed == 4

    def test_suite_summary(self):
        summary = suite_summary(["gcc", "curl"], epoch_scale=500_000)
        assert set(summary) == {"gcc", "curl"}
        assert summary["gcc"]["taint_percent"] == pytest.approx(0.08, rel=0.5)
        assert summary["curl"]["pages_accessed"] == 600
