"""S-LATCH performance-model tests on hand-constructed epoch streams."""

import pytest

from repro.slatch.costs import SLatchCostModel
from repro.slatch.simulator import HwRates, measure_hw_rates, simulate_slatch
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Epoch, EpochStream
from repro.workloads.generator import WorkloadGenerator

COSTS = SLatchCostModel()


def stream(*epochs):
    return EpochStream.from_epochs(
        "crafted", [Epoch(length=l, tainted_instructions=t) for l, t in epochs]
    )


def profile_with_slowdown(slowdown=5.0):
    import dataclasses

    return dataclasses.replace(get_profile("gcc"), libdft_slowdown=slowdown)


class TestModeAccounting:
    def test_taint_free_stream_runs_all_hardware(self):
        report = simulate_slatch(
            profile_with_slowdown(), stream((10_000, 0), (5_000, 0))
        )
        assert report.sw_instructions == 0
        assert report.hw_instructions == 15_000
        assert report.traps == 0
        assert report.overhead == 0.0

    def test_single_taint_epoch(self):
        # 10k free, 100 tainted, 10k free.
        report = simulate_slatch(
            profile_with_slowdown(),
            stream((10_000, 0), (100, 50), (10_000, 0)),
        )
        # Leading free epoch: hardware.  Tainted epoch: software.  The
        # trailing run stays software for the timeout, then returns.
        assert report.traps == 1
        assert report.returns == 1
        assert report.sw_instructions == 100 + COSTS.timeout_instructions
        assert report.hw_instructions == 20_100 - report.sw_instructions

    def test_short_gap_does_not_return_to_hardware(self):
        # Two taint epochs separated by a free run below the timeout.
        report = simulate_slatch(
            profile_with_slowdown(),
            stream((5_000, 0), (50, 25), (400, 0), (50, 25), (5_000, 0)),
        )
        assert report.traps == 1  # single software period
        assert report.sw_instructions == 50 + 400 + 50 + COSTS.timeout_instructions

    def test_long_gap_costs_a_round_trip(self):
        report = simulate_slatch(
            profile_with_slowdown(),
            stream((5_000, 0), (50, 25), (8_000, 0), (50, 25), (5_000, 0)),
        )
        assert report.traps == 2
        assert report.returns == 2

    def test_overhead_formula(self):
        slowdown = 5.0
        report = simulate_slatch(
            profile_with_slowdown(slowdown),
            stream((10_000, 0), (100, 50), (10_000, 0)),
        )
        expected_sw_cycles = report.sw_instructions * (slowdown - 1.0)
        expected_control = COSTS.trap_cycles + COSTS.return_cycles
        assert report.libdft_cycles == pytest.approx(expected_sw_cycles)
        assert report.control_transfer_cycles == pytest.approx(expected_control)
        assert report.overhead == pytest.approx(
            (expected_sw_cycles + expected_control) / 20_100
        )

    def test_breakdown_fractions_sum_to_one(self):
        report = simulate_slatch(
            profile_with_slowdown(),
            stream((10_000, 0), (100, 50), (10_000, 0)),
            rates=HwRates(0.001, 0.0005),
        )
        assert sum(report.breakdown().values()) == pytest.approx(1.0)
        assert report.fp_check_cycles > 0
        assert report.ctc_miss_cycles > 0

    def test_speedup_vs_libdft(self):
        report = simulate_slatch(
            profile_with_slowdown(5.0), stream((100_000, 0))
        )
        assert report.speedup_vs_libdft == pytest.approx(5.0)

    def test_empty_stream(self):
        report = simulate_slatch(profile_with_slowdown(), stream())
        assert report.overhead == 0.0


class TestRateMeasurement:
    def test_rates_zero_for_clean_workload(self):
        generator = WorkloadGenerator(get_profile("gobmk"))
        trace = generator.access_trace(50_000)
        rates = measure_hw_rates(trace)
        assert rates.fp_per_instruction >= 0.0
        assert rates.ctc_miss_per_instruction >= 0.0

    def test_fp_rate_higher_for_poor_spatial_locality(self):
        astar = measure_hw_rates(
            WorkloadGenerator(get_profile("astar")).access_trace(100_000)
        )
        gobmk = measure_hw_rates(
            WorkloadGenerator(get_profile("gobmk")).access_trace(100_000)
        )
        assert astar.fp_per_instruction > gobmk.fp_per_instruction


class TestEndToEndShape:
    """The Figure 13 story on real generated workloads."""

    def _overhead(self, name, scale=5_000_000):
        profile = get_profile(name)
        generator = WorkloadGenerator(profile)
        report = simulate_slatch(profile, generator.epoch_stream(scale))
        return report

    def test_low_taint_benchmarks_are_cheap(self):
        for name in ("bzip2", "gobmk", "hmmer", "sjeng"):
            assert self._overhead(name).overhead < 0.10, name

    def test_poor_locality_benchmarks_are_expensive(self):
        for name in ("astar", "sphinx", "soplex"):
            assert self._overhead(name).overhead > 1.0, name

    def test_slatch_beats_libdft_everywhere(self):
        for name in ("astar", "bzip2", "apache", "curl", "perlbench"):
            report = self._overhead(name)
            assert report.overhead <= report.libdft_only_overhead + 1e-9, name

    def test_apache_trust_gradient(self):
        overheads = [
            self._overhead(name).overhead
            for name in ("apache", "apache-25", "apache-50", "apache-75")
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_web_clients_get_10x_class_speedups(self):
        assert self._overhead("curl").speedup_vs_libdft > 5
        assert self._overhead("wget").speedup_vs_libdft > 5
