"""Admission edges: token buckets, the in-flight table, verdict order."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve.admission import (
    AdmissionController,
    InFlightTable,
    RetryAdvice,
    Slot,
)
from repro.serve.ratelimit import TokenBucket, backoff_hint_ms
from repro.serve.tenant import TenantLimits, TenantState


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(10.0, 5.0, clock=FakeClock())
        assert bucket.tokens == pytest.approx(5.0)

    def test_burst_exactly_at_capacity_admitted(self):
        # The boundary case: a burst of exactly `capacity` tokens must
        # be admitted in one take, and one more token must not be.
        bucket = TokenBucket(1.0, 64.0, clock=FakeClock())
        assert bucket.try_take(64.0)
        assert bucket.tokens == pytest.approx(0.0)
        assert not bucket.try_take(1e-9)

    def test_over_capacity_never_admissible(self):
        bucket = TokenBucket(100.0, 8.0, clock=FakeClock())
        assert not bucket.admissible(8.5)
        assert bucket.retry_after(8.5) is None

    def test_refill_is_continuous_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 20.0, clock=clock)
        assert bucket.try_take(20.0)
        clock.advance(0.5)
        assert bucket.tokens == pytest.approx(5.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(20.0)  # capped at capacity

    def test_retry_after_prices_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 10.0, clock=clock)
        assert bucket.try_take(10.0)
        assert bucket.retry_after(5.0) == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_take(5.0)

    def test_zero_capacity_tenant_never_admits(self):
        clock = FakeClock()
        bucket = TokenBucket(0.0, 0.0, clock=clock)
        assert not bucket.try_take(1.0)
        clock.advance(1e6)
        assert not bucket.try_take(1.0)
        assert bucket.retry_after(1.0) is None

    def test_zero_rate_positive_burst_is_a_quota(self):
        bucket = TokenBucket(0.0, 3.0, clock=FakeClock())
        assert bucket.try_take(3.0)
        assert not bucket.try_take(1.0)
        assert bucket.retry_after(1.0) is None  # never refills

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)


class TestBackoffHint:
    def test_prices_finite_waits(self):
        assert backoff_hint_ms(0.25, 1000) == 250

    def test_clamps_to_ceiling(self):
        assert backoff_hint_ms(10.0, 1000) == 1000

    def test_floor_for_tiny_waits(self):
        assert backoff_hint_ms(0.00001, 1000) == 1

    def test_never_satisfiable_gets_ceiling(self):
        assert backoff_hint_ms(None, 750) == 750


class TestInFlightTable:
    def test_acquire_until_full(self):
        table = InFlightTable(2)
        a = table.try_acquire("t1", "stream")
        b = table.try_acquire("t2", "stream")
        assert isinstance(a, Slot) and isinstance(b, Slot)
        assert table.full
        assert table.try_acquire("t3", "stream") is None

    def test_release_is_idempotent(self):
        table = InFlightTable(1)
        slot = table.try_acquire("t1", "job")
        assert table.release(slot)
        assert not table.release(slot)  # second release is a no-op
        assert len(table) == 0

    def test_peak_tracks_high_water(self):
        table = InFlightTable(4)
        slots = [table.try_acquire("t", "stream") for _ in range(3)]
        for slot in slots:
            table.release(slot)
        assert table.peak == 3
        assert len(table) == 0

    def test_held_by_counts_per_tenant(self):
        table = InFlightTable(8)
        table.try_acquire("a", "stream")
        table.try_acquire("a", "stream")
        table.try_acquire("b", "stream")
        assert table.held_by("a") == 2
        assert table.held_by("b") == 1
        assert table.held_by("c") == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            InFlightTable(0)


def _tenant(clock, rate=100.0, burst=10.0, max_streams=8):
    return TenantState(
        "t1",
        TenantLimits(rate=rate, burst=burst, max_streams=max_streams),
        MetricsRegistry(),
        clock=clock,
    )


class TestAdmissionController:
    def test_admits_and_charges_one_token(self):
        clock = FakeClock()
        tenant = _tenant(clock)
        controller = AdmissionController(InFlightTable(4))
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, Slot)
        assert tenant.bucket.tokens == pytest.approx(9.0)

    def test_inflight_full_with_all_tenants_idle(self):
        # The table can be exhausted by *held* slots even when every
        # bucket is full — the refusal must be reason="inflight" and
        # must not burn the refused tenant's budget.
        clock = FakeClock()
        tenant = _tenant(clock)
        controller = AdmissionController(
            InFlightTable(1), inflight_backoff_ms=33
        )
        other = _tenant(clock)
        held = controller.admit_request(other, "stream")
        assert isinstance(held, Slot)
        before = tenant.bucket.tokens
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, RetryAdvice)
        assert verdict.reason == "inflight"
        assert verdict.backoff_ms == 33
        assert tenant.bucket.tokens == pytest.approx(before)
        # Releasing the held slot makes the next attempt admit.
        controller.release(held)
        assert isinstance(controller.admit_request(tenant, "stream"), Slot)

    def test_rate_refusal_carries_priced_backoff(self):
        clock = FakeClock()
        tenant = _tenant(clock, rate=10.0, burst=2.0)
        controller = AdmissionController(InFlightTable(8))
        assert isinstance(controller.admit_request(tenant, "stream"), Slot)
        assert isinstance(controller.admit_request(tenant, "stream"), Slot)
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, RetryAdvice)
        assert verdict.reason == "rate"
        assert 1 <= verdict.backoff_ms <= 1000

    def test_zero_capacity_tenant_always_retries_with_ceiling(self):
        clock = FakeClock()
        tenant = _tenant(clock, rate=0.0, burst=0.0)
        controller = AdmissionController(
            InFlightTable(8), max_backoff_ms=500
        )
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, RetryAdvice)
        assert verdict.reason == "rate"
        assert verdict.backoff_ms == 500
        clock.advance(1e6)
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, RetryAdvice)  # still paused

    def test_max_streams_bounds_one_tenant(self):
        clock = FakeClock()
        tenant = _tenant(clock, rate=1e6, burst=1e6, max_streams=2)
        controller = AdmissionController(InFlightTable(8))
        assert isinstance(controller.admit_request(tenant, "stream"), Slot)
        assert isinstance(controller.admit_request(tenant, "stream"), Slot)
        verdict = controller.admit_request(tenant, "stream")
        assert isinstance(verdict, RetryAdvice)
        assert verdict.reason == "streams"

    def test_event_batches_charged_per_event(self):
        clock = FakeClock()
        tenant = _tenant(clock, rate=100.0, burst=64.0)
        controller = AdmissionController(InFlightTable(8))
        assert controller.admit_events(tenant, 64) is None  # exactly burst
        advice = controller.admit_events(tenant, 1)
        assert isinstance(advice, RetryAdvice)
        assert advice.reason == "rate"
        clock.advance(1.0)  # refills 100 -> capped at 64
        assert controller.admit_events(tenant, 64) is None

    def test_empty_batch_is_free(self):
        tenant = _tenant(FakeClock(), burst=0.0, rate=0.0)
        controller = AdmissionController(InFlightTable(8))
        assert controller.admit_events(tenant, 0) is None

    def test_retry_advice_wire_shape(self):
        advice = RetryAdvice("rate", 120)
        assert advice.message() == {
            "type": "retry", "reason": "rate", "backoff_ms": 120,
        }


class TestTenantAccounting:
    def test_rejections_accumulate_stall_seconds(self):
        tenant = _tenant(FakeClock())
        tenant.record_rejection(RetryAdvice("rate", 250))
        tenant.record_rejection(RetryAdvice("inflight", 50))
        assert tenant.rejected["rate"] == 1
        assert tenant.rejected["inflight"] == 1
        assert tenant.stall_seconds == pytest.approx(0.3)

    def test_publish_metrics_lands_in_tenant_namespace(self):
        registry = MetricsRegistry()
        tenant = TenantState(
            "acme", TenantLimits(), registry, clock=FakeClock()
        )
        tenant.admitted = 3
        tenant.events_in = 120
        tenant.publish_metrics()
        snapshot = registry.snapshot()
        assert snapshot.get("serve.tenant.acme.admitted") == 3
        assert snapshot.get("serve.tenant.acme.events") == 120
        assert snapshot.get("serve.tenant.acme.active_streams") == 0

    def test_invalid_tenant_names_rejected(self):
        from repro.serve.tenant import TenantNameError, validate_tenant_name

        for bad in ("", ".hidden", "a b", "x" * 65, "a/b", None, 7):
            with pytest.raises(TenantNameError):
                validate_tenant_name(bad)
        assert validate_tenant_name("ok-1.2_x") == "ok-1.2_x"

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            TenantLimits(rate=-1.0)
        with pytest.raises(ValueError):
            TenantLimits(burst=-0.5)
        with pytest.raises(ValueError):
            TenantLimits(max_streams=-1)
