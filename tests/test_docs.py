"""Documentation tests: every code block in the docs actually runs."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestTutorial:
    def test_all_blocks_execute_in_order(self):
        namespace = {}
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 6
        for index, block in enumerate(blocks):
            try:
                exec(block, namespace)
            except Exception as error:  # pragma: no cover - failure detail
                pytest.fail(f"tutorial block {index} failed: {error}")
        # The S-LATCH walkthrough actually gated execution.
        slatch = namespace["slatch"]
        assert slatch.counters.traps >= 1
        assert slatch.counters.hw_instructions > 0

    def test_tutorial_taint_flows(self):
        namespace = {}
        for block in python_blocks(ROOT / "docs" / "TUTORIAL.md")[:2]:
            exec(block, namespace)
        engine = namespace["engine"]
        assert engine.stats.tainted_fraction > 0
        assert engine.shadow.tainted_byte_count > 0


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        namespace = {}
        exec(blocks[0], namespace)
        assert namespace["engine"].stats.tainted_fraction > 0
        assert namespace["slatch"].counters.total_instructions > 0
