"""Documentation tests: every code block in the docs actually runs."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def run_blocks(path: pathlib.Path, namespace=None):
    """Execute every fenced python block of ``path`` in one namespace."""
    namespace = {} if namespace is None else namespace
    blocks = python_blocks(path)
    assert blocks, f"{path.name} contains no python blocks"
    for index, block in enumerate(blocks):
        try:
            exec(block, namespace)
        except Exception as error:  # pragma: no cover - failure detail
            pytest.fail(f"{path.name} block {index} failed: {error}")
    return namespace


class TestTutorial:
    def test_all_blocks_execute_in_order(self):
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 6
        namespace = run_blocks(ROOT / "docs" / "TUTORIAL.md")
        # The S-LATCH walkthrough actually gated execution.
        slatch = namespace["slatch"]
        assert slatch.counters.traps >= 1
        assert slatch.counters.hw_instructions > 0

    def test_tutorial_taint_flows(self):
        namespace = {}
        for block in python_blocks(ROOT / "docs" / "TUTORIAL.md")[:2]:
            exec(block, namespace)
        engine = namespace["engine"]
        assert engine.stats.tainted_fraction > 0
        assert engine.shadow.tainted_byte_count > 0

    def test_tutorial_observability_section(self):
        namespace = run_blocks(ROOT / "docs" / "TUTORIAL.md")
        snapshot = namespace["snapshot"]
        assert snapshot.get("slatch.traps") >= 1
        assert 0.0 <= snapshot.get("ctc.hit_rate") <= 1.0


class TestReadme:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "README.md")
        assert namespace["engine"].stats.tainted_fraction > 0
        assert namespace["slatch"].counters.total_instructions > 0


class TestRunnerDoc:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "RUNNER.md")
        assert namespace["results"]["chaos:ok-cell"].ok

    def test_catalog_names_exist(self):
        """Job-kind snapshot metrics documented in RUNNER.md are
        actually published by the corresponding executor."""
        from repro.runner import JobSpec, Runner, RunnerConfig

        text = (ROOT / "docs" / "RUNNER.md").read_text()
        # Only catalog *table* rows document snapshot metrics; prose and
        # code blocks also name trace events, which live on the span
        # timeline rather than in any registry.
        documented = set()
        for line in text.splitlines():
            if line.startswith("|"):
                documented.update(re.findall(
                    r"`((?:workload|layout|hlatch|baseline|chaos|runner)"
                    r"\.[a-z_]+(?:\.[a-z_]+)*)`",
                    line,
                ))
        assert "workload.taint_percent" in documented

        runner = Runner(config=RunnerConfig(max_workers=1))
        results = runner.run([
            JobSpec.make("taint_fraction", "wget", epoch_scale=50_000),
            JobSpec.make("page_taint", "wget"),
            JobSpec.make("hlatch", "wget", trace_window=2_000),
            JobSpec.make("chaos", "demo", value=1),
        ])
        published = set(runner.registry.names())
        for result in results.values():
            published.update(result.snapshot.names())
        missing = sorted(documented - published)
        assert not missing, f"documented but never published: {missing}"


class TestPipelineDoc:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "PIPELINE.md")
        # The saturated walkthrough really exercised backpressure...
        assert namespace["saturated"].stats.queue_full_stalls > 0
        # ...and the exact-replay claim held on the measured stream.
        assert namespace["validation"].exact

    def test_doc_names_every_public_symbol(self):
        """The pipeline package's public API is all documented."""
        import repro.pipeline

        text = (ROOT / "docs" / "PIPELINE.md").read_text()
        for name in repro.pipeline.__all__:
            assert name in text, f"PIPELINE.md does not mention {name}"

    def test_env_knob_table_is_complete(self):
        from repro.pipeline import config as pipeline_config

        text = (ROOT / "docs" / "PIPELINE.md").read_text()
        env_names = [
            value
            for key, value in vars(pipeline_config).items()
            if key.startswith("ENV_")
        ]
        assert env_names, "config module must define ENV_* knobs"
        for variable in env_names:
            assert f"`{variable}`" in text, (
                f"PIPELINE.md env table is missing {variable}"
            )


class TestObservability:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "OBSERVABILITY.md")
        snapshot = namespace["snapshot"]
        assert snapshot.get("slatch.traps") >= 1

    def test_catalog_names_exist(self):
        """Every metric named in the catalog tables is published by the
        subsystem the table attributes it to (no doc drift)."""
        from repro import (
            CPU, DIFTEngine, DeviceTable, SLatchSystem, VirtualFile,
            assemble,
        )
        from repro.obs import MetricsRegistry

        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        documented = set(re.findall(r"\| `([a-z_.]+\.[a-z_.]+)` \|", text))
        assert len(documented) >= 50

        source = """
.data
path: .asciiz "in.txt"
buf:  .space 8
.text
_start:
    li r3, 3
    li r4, path
    syscall
    mv r7, r3
    li r3, 1
    mv r4, r7
    li r5, buf
    li r6, 8
    syscall
    li r8, buf
    lbu r9, 0(r8)
    halt
"""
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.txt", b"x" * 8))
        cpu = CPU(assemble(source), devices=devices)
        slatch = SLatchSystem(cpu)
        cpu.run()
        registry = slatch.publish_metrics()

        cpu2 = CPU(assemble(source), devices=DeviceTable())
        engine = DIFTEngine()
        cpu2.attach(engine)
        engine.publish_metrics(registry)

        import numpy as np

        from repro.hlatch import HLatchSystem
        from repro.platch import TwoCoreQueueSimulator
        from repro.slatch import measure_hw_rates, simulate_slatch
        from repro.workloads import WorkloadGenerator, get_profile
        from repro.workloads.trace import EpochStream

        hlatch = HLatchSystem()
        hlatch.access(0x1000, 4)
        hlatch.publish_metrics(registry)

        stream = EpochStream(
            name="s",
            lengths=np.array([10, 10], dtype=np.int64),
            tainted_counts=np.array([0, 5], dtype=np.int64),
        )
        TwoCoreQueueSimulator().run(stream, obs=registry)

        profile = get_profile("wget")
        generator = WorkloadGenerator(profile)
        simulate_slatch(
            profile,
            generator.epoch_stream(50_000),
            measure_hw_rates(generator.access_trace(2_000)),
        ).publish_metrics(registry)
        registry.gauge("workload.tainted_fraction")
        registry.histogram("workload.epoch.taint_free_duration")
        registry.gauge("workload.requests")

        from repro.runner import Runner

        Runner(registry=registry)  # registers runner.* eagerly

        from repro.kernels import publish_metrics

        publish_metrics(registry)  # registers kernels.* (full catalog)

        from repro.trace import (
            columnar_trace_bytes,
            publish_trace_metrics,
            replay_columnar,
        )

        replayed = replay_columnar(
            columnar_trace_bytes(generator.access_trace(2_000)),
            baseline_config=None,
        )
        publish_trace_metrics(registry, replayed, include_timings=True)

        from repro.pipeline import PipelineConfig, StreamingPipeline

        stream_devices = DeviceTable()
        stream_devices.register_file(VirtualFile("in.txt", b"x" * 8))
        stream_cpu = CPU(assemble(source), devices=stream_devices)
        pipeline = StreamingPipeline(
            stream_cpu, config=PipelineConfig(queue_capacity=4)
        )
        stream_cpu.run()
        pipeline.publish_metrics(registry)  # registers pipeline.*

        from repro.serve import TaintServer

        TaintServer(registry=registry)  # registers serve.* gauges

        published = set(registry.names())
        missing = sorted(documented - published)
        assert not missing, f"documented but never published: {missing}"


class TestTraceDoc:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "TRACE.md")
        # The replayed engine really matched the live one...
        assert namespace["steps"] == namespace["cpu"].step_count
        # ...and the sharded/serial bit-identity claim held.
        assert namespace["identical"] is True
        assert namespace["result"].shard_count >= 1
        assert "checksum mismatch" in namespace["caught"]

    def test_doc_names_every_public_symbol(self):
        import repro.trace

        text = (ROOT / "docs" / "TRACE.md").read_text()
        for name in repro.trace.__all__:
            assert name in text, f"TRACE.md does not mention {name}"


class TestService:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "SERVICE.md")
        # The overload walkthrough really did absorb RETRYs, the query
        # answered true on a tainted byte, and the load run was clean.
        assert namespace["result"].retries > 0
        assert namespace["answer"]["tainted"] is True
        assert namespace["report"].clean
        assert namespace["report"].completed == 16

    def test_service_metric_rows_documented(self):
        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for name in (
            "serve.inflight", "serve.retries_sent",
            "serve.tenant.<name>.rejected.rate",
            "serve.tenant.<name>.results",
            "serve.tenant.<name>.bucket_tokens",
        ):
            assert f"`{name}`" in text, f"{name} missing from catalog"


class TestWorkloads:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "WORKLOADS.md")
        # The replay round-trip really was bit-identical and the storm
        # really multiplied taint density.
        assert namespace["replay"].profile.kind == "replay"
        assert namespace["requests"] >= 1
        rows = namespace["rows"]
        assert rows["kv-storm"]["taint_percent"] > \
            rows["kv-cache"]["taint_percent"]

    def test_doc_names_every_engine(self):
        from repro.workloads import SERVICE_SUITE

        text = (ROOT / "docs" / "WORKLOADS.md").read_text()
        for name in SERVICE_SUITE:
            assert f"`{name}`" in text, f"WORKLOADS.md does not list {name}"

    def test_workload_metric_rows_documented(self):
        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        for name in (
            "workload.tainted_fraction",
            "workload.epoch.taint_free_duration",
            "workload.requests",
        ):
            assert f"`{name}`" in text, f"{name} missing from catalog"


class TestKernelsDoc:
    def test_every_block_executes(self):
        namespace = run_blocks(ROOT / "docs" / "KERNELS.md")
        # The observability walkthrough ends with a populated snapshot.
        assert namespace["snapshot"].get("kernels.dispatch.vector") >= 1

    def test_kernel_catalog_documented_in_observability(self):
        """Every metric the kernels registry publishes appears in the
        OBSERVABILITY.md catalog tables, and vice versa."""
        from repro.kernels import kernel_registry

        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        documented = {
            name
            for name in re.findall(r"\| `([a-z_.]+\.[a-z_.]+)` \|", text)
            if name.startswith("kernels.")
        }
        published = {
            metric.name for metric in kernel_registry().metrics()
        }
        assert documented == published

    def test_doc_mentions_every_kernel(self):
        from repro.kernels import KERNEL_NAMES

        text = (ROOT / "docs" / "KERNELS.md").read_text()
        for name in KERNEL_NAMES:
            assert name in text, f"KERNELS.md does not mention {name}"
