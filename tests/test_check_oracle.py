"""The repro.check differential soundness oracle.

Covers the tentpole acceptance criteria: the oracle replays the
committed regression corpus plus a batch of freshly generated seeded
programs across byte-precise DIFT, the core mirror (both clear
disciplines), S-LATCH, H-LATCH, and both kernel replay backends with
zero violations — and the mutation self-test proves the harness can
detect and shrink a planted soundness bug.
"""

import pytest

from repro.check.corpus import DEFAULT_CORPUS, load_corpus, load_program, save_program
from repro.check.generator import CheckProgram, generate_program
from repro.check.mutation import BuggyLatchModule, run_selftest
from repro.check.oracle import (
    check_many,
    check_program,
    run_core_mirror,
    run_reference,
    state_signature,
)
from repro.core.latch import LatchConfig


class TestGenerator:
    def test_deterministic(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    def test_programs_assemble_and_halt(self):
        for seed in range(5):
            cp = generate_program(seed)
            cpu = cp.make_cpu()
            cpu.run(200_000)
            assert cpu.halted

    def test_hazard_coverage_across_seeds(self):
        """The op mix actually emits the hazard families it promises."""
        bodies = "\n".join(
            op for seed in range(40) for op in generate_program(seed).body
        )
        assert "4294967" in bodies      # wrap-region addresses
        assert "sw   r0" in bodies      # taint clears
        assert "syscall" in bodies      # mid-body taint sources

    def test_instruction_count_counts_expanded_pseudos(self):
        cp = generate_program(3)
        assert cp.instruction_count() == len(cp.program().instructions)


class TestOracleCleanOnFixedCode:
    def test_corpus_replays_clean(self):
        programs = load_corpus(DEFAULT_CORPUS)
        assert programs, "committed regression corpus must not be empty"
        report = check_many(programs)
        assert report.ok, "\n".join(str(v) for v in report.violations)

    @pytest.mark.parametrize("seed", range(12))
    def test_fresh_seeds_clean(self, seed):
        report = check_program(generate_program(seed))
        assert report.ok, "\n".join(str(v) for v in report.violations)

    def test_core_mirror_matches_reference(self):
        cp = generate_program(1)
        reference, _ = run_reference(cp)
        mirror = run_core_mirror(cp, defer_clear=True)
        assert state_signature(mirror.engine) == state_signature(reference)


class TestMutationSelfTest:
    def test_planted_bug_detected_and_shrunk(self):
        result = run_selftest()
        assert result.detected, "oracle failed to see the planted off-by-one"
        assert result.report.violations
        assert result.shrunk is not None
        assert result.shrunk_instructions <= 25

    def test_buggy_module_drops_final_domain(self):
        latch = BuggyLatchModule(LatchConfig(domain_size=8))
        latch.update_memory_tags(4, b"\x01" * 8)  # straddles 0..7 / 8..15
        assert latch.ctt.is_domain_tainted(4)
        assert not latch.ctt.is_domain_tainted(8), "mutation must drop it"

    def test_real_module_passes_where_mutant_fails(self):
        result = run_selftest(shrink=False)
        cp = generate_program(result.seed)
        mutant = check_program(cp, paths=("core",), latch_cls=BuggyLatchModule)
        assert not mutant.ok
        real = check_program(cp, paths=("core",))
        assert real.ok, f"real module flagged on seed {result.seed}"


class TestCorpusRoundTrip:
    def test_save_load_identity(self, tmp_path):
        cp = generate_program(11)
        path = save_program(cp, tmp_path, note="round trip")
        loaded = load_program(path)
        assert loaded == cp

    def test_load_corpus_sorted_and_complete(self):
        programs = load_corpus(DEFAULT_CORPUS)
        names = [cp.name for cp in programs]
        assert names == sorted(names)
        assert "wrap-update-straddle" in names
        assert "straddle-domain-store" in names

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(tmp_path / "absent") == []


class TestStreamPath:
    def test_stream_path_runs_both_backends(self):
        from repro.check.oracle import ALL_PATHS

        assert "stream" in ALL_PATHS
        report = check_program(generate_program(2), paths=("stream",))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.runs == 3  # reference + scalar + vector

    def test_env_knobs_reach_the_stream_runs(self, monkeypatch):
        from repro.check.oracle import run_stream

        monkeypatch.setenv("REPRO_PIPELINE_QUEUE_CAPACITY", "4")
        monkeypatch.setenv("REPRO_PIPELINE_DRAIN_BATCH", "64")
        monkeypatch.setenv("REPRO_PIPELINE_MODEL_EPOCH", "1")
        pipeline = run_stream(generate_program(2), backend="scalar")
        assert pipeline.config.queue_capacity == 4
        assert pipeline.config.drain_batch == 64
        # Exact replay still holds under oracle-driven runs.
        assert pipeline.validate_model().exact

    def test_sampling_env_skips_signature_but_not_invariants(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PIPELINE_SAMPLE_RATE", "0.3")
        monkeypatch.setenv("REPRO_PIPELINE_SAMPLE_WINDOW", "8")
        monkeypatch.setenv("REPRO_PIPELINE_SAMPLE_SEED", "5")
        # Sampling legitimately under-approximates the reference: the
        # oracle must not flag the coverage loss as a divergence, but
        # the coarse/precise containment invariant still has to hold.
        report = check_program(generate_program(2), paths=("stream",))
        assert report.ok, "\n".join(str(v) for v in report.violations)

    def test_stream_obs_accumulates_across_runs(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        check_many(
            [generate_program(2), generate_program(3)],
            paths=("stream",),
            stream_obs=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot.get("pipeline.runs") == 4  # 2 programs x 2 backends
        assert snapshot.get("pipeline.instructions") > 0
        assert "pipeline.queue.stall_cycles" in snapshot
        assert "pipeline.model.predicted_stall_cycles" in snapshot


class TestColumnarPath:
    def test_columnar_path_is_registered(self):
        from repro.check.oracle import ALL_PATHS

        assert "columnar" in ALL_PATHS

    def test_columnar_path_clean_on_fixed_code(self):
        report = check_program(generate_program(4), paths=("columnar",))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.runs == 2  # reference + columnar differential

    def test_columnar_path_catches_planted_counter_bug(self):
        # A latch whose CTC stats lie by one: the scalar stack uses the
        # buggy counters while the sharded merge recomputes them from
        # the run algebra, so the differential must flag the mismatch.
        from repro.check.oracle import check_columnar, run_reference
        from repro.core.latch import LatchModule

        class MiscountingLatch(LatchModule):
            def check_memory(self, address, size=1):
                result = super().check_memory(address, size)
                self.ctc.stats.hits += 1  # planted bug
                return result

        cp = generate_program(4)
        engine, trace = run_reference(cp)
        assert trace.addresses, "seed 4 must produce memory accesses"
        violations = check_columnar(
            cp, engine, trace, latch_cls=MiscountingLatch
        )
        assert any(
            v.kind == "columnar-counter-mismatch" for v in violations
        ), [str(v) for v in violations]

    def test_collector_records_write_flags(self):
        from repro.check.oracle import run_reference

        _, trace = run_reference(generate_program(4))
        assert len(trace.writes) == len(trace.addresses)
        assert any(trace.writes) and not all(trace.writes)


class TestCli:
    def test_replay_corpus_exits_zero(self, capsys):
        from repro.check.cli import cli

        assert cli(["replay"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out and "0 violations" in out

    def test_fuzz_small_batch_exits_zero(self, tmp_path, capsys):
        from repro.check.cli import cli

        assert cli([
            "fuzz", "--seeds", "3", "--out", str(tmp_path / "fails")
        ]) == 0
        assert "3 programs" in capsys.readouterr().out

    def test_selftest_exits_zero(self, capsys):
        from repro.check.cli import cli

        assert cli(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "planted bug detected" in out

    def test_fuzz_stats_out_writes_queue_metrics(self, tmp_path, capsys):
        import json

        from repro.check.cli import cli

        stats_path = tmp_path / "artifacts" / "queue-stats.json"
        assert cli([
            "fuzz", "--seeds", "2", "--out", str(tmp_path / "fails"),
            "--stats-out", str(stats_path),
        ]) == 0
        assert "wrote streaming queue metrics" in capsys.readouterr().out
        payload = json.loads(stats_path.read_text())
        assert payload["meta"]["command"] == "fuzz"
        assert payload["meta"]["programs"] == 2
        names = {record["name"] for record in payload["metrics"]}
        assert "pipeline.runs" in names
        assert "pipeline.queue.stall_cycles" in names

    def test_fuzz_paths_flag_restricts_oracle(self, tmp_path, capsys):
        import json

        from repro.check.cli import cli

        stats_path = tmp_path / "stats.json"
        assert cli([
            "fuzz", "--seeds", "2", "--paths", "columnar",
            "--out", str(tmp_path / "fails"),
            "--stats-out", str(stats_path),
        ]) == 0
        payload = json.loads(stats_path.read_text())
        assert payload["meta"]["paths"] == "columnar"
        # No stream runs happened, so no pipeline metrics accumulated.
        names = {record["name"] for record in payload["metrics"]}
        assert "pipeline.runs" not in names

    def test_fuzz_rejects_unknown_path(self, tmp_path):
        from repro.check.cli import cli

        with pytest.raises(SystemExit, match="unknown oracle path"):
            cli(["fuzz", "--seeds", "1", "--paths", "nope",
                 "--out", str(tmp_path / "fails")])

    def test_stats_out_is_written_atomically(self, tmp_path, monkeypatch):
        # The artifact appears via rename: no partial file is ever
        # visible at the published path, and no .tmp residue remains.
        import json
        from pathlib import Path

        from repro.check import cli as check_cli

        stats_path = tmp_path / "stats.json"
        observed = []
        original = check_cli.os.replace

        def spying_replace(src, dst):
            observed.append((Path(src).name, Path(dst).name))
            return original(src, dst)

        monkeypatch.setattr(check_cli.os, "replace", spying_replace)
        assert check_cli.cli([
            "fuzz", "--seeds", "1", "--paths", "kernels",
            "--out", str(tmp_path / "fails"),
            "--stats-out", str(stats_path),
        ]) == 0
        assert observed == [("stats.json.tmp", "stats.json")]
        assert not stats_path.with_name("stats.json.tmp").exists()
        json.loads(stats_path.read_text())  # complete, parseable artifact
