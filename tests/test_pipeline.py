"""Streaming pipeline differential tests: decoupled but lossless.

The acceptance bar for ``repro.pipeline``: the streaming path must end
with a final taint state *byte-identical* to an always-on DIFT tracker,
for every scenario, both gating backends, and adversarial queue shapes.
"""

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.policy import leak_detection_policy
from repro.pipeline import PipelineConfig, StreamingPipeline
from repro.platch.functional import PLatchSystem
from repro.workloads import attacks, programs

SCENARIOS = [
    ("file-filter", lambda: programs.file_filter(), None),
    ("checksum", lambda: programs.checksum(), None),
    ("cipher", lambda: programs.substitution_cipher(), None),
    ("echo", lambda: programs.echo_server(), None),
    ("phased", lambda: programs.phased_compute(), None),
    ("overflow", lambda: attacks.buffer_overflow(hijack=True), None),
    ("overflow-benign", lambda: attacks.buffer_overflow(hijack=False), None),
    ("leak", lambda: attacks.data_leak(leak=True), leak_detection_policy),
]

BACKENDS = ["scalar", "vector"]

#: (queue_capacity, gate_batch) shapes that stress distinct regimes:
#: deep queue + backend-default batching, shallow queue + small batches,
#: and a queue *smaller* than the gate batch (mid-batch drains).
QUEUE_SHAPES = [(256, None), (8, 4), (4, 32)]


def run_reference(build, policy_factory):
    scenario = build()
    cpu = scenario.make_cpu()
    engine = DIFTEngine(policy_factory() if policy_factory else None)
    cpu.attach(engine)
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return engine


def run_pipeline(build, policy_factory=None, **config_kwargs):
    scenario = build()
    cpu = scenario.make_cpu()
    pipeline = StreamingPipeline(
        cpu,
        policy=policy_factory() if policy_factory else None,
        config=PipelineConfig(**config_kwargs),
    )
    try:
        cpu.run(300_000)
    except Exception:
        pass
    pipeline.finish()
    return pipeline


def signature(engine):
    return (
        [(alert.kind, alert.pc) for alert in engine.alerts],
        list(engine.shadow.iter_tainted_bytes()),
    )


@pytest.mark.parametrize(
    "name,build,policy", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
@pytest.mark.parametrize("backend", BACKENDS)
def test_streaming_matches_always_on_reference(name, build, policy, backend):
    reference = run_reference(build, policy)
    pipeline = run_pipeline(build, policy, backend=backend)
    assert signature(pipeline.engine) == signature(reference)


@pytest.mark.parametrize(
    "name,build,policy",
    [SCENARIOS[0], SCENARIOS[3], SCENARIOS[5]],
    ids=["file-filter", "echo", "overflow"],
)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "queue_capacity,gate_batch", QUEUE_SHAPES,
    ids=[f"q{q}b{b}" for q, b in QUEUE_SHAPES],
)
def test_queue_shapes_stay_lossless(
    name, build, policy, backend, queue_capacity, gate_batch
):
    reference = run_reference(build, policy)
    pipeline = run_pipeline(
        build, policy,
        backend=backend,
        queue_capacity=queue_capacity,
        gate_batch=gate_batch,
    )
    assert signature(pipeline.engine) == signature(reference)


@pytest.mark.parametrize(
    "name,build,policy", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_backends_make_identical_admission_decisions(name, build, policy):
    """Scalar and vector gating agree event-for-event, not just finally."""
    scalar = run_pipeline(build, policy, backend="scalar")
    vector = run_pipeline(build, policy, backend="vector")
    assert scalar.stats.enqueued == vector.stats.enqueued
    assert scalar.stats.suppressed == vector.stats.suppressed
    assert scalar.stats.control_events == vector.stats.control_events
    assert signature(scalar.engine) == signature(vector.engine)


def test_gate_suppresses_the_clean_majority():
    pipeline = run_pipeline(
        lambda: programs.phased_compute(clean_iterations=1500), None
    )
    assert pipeline.stats.enqueue_fraction < 0.4
    assert pipeline.stats.drained == pipeline.stats.enqueued


def test_frozen_index_invalidated_by_coarse_tag_writes():
    """The vector gate's frozen CTT view must not outlive a tag write."""
    pipeline = run_pipeline(lambda: programs.file_filter(), None,
                            backend="vector")
    gate = pipeline.gate
    index = gate._frozen_index()
    assert gate._ctt_index is index
    pipeline.latch.update_memory_tags(0x9000, b"\x01\x01")
    pipeline.gate.invalidate_index()  # what the tag-write hook does
    assert gate._ctt_index is None
    assert gate._frozen_index() is not index


def test_wrapper_is_bit_identical_to_raw_pipeline():
    """PLatchSystem == StreamingPipeline(scalar, gate_batch=1) exactly."""
    build = lambda: programs.echo_server()
    wrapped_cpu = build().make_cpu()
    wrapped = PLatchSystem(wrapped_cpu, queue_capacity=32, drain_batch=8)
    wrapped_cpu.run(300_000)
    wrapped.drain_all()

    pipeline = run_pipeline(
        build, None,
        queue_capacity=32, drain_batch=8, gate_batch=1, backend="scalar",
    )
    assert signature(wrapped.engine) == signature(pipeline.engine)
    assert wrapped.stats.enqueued == pipeline.stats.enqueued
    assert wrapped.stats.queue_full_stalls == pipeline.stats.queue_full_stalls
    counters = wrapped.counters
    assert counters.enqueued == pipeline.stats.enqueued
    assert counters.drained == pipeline.stats.drained


def test_publish_metrics_exposes_pipeline_series():
    pipeline = run_pipeline(lambda: programs.file_filter(), None)
    snapshot = pipeline.snapshot()
    assert snapshot.get("pipeline.instructions") == pipeline.stats.instructions
    assert snapshot.get("pipeline.events.enqueued") == pipeline.stats.enqueued
    assert snapshot.get("pipeline.queue.stalls") == (
        pipeline.stats.queue_full_stalls
    )
    assert snapshot.get("pipeline.enqueue_frac") == pytest.approx(
        pipeline.stats.enqueue_fraction
    )
    # The downstream stages publish into the same registry.
    assert snapshot.get("dift.instructions") == pipeline.stats.drained
    assert "ctc.hit_rate" in snapshot
