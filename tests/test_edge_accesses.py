"""Zero-length and page-wrapping accesses, memory → LATCH, both backends.

The machine's :class:`~repro.machine.memory.PagedMemory` wraps at the
top of the 32-bit space and accepts zero-length transfers; the coarse
structures must agree on both conventions, and the scalar and vector
kernel backends must produce identical flags *and* counters for them.
"""

import numpy as np
import pytest

from repro.core.latch import LatchConfig, LatchModule
from repro.dift.tags import ShadowMemory
from repro.kernels.replay import replay_check_memory
from repro.machine.memory import PagedMemory

_TOP = 0xFFFF_FFFF


class TestMemoryEdges:
    def test_zero_length_read_and_write(self):
        memory = PagedMemory()
        assert memory.read_bytes(0x5000, 0) == b""
        memory.write_bytes(0x5000, b"")
        assert memory.resident_pages == 0  # no page materialised

    def test_write_wrapping_address_space(self):
        memory = PagedMemory()
        memory.write_bytes(_TOP - 1, b"wrap")
        assert memory.read_bytes(_TOP - 1, 4) == b"wrap"
        assert memory.read_bytes(0, 2) == b"ap"

    def test_read_wrapping_address_space(self):
        memory = PagedMemory()
        memory.write_bytes(0, b"lo")
        memory.write_bytes(_TOP, b"x")
        assert memory.read_bytes(_TOP, 3) == b"xlo"


class TestLatchEdges:
    @pytest.mark.parametrize("use_tlb", [True, False])
    def test_zero_length_check_probes_one_byte(self, use_tlb):
        # The scalar path floors sizes at one byte: a zero-length access
        # still consults its domain (matching effective_sizes()).
        latch = LatchModule(LatchConfig(use_tlb_bits=use_tlb))
        latch.update_memory_tags(0x1000, b"\x01")
        assert latch.check_memory(0x1000, 0).coarse_tainted
        assert not latch.check_memory(0x9000, 0).coarse_tainted

    def test_zero_length_update_is_a_no_op(self):
        latch = LatchModule()
        shadow = ShadowMemory()
        latch.update_memory_tags(0x1000, b"")
        assert not latch.check_memory(0x1000, 1).coarse_tainted
        latch.check_invariants(shadow)

    @pytest.mark.parametrize("use_tlb", [True, False])
    def test_page_wrapping_check_sees_both_sides(self, use_tlb):
        latch = LatchModule(LatchConfig(use_tlb_bits=use_tlb))
        shadow = ShadowMemory()
        latch.update_memory_tags(0x0, b"\x01")
        shadow.set(0x0, 1)
        assert latch.check_memory(_TOP - 1, 4).coarse_tainted
        latch.check_invariants(shadow)


class TestBackendAgreementOnEdges:
    """Scalar check_memory loop vs the vector replay kernel."""

    EDGE_ACCESSES = [
        (0x1000, 0),          # zero length, tainted domain
        (0x9000, 0),          # zero length, cold page
        (_TOP - 1, 4),        # wraps the address space
        (0xFFFF_F800, 0x900), # wraps at page-domain granularity
        (0x0FFE, 4),          # ordinary page straddle
        (0x103E, 4),          # domain straddle
        (_TOP, 1),            # last byte
        (0x0, 1),             # first byte
    ]

    def _loaded_shadow(self):
        shadow = ShadowMemory()
        for address in (0x0, 0x1000, _TOP - 1):
            shadow.set(address, 1)
        return shadow

    @pytest.mark.parametrize("use_tlb", [True, False])
    def test_flags_and_counters_identical(self, use_tlb):
        shadow = self._loaded_shadow()
        config = LatchConfig(ctc_entries=4, tlb_entries=4,
                             use_tlb_bits=use_tlb)

        scalar = LatchModule(config)
        scalar.bulk_load_from_shadow(shadow)
        scalar_flags = [
            scalar.check_memory(address, size).coarse_tainted
            for address, size in self.EDGE_ACCESSES
        ]

        vector = LatchModule(config)
        vector.bulk_load_from_shadow(shadow)
        addresses = np.array([a for a, _ in self.EDGE_ACCESSES])
        sizes = np.array([s for _, s in self.EDGE_ACCESSES])
        vector_flags = replay_check_memory(vector, addresses, sizes)

        assert list(vector_flags) == scalar_flags
        assert vector.stats == scalar.stats
        assert vector.ctc.stats == scalar.ctc.stats
        if use_tlb:
            assert vector.tlb_bits.tlb.stats == scalar.tlb_bits.tlb.stats
            assert vector.tlb_bits.checks == scalar.tlb_bits.checks
            assert vector.tlb_bits.hot_checks == scalar.tlb_bits.hot_checks

    @pytest.mark.parametrize("use_tlb", [True, False])
    def test_every_tainted_byte_flagged_on_both_backends(self, use_tlb):
        shadow = self._loaded_shadow()
        config = LatchConfig(use_tlb_bits=use_tlb)
        for backend in ("scalar", "vector"):
            latch = LatchModule(config)
            latch.bulk_load_from_shadow(shadow)
            for byte in shadow.iter_tainted_bytes():
                if backend == "scalar":
                    flag = latch.check_memory(byte, 1).coarse_tainted
                else:
                    flag = bool(
                        replay_check_memory(latch, [byte], [1])[0]
                    )
                assert flag, f"{backend} missed byte {byte:#x}"
