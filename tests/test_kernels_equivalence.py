"""Differential conformance harness for :mod:`repro.kernels`.

The scalar per-access loops are the executable specification; the
vector backend is required to reproduce their published counters *byte
for byte* — every equivalence assertion here compares serialised
:class:`~repro.obs.StatsSnapshot` JSON (or exact numpy arrays), never
tolerances.  Hypothesis drives adversarial windows at the shapes the
kernels special-case: empty windows, single-access windows, operands
straddling domain/page/line boundaries, and all-tainted / taint-free
taint layouts, across small and paper-scale LATCH geometries.

The suite-level test at the bottom replays the Table 1–4/6/7 runner
suites at tiny scale under both ``REPRO_KERNEL_BACKEND`` settings and
asserts identical job snapshots — the acceptance criterion the CI tier
enforces.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.temporal import epoch_duration_profile
from repro.core.latch import LatchConfig
from repro.hlatch.baseline import run_baseline
from repro.hlatch.system import HLatchSystem, run_hlatch
from repro.hlatch.taint_cache import (
    CONVENTIONAL_TAINT_CACHE,
    HLATCH_TAINT_CACHE,
)
from repro.kernels import (
    BACKEND_ENV_VAR,
    epoch_stream_from_trace,
    replay_hlatch_window,
    resolve_backend,
)
from repro.runner.specs import suite_jobs
from repro.runner.worker import execute_job
from repro.slatch.simulator import measure_hw_rates
from repro.workloads.suites import EXPERIMENT_SUITES
from repro.workloads.trace import AccessTrace, EpochStream, TaintLayout

#: Address space exercised by the strategies: four pages.
SPAN = 4 * 4096

#: Addresses the kernels treat specially — the last/first byte of a
#: domain (8/64/128), a CTT word span (256/2048/4096), and a page.
BOUNDARIES = (
    0, 7, 8, 63, 64, 127, 128, 255, 256, 2047, 2048,
    4095, 4096, 8191, 8192, SPAN - 8,
)

# domain_size 128 is the largest DomainGeometry admits at 4 KiB pages
# (one CTT word then spans exactly one page — the degenerate TLB case).
LATCH_CONFIGS = st.builds(
    LatchConfig,
    domain_size=st.sampled_from([8, 64, 128]),
    ctc_entries=st.sampled_from([1, 2, 16]),
    tlb_entries=st.sampled_from([1, 2, 128]),
    use_tlb_bits=st.booleans(),
)

TCACHE_CONFIGS = st.sampled_from([HLATCH_TAINT_CACHE, CONVENTIONAL_TAINT_CACHE])


def _merge_extents(extents):
    """Canonicalise to the sorted, non-overlapping layout invariant."""
    merged = []
    for start, length in sorted(extents):
        if merged and start <= merged[-1][0] + merged[-1][1]:
            prev_start, prev_length = merged[-1]
            merged[-1] = (
                prev_start, max(prev_length, start + length - prev_start)
            )
        else:
            merged.append((start, length))
    return [extent for extent in merged if extent[1] > 0]


#: Taint layouts including both extremes the issue calls out.
EXTENTS = st.one_of(
    st.just([]),                # taint-free extreme
    st.just([(0, SPAN)]),       # all-tainted extreme
    st.lists(
        st.tuples(st.integers(0, SPAN - 1), st.integers(1, 512)),
        max_size=6,
    ).map(_merge_extents),
)


@st.composite
def windows(draw):
    """An adversarial :class:`AccessTrace` window."""
    n = draw(st.integers(min_value=0, max_value=40))
    address = st.one_of(
        st.sampled_from(BOUNDARIES), st.integers(0, SPAN - 8)
    )
    addresses = np.array(
        draw(st.lists(address, min_size=n, max_size=n)), dtype=np.int64
    )
    layout = TaintLayout(extents=list(draw(EXTENTS)))
    return AccessTrace(
        name="hyp",
        addresses=addresses,
        # size 0 exercises the max(size, 1) floor; 8 straddles domains.
        sizes=np.array(
            draw(st.lists(st.sampled_from([0, 1, 2, 4, 8]),
                          min_size=n, max_size=n)),
            dtype=np.uint8,
        ),
        is_write=np.array(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        ),
        tainted=layout.bytes_tainted(addresses),
        gap_before=np.array(
            draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        active_epoch=np.array(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        ),
        layout=layout,
    )


def _hlatch_snapshot(trace, latch_config, tcache_config, backend):
    """Replay a window through a fresh stack; freeze its counters."""
    system = HLatchSystem(latch_config, tcache_config)
    system.load_taint(trace.layout)
    if backend == "vector":
        replay_hlatch_window(
            system, trace.addresses, trace.sizes, trace.is_write
        )
    else:
        for index in range(trace.access_count):
            system.access(
                int(trace.addresses[index]),
                int(trace.sizes[index]),
                bool(trace.is_write[index]),
            )
    return system.snapshot()


def assert_window_equivalent(
    trace,
    latch_config=None,
    tcache_config=HLATCH_TAINT_CACHE,
):
    """The core oracle: scalar and vector snapshots are byte-identical."""
    latch_config = latch_config or LatchConfig()
    scalar = _hlatch_snapshot(trace, latch_config, tcache_config, "scalar")
    vector = _hlatch_snapshot(trace, latch_config, tcache_config, "vector")
    assert scalar.to_json() == vector.to_json()


def _trace(addresses, sizes=None, writes=None, extents=()):
    n = len(addresses)
    layout = TaintLayout(extents=list(extents))
    addresses = np.array(addresses, dtype=np.int64)
    return AccessTrace(
        name="edge",
        addresses=addresses,
        sizes=np.array(
            sizes if sizes is not None else [4] * n, dtype=np.uint8
        ),
        is_write=np.array(
            writes if writes is not None else [False] * n, dtype=bool
        ),
        tainted=layout.bytes_tainted(addresses),
        gap_before=np.zeros(n, dtype=np.int64),
        active_epoch=np.zeros(n, dtype=bool),
        layout=layout,
    )


class TestHLatchEquivalence:
    """Vector replay of the full H-LATCH stack matches the scalar loop."""

    @settings(max_examples=60, deadline=None)
    @given(trace=windows(), latch_config=LATCH_CONFIGS,
           tcache_config=TCACHE_CONFIGS)
    def test_snapshots_byte_identical(
        self, trace, latch_config, tcache_config
    ):
        assert_window_equivalent(trace, latch_config, tcache_config)

    def test_run_hlatch_backend_switch(self):
        trace = _trace(
            [0, 64, 4095, 8192, 64, 0], sizes=[4, 8, 4, 1, 2, 0],
            extents=[(32, 64), (4090, 16)],
        )
        scalar = run_hlatch(trace, backend="scalar")
        vector = run_hlatch(trace, backend="vector")
        assert scalar == vector


class TestEdgeWindows:
    """The window shapes the kernels special-case, pinned explicitly."""

    def test_empty_window(self):
        assert_window_equivalent(_trace([], extents=[(0, 128)]))

    def test_single_access(self):
        assert_window_equivalent(_trace([100], sizes=[4], extents=[(96, 8)]))

    def test_single_access_no_taint(self):
        assert_window_equivalent(_trace([100], sizes=[4]))

    def test_domain_straddling_operands(self):
        # Last byte of a domain, a page, and a tcache line; each operand
        # spills into the next structure.
        trace = _trace(
            [63, 4095, 15, 62, 4094], sizes=[2, 4, 2, 8, 8],
            extents=[(64, 1), (4096, 1)],
        )
        assert_window_equivalent(trace)

    def test_all_tainted_layout(self):
        trace = _trace(
            [0, 64, 128, 4096, 8192, 64], extents=[(0, SPAN)],
        )
        assert_window_equivalent(trace)

    def test_taint_free_layout(self):
        trace = _trace([0, 64, 128, 4096, 8192, 64])
        assert_window_equivalent(trace)

    def test_tlb_disabled(self):
        trace = _trace([0, 64, 4095], extents=[(0, 256)])
        assert_window_equivalent(
            trace, LatchConfig(use_tlb_bits=False)
        )

    def test_tiny_structures_evict(self):
        # One-entry CTC and TLB: every structure thrashes.
        trace = _trace(
            [0, 8192, 0, 8192, 4096, 0], extents=[(0, 16), (8192, 16)],
        )
        assert_window_equivalent(
            trace, LatchConfig(ctc_entries=1, tlb_entries=1)
        )


class TestConsumerEquivalence:
    """Every backend-routed consumer API agrees across backends."""

    @settings(max_examples=40, deadline=None)
    @given(trace=windows())
    def test_baseline_reports_equal(self, trace):
        assert run_baseline(trace, backend="scalar") == run_baseline(
            trace, backend="vector"
        )

    @settings(max_examples=40, deadline=None)
    @given(trace=windows(), latch_config=LATCH_CONFIGS)
    def test_hw_rates_equal(self, trace, latch_config):
        scalar = measure_hw_rates(trace, latch_config, backend="scalar")
        vector = measure_hw_rates(trace, latch_config, backend="vector")
        assert scalar == vector

    @settings(max_examples=40, deadline=None)
    @given(trace=windows())
    def test_epoch_stream_from_trace_equal(self, trace):
        scalar = epoch_stream_from_trace(trace, backend="scalar")
        vector = epoch_stream_from_trace(trace, backend="vector")
        assert np.array_equal(scalar.lengths, vector.lengths)
        assert np.array_equal(scalar.tainted_counts, vector.tainted_counts)

    @settings(max_examples=40, deadline=None)
    @given(
        epochs=st.lists(
            st.tuples(st.integers(1, 2_000_000), st.booleans()),
            max_size=30,
        )
    )
    def test_epoch_profile_floats_bit_identical(self, epochs):
        stream = EpochStream(
            name="hyp",
            lengths=np.array([l for l, _ in epochs], dtype=np.int64),
            tainted_counts=np.array(
                [l if t else 0 for l, t in epochs], dtype=np.int64
            ),
        )
        scalar = epoch_duration_profile(stream, backend="scalar")
        vector = epoch_duration_profile(stream, backend="vector")
        # json round-trip compares the exact float bit patterns.
        assert json.dumps(scalar) == json.dumps(vector)

    @settings(max_examples=40, deadline=None)
    @given(
        extents=st.lists(
            # length 0 is legal in a layout and has its own semantics.
            st.tuples(st.integers(0, SPAN - 1), st.integers(0, 512)),
            max_size=8,
        ),
        domain_size=st.sampled_from([8, 64, 256, 4096]),
    )
    def test_layout_domains_and_pages_equal(self, extents, domain_size):
        layout = TaintLayout(extents=extents)
        assert np.array_equal(
            layout.tainted_domains(domain_size, backend="scalar"),
            layout.tainted_domains(domain_size, backend="vector"),
        )
        assert layout.tainted_pages(backend="scalar") == layout.tainted_pages(
            backend="vector"
        )


class TestBackendResolution:
    """Precedence: explicit argument > environment > package default."""

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "vector"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend(None) == "scalar"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend("vector") == "vector"

    def test_auto_defers(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        assert resolve_backend("auto") == "scalar"

    def test_invalid_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "simd")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            resolve_backend(None)

    def test_invalid_argument_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")


#: Tiny scales keep the whole six-suite sweep in CI-smoke territory.
SUITE_EPOCH_SCALE = 20_000
SUITE_TRACE_WINDOW = 1_500


def _suite_snapshots(suite, monkeypatch, backend):
    """Execute a suite's first two workloads under one backend."""
    names = EXPERIMENT_SUITES[suite][0][1][:2]
    monkeypatch.setenv(BACKEND_ENV_VAR, backend)
    snapshots = {}
    for spec in suite_jobs(
        suite,
        epoch_scale=SUITE_EPOCH_SCALE,
        trace_window=SUITE_TRACE_WINDOW,
        benchmarks=names,
    ):
        result = execute_job({"spec": spec.to_dict()})
        snapshots[spec.job_id] = result["snapshot"]
    return snapshots


@pytest.mark.parametrize(
    "suite", ["table1", "table2", "table3", "table4", "table6", "table7"]
)
def test_table_suite_snapshots_backend_independent(suite, monkeypatch):
    """The acceptance criterion: every table suite's job snapshots are
    identical whichever backend ``REPRO_KERNEL_BACKEND`` selects."""
    scalar = _suite_snapshots(suite, monkeypatch, "scalar")
    vector = _suite_snapshots(suite, monkeypatch, "vector")
    assert scalar.keys() == vector.keys()
    for job_id in scalar:
        assert json.dumps(scalar[job_id], sort_keys=True) == json.dumps(
            vector[job_id], sort_keys=True
        ), f"{suite}:{job_id} diverged between backends"
