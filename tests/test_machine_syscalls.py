"""Syscall-layer tests: I/O semantics and the input/output event stream."""

from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import (
    DeviceTable,
    ListeningSocket,
    VirtualFile,
    VirtualSocket,
)
from repro.machine.events import Observer


class Recorder(Observer):
    def __init__(self):
        self.inputs = []
        self.outputs = []

    def on_input(self, event):
        self.inputs.append(event)

    def on_output(self, event):
        self.outputs.append(event)


def run(source, devices=None, listener=None, max_steps=50_000):
    cpu = CPU(assemble(source), devices=devices)
    if listener is not None:
        cpu.syscalls.register_listener(listener, listen_id=1)
    recorder = Recorder()
    cpu.attach(recorder)
    cpu.run(max_steps)
    return cpu, recorder


class TestFileIO:
    SOURCE = """
    .data
path: .asciiz "in.bin"
buf:  .space 32
    .text
_start:
    li r3, 3
    li r4, path
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, buf
    li r6, 32
    syscall
    mv r11, r3
    halt
"""

    def test_read_delivers_bytes_and_event(self):
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.bin", b"payload!"))
        cpu, recorder = run(self.SOURCE, devices)
        assert cpu.registers[11] == 8
        assert len(recorder.inputs) == 1
        event = recorder.inputs[0]
        assert event.data == b"payload!"
        assert event.source_kind == "file"
        assert event.tainted_hint

    def test_untainted_file_hint(self):
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.bin", b"ok", tainted=False))
        cpu, recorder = run(self.SOURCE, devices)
        assert not recorder.inputs[0].tainted_hint

    def test_open_missing_file_returns_negative(self):
        cpu, _ = run(self.SOURCE, DeviceTable())
        # open failed, read on bad fd also fails
        assert cpu.registers[11] & 0x8000_0000  # -1 as unsigned

    def test_read_at_eof_returns_zero(self):
        devices = DeviceTable()
        devices.register_file(VirtualFile("in.bin", b""))
        cpu, recorder = run(self.SOURCE, devices)
        assert cpu.registers[11] == 0
        assert recorder.inputs == []

    def test_write_to_console(self):
        source = """
        .data
msg: .ascii "hi there"
        .text
_start:
    li r3, 2
    li r4, 0
    li r5, msg
    li r6, 8
    syscall
    halt
"""
        cpu, recorder = run(source)
        assert bytes(cpu.console) == b"hi there"
        assert recorder.outputs[0].sink_kind == "console"

    def test_write_to_file(self):
        source = """
        .data
path: .asciiz "out.bin"
msg:  .ascii "data"
        .text
_start:
    li r3, 3
    li r4, path
    syscall
    mv r10, r3
    li r3, 2
    mv r4, r10
    li r5, msg
    li r6, 4
    syscall
    halt
"""
        devices = DeviceTable()
        out = VirtualFile("out.bin", b"", tainted=False)
        devices.register_file(out)
        run(source, devices)
        assert bytes(out.written) == b"data"


class TestSockets:
    SOURCE = """
    .data
buf: .space 64
    .text
_start:
    li r3, 5
    li r4, 1
    syscall
    mv r10, r3
    li r3, 6
    mv r4, r10
    syscall
    mv r11, r3
    li r3, 7
    mv r4, r11
    li r5, buf
    li r6, 64
    syscall
    mv r12, r3
    li r3, 8
    mv r4, r11
    li r5, buf
    mv r6, r12
    syscall
    halt
"""

    def test_accept_recv_send(self):
        connection = VirtualSocket(peer="client", inbound=[b"request"])
        listener = ListeningSocket(name="svc", pending=[connection])
        cpu, recorder = run(self.SOURCE, DeviceTable(), listener)
        assert cpu.registers[12] == 7
        assert recorder.inputs[0].source_kind == "socket"
        assert recorder.inputs[0].tainted_hint  # untrusted by default
        assert connection.sent == [b"request"]

    def test_trusted_connection_hint(self):
        connection = VirtualSocket(peer="lan", inbound=[b"x"], trusted=True)
        listener = ListeningSocket(name="svc", pending=[connection])
        _, recorder = run(self.SOURCE, DeviceTable(), listener)
        assert not recorder.inputs[0].tainted_hint

    def test_accept_with_empty_backlog_returns_negative(self):
        listener = ListeningSocket(name="svc", pending=[])
        cpu, _ = run(self.SOURCE, DeviceTable(), listener)
        assert cpu.registers[11] & 0x8000_0000

    def test_unknown_listener_id(self):
        source = "li r3, 5\nli r4, 9\nsyscall\nmv r10, r3\nhalt"
        cpu, _ = run(source)
        assert cpu.registers[10] & 0x8000_0000


class TestMiscSyscalls:
    def test_rand_deterministic(self):
        source = "li r3, 9\nsyscall\nmv r10, r3\nli r3, 9\nsyscall\nmv r11, r3\nhalt"
        cpu1, _ = run(source)
        cpu2, _ = run(source)
        assert cpu1.registers[10] == cpu2.registers[10]
        assert cpu1.registers[10] != cpu1.registers[11]

    def test_gettime_returns_step_count(self):
        source = "nop\nnop\nli r3, 10\nsyscall\nmv r10, r3\nhalt"
        cpu, _ = run(source)
        assert cpu.registers[10] == 4  # nop, nop, li(2 insns) committed before

    def test_exit_sets_code_and_halts(self):
        source = "li r3, 0\nli r4, 99\nsyscall\nnop"
        cpu, _ = run(source)
        assert cpu.halted
        assert cpu.exit_code == 99

    def test_close_syscall(self):
        source = """
    .data
p: .asciiz "f"
    .text
_start:
    li r3, 3
    li r4, p
    syscall
    mv r5, r3
    li r3, 4
    mv r4, r5
    syscall
    mv r10, r3
    li r3, 4
    mv r4, r5
    syscall
    mv r11, r3
    halt
"""
        devices = DeviceTable()
        devices.register_file(VirtualFile("f", b""))
        cpu, _ = run(source, devices)
        assert cpu.registers[10] == 0
        assert cpu.registers[11] & 0x8000_0000  # double close fails

    def test_unknown_syscall_number(self):
        cpu, _ = run("li r3, 77\nsyscall\nmv r10, r3\nhalt")
        assert cpu.registers[10] & 0x8000_0000
