"""Timeout-policy tests: fixed, adaptive, and correctness preservation."""

import dataclasses

import pytest

from repro.dift.engine import DIFTEngine
from repro.slatch.controller import SLatchSystem
from repro.slatch.costs import SLatchCostModel
from repro.slatch.timeout import AdaptiveTimeout, FixedTimeout
from repro.workloads.programs import echo_server, file_filter


class TestFixedTimeout:
    def test_constant_threshold(self):
        policy = FixedTimeout(500)
        assert policy.threshold() == 500
        policy.on_retrap(3)
        assert policy.threshold() == 500


class TestAdaptiveTimeout:
    def test_quick_retrap_doubles(self):
        policy = AdaptiveTimeout(initial=1000)
        policy.on_retrap(hw_instructions=50)
        assert policy.threshold() == 2000
        assert policy.increases == 1

    def test_long_span_halves(self):
        policy = AdaptiveTimeout(initial=1000)
        policy.on_retrap(hw_instructions=500_000)
        assert policy.threshold() == 500
        assert policy.decreases == 1

    def test_medium_span_unchanged(self):
        policy = AdaptiveTimeout(initial=1000)
        policy.on_retrap(hw_instructions=50_000)
        assert policy.threshold() == 1000

    def test_clamped_at_bounds(self):
        policy = AdaptiveTimeout(initial=1000, minimum=500, maximum=4000)
        for _ in range(10):
            policy.on_retrap(10)
        assert policy.threshold() == 4000
        for _ in range(10):
            policy.on_retrap(10**9)
        assert policy.threshold() == 500

    def test_reset(self):
        policy = AdaptiveTimeout(initial=1000)
        policy.on_retrap(10)
        policy.reset()
        assert policy.threshold() == 1000
        assert policy.increases == 0

    def test_initial_must_be_in_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveTimeout(initial=10, minimum=100)

    def test_minimum_below_one_rejected(self):
        # A zero floor is a trap: 0 * 2 == 0, so once the threshold
        # decays to zero it can never double back up.
        with pytest.raises(ValueError):
            AdaptiveTimeout(initial=1000, minimum=0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(initial=1000, minimum=-5)

    def test_decay_floors_at_one(self):
        policy = AdaptiveTimeout(initial=4, minimum=1, maximum=4000)
        for _ in range(5):
            policy.on_retrap(10**9)
        assert policy.threshold() == 1
        # Halving an already-floored threshold is not a decrease...
        assert policy.decreases == 2  # 4 -> 2 -> 1
        # ...and the policy can still recover by doubling.
        policy.on_retrap(10)
        assert policy.threshold() == 2

    def test_reset_restores_exact_initial_state(self):
        policy = AdaptiveTimeout(initial=300, minimum=10, maximum=4000)
        policy.on_retrap(10)       # double
        policy.on_retrap(10**9)    # halve
        policy.reset()
        assert policy.threshold() == 300
        assert policy.increases == 0
        assert policy.decreases == 0
        # Behaviour after reset matches a fresh policy step for step.
        fresh = AdaptiveTimeout(initial=300, minimum=10, maximum=4000)
        for span in (10, 10, 10**9, 50_000):
            policy.on_retrap(span)
            fresh.on_retrap(span)
            assert policy.threshold() == fresh.threshold()


class TestAdaptiveInTheSystem:
    @staticmethod
    def _burst_gap_scenario(bursts=30, gap_iterations=60):
        """Taint bursts separated by ~5-instruction/iteration clean gaps.

        With a fixed timeout shorter than the gap, every burst costs a
        full round trip; the adaptive policy learns the period and stops
        bouncing.
        """
        from repro.isa.assembler import assemble
        from repro.machine.devices import DeviceTable, VirtualFile
        from repro.workloads.programs import Scenario

        source = f"""
        .data
path:   .asciiz "stream.bin"
buf:    .space 16
        .text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r10, r3
    li   r14, {bursts}
outer:
    beqz r14, done
    li   r3, 1              # taint burst: read 4 bytes
    mv   r4, r10
    li   r5, buf
    li   r6, 4
    syscall
    li   r8, buf            # touch the tainted data
    lw   r9, 0(r8)
    add  r9, r9, r9
    li   r7, 0              # clean gap
gap:
    addi r7, r7, 1
    slli r11, r7, 1
    xor  r11, r11, r7
    slti r12, r7, {gap_iterations}
    bnez r12, gap
    addi r14, r14, -1
    j    outer
done:
    li   r3, 0
    li   r4, 0
    syscall
"""
        devices = DeviceTable()
        devices.register_file(
            VirtualFile("stream.bin", bytes(range(1, 255)) * 2)
        )
        return Scenario(
            name="burst-gap",
            program=assemble(source),
            devices=devices,
        )

    def _run(self, scenario, timeout_policy, timeout=120):
        cpu = scenario.make_cpu()
        costs = dataclasses.replace(
            SLatchCostModel(), timeout_instructions=timeout
        )
        system = SLatchSystem(cpu, costs=costs, timeout_policy=timeout_policy)
        cpu.run(2_000_000)
        return system

    def test_adaptive_reduces_switching_on_pathological_stream(self):
        fixed = self._run(self._burst_gap_scenario(), FixedTimeout(120))
        adaptive = self._run(
            self._burst_gap_scenario(),
            AdaptiveTimeout(initial=120, minimum=30, maximum=8000,
                            punish_span=1000),
        )
        assert fixed.counters.traps > 5  # the fixed policy bounces
        assert adaptive.counters.traps < fixed.counters.traps

    def test_adaptive_preserves_taint_state(self):
        cpu = self._burst_gap_scenario().make_cpu()
        engine = DIFTEngine()
        cpu.attach(engine)
        cpu.run(2_000_000)

        adaptive = self._run(
            self._burst_gap_scenario(),
            AdaptiveTimeout(initial=50, minimum=10, maximum=4000,
                            punish_span=1000),
            timeout=50,
        )
        assert (
            list(adaptive.engine.shadow.iter_tainted_bytes())
            == list(engine.shadow.iter_tainted_bytes())
        )
        assert [a.kind for a in adaptive.engine.alerts] == [
            a.kind for a in engine.alerts
        ]

    def test_adaptive_on_quiet_workload_behaves_like_fixed(self):
        fixed = self._run(file_filter(), FixedTimeout(1000), timeout=1000)
        adaptive = self._run(
            file_filter(), AdaptiveTimeout(initial=1000), timeout=1000
        )
        assert adaptive.counters.traps == fixed.counters.traps
