"""The repro-run CLI: suite listing, reports, cache behaviour, errors."""

import json

import pytest

from repro.runner.cli import main

SCALES = ["--epoch-scale", "120000", "--trace-window", "3000"]


def _json_report(tmp_path, name, extra):
    out = tmp_path / name
    code = main(
        ["smoke", "--cache-dir", str(tmp_path / "cache"), "--quiet",
         "--format", "json", "-o", str(out)] + SCALES + extra
    )
    return code, json.loads(out.read_text())


class TestListing:
    def test_list_suites(self, capsys):
        assert main(["--list-suites"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "tables", "overhead", "smoke"):
            assert name in out
        assert "6 jobs" in out  # the smoke suite


class TestRuns:
    def test_cold_then_warm_json(self, tmp_path):
        code, cold = _json_report(tmp_path, "cold.json", ["--serial"])
        assert code == 0
        assert cold["suites"] == ["smoke"]
        assert len(cold["jobs"]) == 6
        assert all(j["status"] == "ok" for j in cold["jobs"].values())
        assert not any(j["from_cache"] for j in cold["jobs"].values())

        code, warm = _json_report(tmp_path, "warm.json", ["--serial"])
        assert code == 0
        assert all(j["from_cache"] for j in warm["jobs"].values())
        for job_id, job in cold["jobs"].items():
            assert warm["jobs"][job_id]["snapshot"] == job["snapshot"]

    def test_markdown_report_to_file(self, tmp_path):
        out = tmp_path / "report.md"
        code = main(
            ["smoke", "--cache-dir", str(tmp_path / "cache"), "--quiet",
             "-o", str(out)] + SCALES + ["--serial"]
        )
        assert code == 0
        text = out.read_text()
        assert "taint_fraction:gcc" in text
        assert "runner metrics" in text
        assert "runner.cache.misses" in text

    def test_benchmarks_filter(self, tmp_path):
        code, report = _json_report(
            tmp_path, "filtered.json", ["--serial", "--benchmarks", "gcc"]
        )
        assert code == 0
        assert set(report["jobs"]) == {
            "taint_fraction:gcc", "page_taint:gcc", "hlatch:gcc",
        }

    def test_columnar_flag_is_bit_identical_to_object_path(self, tmp_path):
        code, object_report = _json_report(
            tmp_path, "object.json", ["--serial", "--benchmarks", "gcc"]
        )
        assert code == 0
        code, columnar = _json_report(
            tmp_path, "columnar.json",
            ["--serial", "--benchmarks", "gcc", "--columnar", "--shards", "2"],
        )
        assert code == 0
        # hlatch jobs are rewritten onto the trace_replay kind; the
        # published hlatch.*/baseline.* metrics must not move at all.
        assert "trace_replay:gcc" in columnar["jobs"]
        assert "hlatch:gcc" not in columnar["jobs"]
        replayed = columnar["jobs"]["trace_replay:gcc"]["snapshot"]
        original = object_report["jobs"]["hlatch:gcc"]["snapshot"]

        def rows(snapshot, prefix):
            return {
                row["name"]: row["data"]
                for row in snapshot["metrics"]
                if row["name"].startswith(prefix)
            }

        for prefix in ("hlatch.", "baseline."):
            assert rows(replayed, prefix) == rows(original, prefix)
        assert rows(replayed, "trace.")["trace.replays"] == {"value": 1}
        # Non-cache-sim kinds pass through the rewrite untouched.
        assert "taint_fraction:gcc" in columnar["jobs"]

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        code = main(
            ["smoke", "--cache-dir", str(tmp_path / "cache"),
             "--format", "json", "-o", str(tmp_path / "o.json")]
            + SCALES + ["--serial"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[6/6]" in err and "ok " in err

    def test_failed_job_sets_exit_code(self, tmp_path, capsys):
        # A suite is not expressible with a failing job from the CLI, so
        # exercise the exit path through the no-cache chaos of an
        # unknown workload name inside a valid suite via --benchmarks
        # yielding zero jobs instead: that is a usage error (2).
        code = main(
            ["smoke", "--cache-dir", str(tmp_path / "cache"), "--quiet",
             "--benchmarks", "not-a-workload"] + SCALES
        )
        assert code == 2


class TestErrors:
    def test_unknown_suite_is_usage_error(self, tmp_path, capsys):
        code = main(["no-such-suite", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_no_suites_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no suites" in capsys.readouterr().err

    def test_bad_workers_is_usage_error(self, tmp_path, capsys):
        code = main(
            ["smoke", "--cache-dir", str(tmp_path), "--workers", "0"]
            + SCALES
        )
        assert code == 2

    def test_clear_cache(self, tmp_path, capsys):
        _json_report(tmp_path, "cold.json", ["--serial"])
        code = main(["--clear-cache", "--cache-dir",
                     str(tmp_path / "cache")])
        assert code == 0
        assert "removed" in capsys.readouterr().out
        # Everything recomputes after the wipe.
        _, rerun = _json_report(tmp_path, "rerun.json", ["--serial"])
        assert not any(j["from_cache"] for j in rerun["jobs"].values())
