"""Regenerate the columnar ``.ltrace`` golden fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen_trace.py

Produces:

* ``trace_v1.ltrace`` — the committed gcc 2 000-access golden window
  (``gcc_w2000_s0.npz``) re-encoded as a v1 columnar container.  The
  conformance suite asserts **byte equality** against a fresh encode,
  so any change to the v1 binary layout (prologue, alignment, section
  order, directory JSON) fails loudly against a file produced by an
  earlier build.
* ``corrupt_trace.ltrace`` — the same container cut off mid-section: a
  real on-disk truncation that must raise ``StorageFormatError`` at
  open time (the columnar sibling of ``corrupt.npz``).

The fixtures are committed; regenerate them only when the ``.ltrace``
format version is bumped *intentionally*, and say so in the commit
message — a diff here means every reader's idea of v1 moved.
"""

from __future__ import annotations

from pathlib import Path

from repro.trace.convert import save_columnar_trace
from repro.workloads.storage import load_access_trace

GOLDEN_DIR = Path(__file__).parent
SOURCE = GOLDEN_DIR / "gcc_w2000_s0.npz"


def main() -> None:
    trace = load_access_trace(SOURCE)
    target = GOLDEN_DIR / "trace_v1.ltrace"
    save_columnar_trace(trace, target)
    intact = target.read_bytes()
    # Cut inside the section payloads, past the prologue: the directory
    # pointer now aims beyond the end of file.
    (GOLDEN_DIR / "corrupt_trace.ltrace").write_bytes(
        intact[: len(intact) // 3]
    )
    print(f"wrote trace_v1.ltrace ({len(intact)} bytes) into {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
