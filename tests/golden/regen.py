"""Regenerate the golden fixtures in this directory.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regen.py

Produces, per pinned workload:

* ``<name>_w2000_s0.npz``  — a 2 000-access :class:`AccessTrace` window,
* ``<name>_epochs_s0.npz`` — a 100 k-instruction :class:`EpochStream`,

plus ``expected.json`` (the replay results both kernel backends must
reproduce exactly) and ``corrupt.npz`` (a deliberately truncated archive
that must raise :class:`StorageFormatError`).

The fixtures are committed; regenerate them only when the workload
generator or the snapshot format changes *intentionally*, and say so in
the commit message — a diff here means every consumer's numbers moved.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.temporal import epoch_duration_profile
from repro.hlatch.baseline import run_baseline
from repro.hlatch.system import HLatchSystem
from repro.workloads import WorkloadGenerator, get_profile
from repro.workloads.storage import save_access_trace, save_epoch_stream

GOLDEN_DIR = Path(__file__).parent
WORKLOADS = ("gcc", "curl")
TRACE_WINDOW = 2_000
EPOCH_SCALE = 100_000
SEED = 0


def _hlatch_snapshot_dict(trace):
    system = HLatchSystem()
    system.load_taint(trace.layout)
    for index in range(trace.access_count):
        system.access(
            int(trace.addresses[index]),
            int(trace.sizes[index]),
            bool(trace.is_write[index]),
        )
    return system.snapshot().to_dict()


def main() -> None:
    expected = {}
    for name in WORKLOADS:
        generator = WorkloadGenerator(get_profile(name), seed=SEED)
        trace = generator.access_trace(TRACE_WINDOW)
        stream = generator.epoch_stream(EPOCH_SCALE)
        save_access_trace(trace, GOLDEN_DIR / f"{name}_w{TRACE_WINDOW}_s{SEED}.npz")
        save_epoch_stream(stream, GOLDEN_DIR / f"{name}_epochs_s{SEED}.npz")
        baseline = run_baseline(trace, backend="scalar")
        expected[name] = {
            "hlatch_snapshot": _hlatch_snapshot_dict(trace),
            "baseline": {
                "accesses": baseline.accesses,
                "misses": baseline.misses,
            },
            "epoch_profile": {
                str(threshold): value
                for threshold, value in epoch_duration_profile(
                    stream, backend="scalar"
                ).items()
            },
        }

    (GOLDEN_DIR / "expected.json").write_text(
        json.dumps(expected, indent=2, sort_keys=True) + "\n"
    )

    # A real on-disk corruption: a valid archive cut off mid-stream.
    intact = (GOLDEN_DIR / f"gcc_w{TRACE_WINDOW}_s{SEED}.npz").read_bytes()
    (GOLDEN_DIR / "corrupt.npz").write_bytes(intact[: len(intact) // 3])
    print(f"wrote fixtures for {WORKLOADS} into {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
