"""Paged-memory tests: sparse allocation, cross-page access, tracking."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.memory import (
    MemoryFault,
    PAGE_SIZE,
    PagedMemory,
    page_base,
    page_number,
)


class TestPageMath:
    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(PAGE_SIZE - 1) == 0
        assert page_number(PAGE_SIZE) == 1

    def test_page_base(self):
        assert page_base(0x1234) == 0x1000
        assert page_base(0x1000) == 0x1000


class TestReadWrite:
    def test_read_unwritten_returns_zeroes(self):
        memory = PagedMemory()
        assert memory.read_bytes(0x5000, 8) == b"\x00" * 8

    def test_write_then_read(self):
        memory = PagedMemory()
        memory.write_bytes(0x2000, b"hello")
        assert memory.read_bytes(0x2000, 5) == b"hello"

    def test_cross_page_write_and_read(self):
        memory = PagedMemory()
        address = PAGE_SIZE - 3
        memory.write_bytes(address, b"abcdef")
        assert memory.read_bytes(address, 6) == b"abcdef"
        assert memory.resident_pages == 2

    def test_uint_round_trip_little_endian(self):
        memory = PagedMemory()
        memory.write_uint(0x100, 0xDEADBEEF, 4)
        assert memory.read_uint(0x100, 4) == 0xDEADBEEF
        assert memory.read_bytes(0x100, 4) == b"\xef\xbe\xad\xde"

    def test_uint_truncates_to_size(self):
        memory = PagedMemory()
        memory.write_uint(0, 0x1FF, 1)
        assert memory.read_uint(0, 1) == 0xFF

    def test_signed_read(self):
        memory = PagedMemory()
        memory.write_uint(0, 0xFF, 1)
        assert memory.read_int(0, 1) == -1

    def test_negative_length_rejected(self):
        with pytest.raises(MemoryFault):
            PagedMemory().read_bytes(0, -1)

    def test_address_wraps_at_32_bits(self):
        memory = PagedMemory()
        memory.write_bytes(0x1_0000_0010, b"x")
        assert memory.read_bytes(0x10, 1) == b"x"

    @given(
        st.integers(min_value=0, max_value=0xFFFF_F000),
        st.binary(min_size=1, max_size=64),
    )
    def test_write_read_roundtrip_property(self, address, payload):
        memory = PagedMemory()
        memory.write_bytes(address, payload)
        assert memory.read_bytes(address, len(payload)) == payload


class TestCString:
    def test_read_cstring(self):
        memory = PagedMemory()
        memory.write_bytes(0x40, b"file.txt\x00junk")
        assert memory.read_cstring(0x40) == b"file.txt"

    def test_unterminated_raises(self):
        memory = PagedMemory()
        memory.write_bytes(0, b"a" * 16)
        with pytest.raises(MemoryFault):
            memory.read_cstring(0, max_length=16)


class TestAccessTracking:
    def test_reads_and_writes_tracked(self):
        memory = PagedMemory()
        memory.read_bytes(0x0000, 1)
        memory.write_bytes(0x5000, b"z")
        assert memory.accessed_pages == {0, 5}

    def test_reset_tracking_keeps_data(self):
        memory = PagedMemory()
        memory.write_bytes(0x3000, b"q")
        memory.reset_access_tracking()
        assert memory.accessed_pages == set()
        assert memory.read_bytes(0x3000, 1) == b"q"

    def test_sparse_allocation(self):
        memory = PagedMemory()
        memory.read_bytes(0x9000, 4)  # read never allocates
        assert memory.resident_pages == 0
        memory.write_bytes(0x9000, b"1")
        assert memory.resident_pages == 1

    def test_iter_nonzero_pages_sorted(self):
        memory = PagedMemory()
        memory.write_bytes(0x7000, b"a")
        memory.write_bytes(0x2000, b"b")
        assert list(memory.iter_nonzero_pages()) == [2, 7]
