"""TraceRecorder tests: real executions → analysis artefacts."""

import pytest

from repro.analysis import page_taint_distribution, tainted_instruction_fraction
from repro.dift.engine import DIFTEngine
from repro.hlatch import run_baseline, run_hlatch
from repro.machine.tracing import TraceRecorder, _extents_from_shadow
from repro.dift.tags import ShadowMemory
from repro.workloads.programs import file_filter, phased_compute


def record(scenario):
    cpu = scenario.make_cpu()
    engine = DIFTEngine()
    recorder = TraceRecorder(engine, name=scenario.name)
    cpu.attach(engine)
    cpu.attach(recorder)
    cpu.run(500_000)
    return cpu, engine, recorder


class TestExtentCoalescing:
    def test_empty_shadow(self):
        assert _extents_from_shadow(ShadowMemory()) == []

    def test_single_run(self):
        shadow = ShadowMemory()
        shadow.set_range(0x100, 8, 1)
        assert _extents_from_shadow(shadow) == [(0x100, 8)]

    def test_split_runs(self):
        shadow = ShadowMemory()
        shadow.set_range(0x100, 4, 1)
        shadow.set_range(0x110, 2, 1)
        assert _extents_from_shadow(shadow) == [(0x100, 4), (0x110, 2)]


class TestRecordedAccessTrace:
    def test_instruction_conservation(self):
        cpu, _, recorder = record(file_filter())
        trace = recorder.access_trace()
        assert (
            trace.total_instructions + recorder.trailing_gap == cpu.step_count
        )

    def test_tainted_accesses_present(self):
        _, engine, recorder = record(file_filter())
        trace = recorder.access_trace()
        assert trace.tainted_access_count > 0
        assert trace.tainted_access_count <= engine.stats.tainted_instructions

    def test_epoch_stream_matches_engine_fraction(self):
        _, engine, recorder = record(file_filter())
        stream = recorder.epoch_stream()
        assert stream.total_instructions == engine.stats.instructions
        assert tainted_instruction_fraction(stream) == pytest.approx(
            engine.stats.tainted_fraction
        )

    def test_phased_program_shows_three_plus_epochs(self):
        _, _, recorder = record(phased_compute())
        stream = recorder.epoch_stream()
        # At least: free prefix, taint-handling middle, free suffix.
        assert stream.epoch_count >= 3
        assert stream.tainted_counts[0] == 0
        assert stream.tainted_counts[-1] == 0
        assert (stream.tainted_counts > 0).any()

    def test_recorded_trace_feeds_page_analysis(self):
        scenario = file_filter()
        _, _, recorder = record(scenario)
        stats = page_taint_distribution(recorder.access_trace().layout)
        assert stats.pages_accessed >= 1

    def test_recorded_trace_feeds_cache_sims(self):
        _, _, recorder = record(file_filter())
        trace = recorder.access_trace()
        hlatch = run_hlatch(trace)
        baseline = run_baseline(trace)
        assert hlatch.accesses == trace.access_count
        # The baseline counts line-spanning operands as two cache probes.
        assert baseline.accesses >= trace.access_count
        # All counters are internally consistent (this tiny run is fully
        # taint-dominated, so H-LATCH pays extra compulsory CTC misses —
        # the filtering advantage only appears on taint-sparse traffic).
        assert hlatch.sent_to_precise <= hlatch.accesses
        assert hlatch.tcache_misses <= hlatch.tcache_accesses

    def test_layout_covers_transient_taint(self):
        """Pages that were tainted and later cleared still count
        (Table 3/4 semantics: taint received during execution)."""
        _, engine, recorder = record(phased_compute())
        # phased_compute clears its buffer before finishing...
        assert engine.shadow.tainted_byte_count == 0
        # ...but the recorded layout remembers the tainted page.
        layout = recorder.access_trace().layout
        assert len(layout.tainted_pages()) >= 1

    def test_gap_accounting(self):
        _, _, recorder = record(phased_compute(clean_iterations=100))
        trace = recorder.access_trace()
        # The clean compute loops contribute large gaps before the first
        # file-buffer access.
        assert int(trace.gap_before.max()) > 50
