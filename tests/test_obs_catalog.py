"""Metric-catalog drift tests: published names vs docs/OBSERVABILITY.md.

The existing docs test checks that documented names are published; this
one closes the loop for the two namespaces that grow fastest — the
serving stack (``serve.*``, with tenant-scoped names normalised to the
``serve.tenant.<name>.*`` rows) and the columnar trace replay
(``trace.*``) — in **both** directions, so a new metric cannot ship
without its catalog row and a catalog row cannot outlive its metric.
"""

import pathlib
import re

import pytest

from repro.obs import MetricsRegistry
from repro.obs.exposition import split_tenant
from repro.serve import ServeClient, ServeConfig, record_trace, running_server
from repro.workloads import programs

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Catalog rows look like ``| `serve.tenant.<name>.events` | C | ... |``.
_ROW_RE = re.compile(r"\| `([A-Za-z0-9_.<>*-]+)` \|")


def documented_names():
    text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    return set(_ROW_RE.findall(text))


def _normalize(name: str) -> str:
    """Fold a concrete tenant name into the documented ``<name>`` slot."""
    family, tenant = split_tenant(name)
    if tenant is None:
        return name
    suffix = family[len("serve.tenant."):]
    return f"serve.tenant.<name>.{suffix}"


def _documented_match(name: str, documented) -> bool:
    if name in documented:
        return True
    # Wildcard rows: ``serve.tenant.<name>.pipeline.*`` style.
    for row in documented:
        if row.endswith(".*") and name.startswith(row[:-1]):
            return True
    return False


@pytest.fixture(scope="module")
def serve_names():
    """Every metric name a real served check run publishes."""
    events = record_trace(lambda: programs.checksum().make_cpu())
    config = ServeConfig(slo_rules=("divergence == 0",))
    with running_server(config) as (server, (host, port)):
        with ServeClient(host, port, tenant="acme") as client:
            client.check_trace(events)
        snapshot = server.snapshot()
    return [record.name for record in snapshot.records]


class TestServeCatalog:
    def test_every_published_serve_metric_is_documented(self, serve_names):
        documented = documented_names()
        undocumented = sorted({
            _normalize(name) for name in serve_names
            if name.startswith("serve.")
            and not _documented_match(_normalize(name), documented)
        })
        assert not undocumented, (
            f"published but missing from docs/OBSERVABILITY.md: "
            f"{undocumented}"
        )

    def test_every_documented_serve_row_is_published(self, serve_names):
        published = {_normalize(name) for name in serve_names}
        stale = sorted(
            row for row in documented_names()
            if row.startswith("serve.")
            and not row.endswith(".*")
            and row not in published
        )
        assert not stale, (
            f"documented but never published by a served check: {stale}"
        )

    def test_wildcard_rows_cover_something_real(self, serve_names):
        published = {_normalize(name) for name in serve_names}
        for row in documented_names():
            if row.startswith("serve.") and row.endswith(".*"):
                assert any(
                    name.startswith(row[:-1]) for name in published
                ), f"wildcard row {row} matches nothing"


class TestTraceCatalog:
    @pytest.fixture(scope="class")
    def trace_names(self):
        from repro.trace import (
            columnar_trace_bytes,
            publish_trace_metrics,
            replay_columnar,
        )
        from repro.workloads import WorkloadGenerator, get_profile

        generator = WorkloadGenerator(get_profile("wget"))
        result = replay_columnar(
            columnar_trace_bytes(generator.access_trace(2_000)),
            baseline_config=None,
        )
        registry = MetricsRegistry()
        publish_trace_metrics(registry, result, include_timings=True)
        return set(registry.names())

    def test_trace_rows_bidirectional(self, trace_names):
        documented = {
            row for row in documented_names() if row.startswith("trace.")
        }
        published = {
            name for name in trace_names if name.startswith("trace.")
        }
        assert documented == published, (
            f"doc-only: {sorted(documented - published)}, "
            f"unpublished: {sorted(published - documented)}"
        )
