"""Checkpoint/restore tests."""

import pytest

from repro.core.latch import LatchModule
from repro.dift.checkpoint import (
    engine_state,
    load_checkpoint,
    restore_engine_state,
    save_checkpoint,
)
from repro.dift.engine import DIFTEngine
from repro.dift.policy import TaintPolicy
from repro.workloads.programs import file_filter


def monitored_engine():
    scenario = file_filter()
    cpu = scenario.make_cpu()
    engine = DIFTEngine(TaintPolicy(color_by_source=True))
    cpu.attach(engine)
    cpu.run(100_000)
    return engine


class TestRoundTrip:
    def test_state_roundtrips(self, tmp_path):
        source = monitored_engine()
        path = tmp_path / "state.json"
        save_checkpoint(source, path)

        target = DIFTEngine()
        load_checkpoint(target, path)
        assert (
            list(target.shadow.iter_tainted_bytes())
            == list(source.shadow.iter_tainted_bytes())
        )
        for address in source.shadow.iter_tainted_bytes():
            assert target.shadow.get(address) == source.shadow.get(address)
        for register in range(16):
            assert target.trf.get(register) == source.trf.get(register)
        assert target.stats.tainted_instructions == (
            source.stats.tainted_instructions
        )

    def test_restore_replaces_existing_state(self):
        source = monitored_engine()
        target = DIFTEngine()
        target.shadow.set_range(0xAAAA, 32, 1)  # stale taint to be dropped
        restore_engine_state(target, engine_state(source))
        assert not target.shadow.any_tainted(0xAAAA, 32)

    def test_alerts_preserved(self, tmp_path):
        from repro.workloads.attacks import buffer_overflow

        scenario = buffer_overflow(hijack=True)
        cpu = scenario.make_cpu()
        engine = DIFTEngine()
        cpu.attach(engine)
        try:
            cpu.run(100_000)
        except Exception:
            pass
        assert engine.alerts
        path = tmp_path / "state.json"
        save_checkpoint(engine, path)
        target = DIFTEngine()
        load_checkpoint(target, path)
        assert [(a.kind, a.pc) for a in target.alerts] == [
            (a.kind, a.pc) for a in engine.alerts
        ]

    def test_version_guard(self):
        with pytest.raises(ValueError):
            restore_engine_state(DIFTEngine(), {"format_version": 99})


class TestLatchRebuild:
    def test_restore_rebuilds_coarse_state_through_listener(self):
        """Attaching a LATCH to the restoring engine yields a coherent
        coarse ⊇ precise state — the paper's attach-to-running-process
        scenario."""
        source = monitored_engine()
        target = DIFTEngine()
        latch = LatchModule()
        target.add_tag_listener(lambda a, t: latch.update_memory_tags(a, t))
        restore_engine_state(target, engine_state(source))
        for address in target.shadow.iter_tainted_bytes():
            assert latch.check_memory(address, 1).coarse_tainted

    def test_colors_survive(self, tmp_path):
        source = monitored_engine()
        allocated = source.colors.allocated
        assert allocated >= 1
        path = tmp_path / "state.json"
        save_checkpoint(source, path)
        target = DIFTEngine()
        load_checkpoint(target, path)
        assert target.colors.allocated == allocated
