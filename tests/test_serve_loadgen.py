"""Load generator: arrival shaping, the 50- and 1000-client sweeps."""

import pytest

from repro.serve import ServeConfig, TenantLimits, running_server
from repro.serve.loadgen import (
    LoadGenConfig,
    arrival_offsets,
    prepare_traces,
    run,
)


@pytest.fixture(scope="module")
def shared_traces():
    """Record the workload mix once for the whole module."""
    return prepare_traces(("checksum", "file_filter"))


class TestArrivalShaping:
    def test_deterministic_under_seed(self):
        config = LoadGenConfig(clients=50, seed=7)
        assert arrival_offsets(config) == arrival_offsets(config)
        other = LoadGenConfig(clients=50, seed=8)
        assert arrival_offsets(config) != arrival_offsets(other)

    def test_offsets_stay_inside_the_window(self):
        for phase in ("bursty", "diurnal", "steady"):
            config = LoadGenConfig(
                clients=200, phase=phase, duration=2.0
            )
            offsets = arrival_offsets(config)
            assert len(offsets) == 200
            assert all(0.0 <= offset <= 2.0 for offset in offsets)

    def test_bursty_arrivals_cluster_into_waves(self):
        config = LoadGenConfig(
            clients=400, phase="bursty", duration=8.0, burst_count=4
        )
        offsets = arrival_offsets(config)
        # Arrivals land in the first tenth of each 2s wave slot.
        for offset in offsets:
            assert (offset % 2.0) <= 0.2 + 1e-9

    def test_diurnal_arrivals_avoid_the_night(self):
        config = LoadGenConfig(
            clients=1000, phase="diurnal", duration=1.0
        )
        offsets = arrival_offsets(config)
        # The raised-cosine intensity makes mid-window ("daytime")
        # arrivals dominate the edges.
        midday = sum(1 for o in offsets if 0.25 <= o <= 0.75)
        assert midday > len(offsets) * 0.55

    def test_zero_duration_means_thundering_herd(self):
        config = LoadGenConfig(clients=10, duration=0.0)
        assert arrival_offsets(config) == [0.0] * 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadGenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadGenConfig(phase="nightly")
        with pytest.raises(ValueError):
            LoadGenConfig(max_open=0)
        with pytest.raises(ValueError):
            LoadGenConfig(phase="engine:no-such-engine")

    def test_engine_phase_follows_the_schedule(self):
        # engine:kv-bursty drives arrivals with the same phase schedule
        # the kv-bursty epoch stream uses: surge windows (duty 0.3 of
        # each wave) soak up most of the clients.
        from repro.workloads import engine_schedule

        config = LoadGenConfig(
            clients=400, phase="engine:kv-bursty", duration=8.0
        )
        offsets = arrival_offsets(config)
        assert len(offsets) == 400
        assert all(0.0 <= offset <= 8.0 for offset in offsets)
        schedule = engine_schedule("kv-bursty")
        surge_span = sum(
            p.span for p in schedule.phases if p.name.startswith("surge")
        )
        in_surge = 0
        for offset in offsets:
            start = 0.0
            for phase in schedule.phases:
                width = phase.span * 8.0
                if start <= offset < start + width:
                    in_surge += phase.name.startswith("surge")
                    break
                start += width
        assert in_surge > 400 * surge_span * 2
        assert arrival_offsets(config) == offsets


class TestLoadRuns:
    def test_fifty_concurrent_clients_zero_divergence(self, shared_traces):
        # The CI service-smoke shape: >= 50 concurrent clients across
        # tenants, every result bit-identical, no drops.
        config = ServeConfig(
            max_inflight=32,
            default_limits=TenantLimits(rate=200_000.0, burst=4096.0),
        )
        with running_server(config) as (server, (host, port)):
            report = run(
                host, port,
                config=LoadGenConfig(
                    clients=50, tenants=5, duration=0.2, phase="bursty"
                ),
                traces=shared_traces,
            )
            snapshot = server.snapshot()
        assert report.clean, report.errors
        assert report.completed == 50
        assert report.divergences == 0
        # Every tenant both participated and is accounted separately.
        assert len(report.per_tenant) == 5
        for index in range(5):
            name = f"load-{index}"
            assert report.per_tenant[name]["completed"] == 10
            assert snapshot.get(f"serve.tenant.{name}.results") == 10

    def test_overload_is_absorbed_via_retry_not_drops(self, shared_traces):
        # A deliberately tiny in-flight table + modest buckets under a
        # thundering herd: clients must retry (non-zero RETRY traffic)
        # and still all complete bit-identically.
        config = ServeConfig(
            max_inflight=4,
            default_limits=TenantLimits(rate=30_000.0, burst=256.0),
            inflight_backoff_ms=5,
        )
        with running_server(config) as (server, (host, port)):
            report = run(
                host, port,
                config=LoadGenConfig(
                    clients=40, tenants=4, duration=0.0, phase="steady",
                    max_open=40,
                ),
                traces=shared_traces,
            )
            snapshot = server.snapshot()
        assert report.clean, report.errors
        assert report.completed == 40
        assert report.retries > 0
        rejected = sum(
            snapshot.get(f"serve.tenant.load-{i}.rejected.{reason}") or 0
            for i in range(4)
            for reason in ("rate", "inflight", "streams")
        )
        assert rejected > 0
        # Nothing dropped: every client's full trace was accepted.
        total_events = sum(
            snapshot.get(f"serve.tenant.load-{i}.events") or 0
            for i in range(4)
        )
        shortest = min(len(trace.events) for trace in shared_traces)
        assert total_events >= 40 * shortest
        assert report.failed == 0

    def test_thousand_simulated_clients(self, shared_traces):
        # The acceptance bar: a 1000-client run completes with
        # per-tenant isolation intact and zero soundness divergence.
        config = ServeConfig(
            max_inflight=64,
            default_limits=TenantLimits(
                rate=2_000_000.0, burst=65_536.0, max_streams=None,
            ),
            max_batch=512,
        )
        with running_server(config) as (server, (host, port)):
            report = run(
                host, port,
                config=LoadGenConfig(
                    clients=1000, tenants=8, duration=1.0,
                    phase="diurnal", max_open=64,
                ),
                traces=shared_traces,
            )
            snapshot = server.snapshot()
        assert report.clean, report.errors[:5]
        assert report.completed == 1000
        assert report.divergences == 0
        assert len(report.per_tenant) == 8
        assert sum(
            row["completed"] for row in report.per_tenant.values()
        ) == 1000
        for index in range(8):
            assert snapshot.get(
                f"serve.tenant.load-{index}.results"
            ) == report.per_tenant[f"load-{index}"]["completed"]
        # The in-flight table never exceeded its bound.
        assert snapshot.get("serve.inflight_peak") <= 64
        assert snapshot.get("serve.inflight") == 0

    def test_engine_phase_run_is_bit_identical(self, shared_traces):
        # A dynamic-engine arrival schedule driven end to end: every
        # served result must match the local PLatchSystem reference
        # (report.clean == zero divergence from the recorded oracle).
        config = ServeConfig(
            max_inflight=32,
            default_limits=TenantLimits(rate=200_000.0, burst=4096.0),
        )
        with running_server(config) as (server, (host, port)):
            report = run(
                host, port,
                config=LoadGenConfig(
                    clients=40, tenants=4, duration=0.2,
                    phase="engine:kv-bursty",
                ),
                traces=shared_traces,
            )
        assert report.clean, report.errors
        assert report.completed == 40
        assert report.divergences == 0
