"""Experiment-driver CLI tests."""

import pytest

from repro.tools.reproduce import EXPERIMENTS, ExperimentContext, main

FAST = ["--epoch-scale", "300000", "--trace-window", "10000"]


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for identifier in ("table1", "fig13", "sec64"):
            assert identifier in out

    def test_no_experiments_is_error(self, capsys):
        assert main([]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_single_experiment(self, capsys):
        assert main(["table2", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "apache-75" in out

    def test_output_dir(self, tmp_path, capsys):
        assert main(["sec64", *FAST, "-o", str(tmp_path)]) == 0
        assert (tmp_path / "sec64.txt").exists()

    def test_multiple_experiments_share_context(self, capsys):
        assert main(["table1", "table3", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out


class TestExperimentFunctions:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(epoch_scale=300_000, trace_window=10_000)

    @pytest.mark.parametrize("identifier", sorted(EXPERIMENTS))
    def test_every_experiment_renders(self, ctx, identifier):
        text = EXPERIMENTS[identifier](ctx)
        assert text.strip()
        assert "\n" in text

    def test_context_caches(self, ctx):
        assert ctx.stream("gcc") is ctx.stream("gcc")
        assert ctx.trace("gcc") is ctx.trace("gcc")
        assert ctx.generator("gcc") is ctx.generator("gcc")

    def test_names_filter(self, ctx):
        assert len(ctx.names("spec")) == 20
        assert len(ctx.names("network")) == 7
        assert len(ctx.names("service")) == 6
        assert len(ctx.names()) == 33
