"""Trace persistence tests."""

import numpy as np
import pytest

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.storage import (
    StorageFormatError,
    load_access_trace,
    load_epoch_stream,
    save_access_trace,
    save_epoch_stream,
)


class TestAccessTraceRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(30_000)
        path = tmp_path / "gcc.npz"
        save_access_trace(trace, path)
        loaded = load_access_trace(path)
        assert loaded.name == trace.name
        assert (loaded.addresses == trace.addresses).all()
        assert (loaded.sizes == trace.sizes).all()
        assert (loaded.is_write == trace.is_write).all()
        assert (loaded.tainted == trace.tainted).all()
        assert (loaded.gap_before == trace.gap_before).all()
        assert (loaded.active_epoch == trace.active_epoch).all()
        assert loaded.layout.extents == trace.layout.extents
        assert loaded.layout.accessed_pages == trace.layout.accessed_pages

    def test_loaded_trace_feeds_simulations(self, tmp_path):
        from repro.hlatch import run_hlatch

        trace = WorkloadGenerator(get_profile("curl")).access_trace(20_000)
        path = tmp_path / "curl.npz"
        save_access_trace(trace, path)
        original = run_hlatch(trace)
        replayed = run_hlatch(load_access_trace(path))
        assert replayed.ctc_misses == original.ctc_misses
        assert replayed.tcache_misses == original.tcache_misses

    def test_recorded_trace_roundtrip(self, tmp_path):
        """TraceRecorder output survives persistence too."""
        from repro.dift.engine import DIFTEngine
        from repro.machine.tracing import TraceRecorder
        from repro.workloads.programs import file_filter

        scenario = file_filter()
        cpu = scenario.make_cpu()
        engine = DIFTEngine()
        recorder = TraceRecorder(engine)
        cpu.attach(engine)
        cpu.attach(recorder)
        cpu.run(100_000)
        trace = recorder.access_trace()
        path = tmp_path / "recorded.npz"
        save_access_trace(trace, path)
        loaded = load_access_trace(path)
        assert loaded.tainted_access_count == trace.tainted_access_count


class TestEpochStreamRoundTrip:
    def test_roundtrip(self, tmp_path):
        stream = WorkloadGenerator(get_profile("apache")).epoch_stream(500_000)
        path = tmp_path / "apache.npz"
        save_epoch_stream(stream, path)
        loaded = load_epoch_stream(path)
        assert loaded.name == stream.name
        assert (loaded.lengths == stream.lengths).all()
        assert (loaded.tainted_counts == stream.tainted_counts).all()
        assert loaded.tainted_fraction == stream.tainted_fraction

    def test_roundtrip_preserves_derived_statistics(self, tmp_path):
        stream = WorkloadGenerator(get_profile("sphinx")).epoch_stream(200_000)
        path = tmp_path / "sphinx.npz"
        save_epoch_stream(stream, path)
        loaded = load_epoch_stream(path)
        assert loaded.epoch_count == stream.epoch_count
        assert loaded.total_instructions == stream.total_instructions

    def test_loaded_stream_feeds_analysis_identically(self, tmp_path):
        from repro.analysis import tainted_instruction_fraction

        stream = WorkloadGenerator(get_profile("gcc")).epoch_stream(200_000)
        path = tmp_path / "gcc.npz"
        save_epoch_stream(stream, path)
        assert tainted_instruction_fraction(
            load_epoch_stream(path)
        ) == tainted_instruction_fraction(stream)


class TestFormatGuards:
    def test_kind_mismatch_rejected(self, tmp_path):
        stream = WorkloadGenerator(get_profile("gcc")).epoch_stream(100_000)
        path = tmp_path / "stream.npz"
        save_epoch_stream(stream, path)
        with pytest.raises(ValueError):
            load_access_trace(path)

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(ValueError):
            load_epoch_stream(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.int64(999),
            kind=np.bytes_(b"epoch-stream"),
            name=np.bytes_(b"x"),
            lengths=np.array([1]),
            tainted_counts=np.array([0]),
        )
        with pytest.raises(StorageFormatError, match="format version 999"):
            load_epoch_stream(path)

    def test_errors_are_valueerror_subclass(self):
        """Existing except ValueError handlers keep working."""
        assert issubclass(StorageFormatError, ValueError)

    def test_truncated_file_names_the_path(self, tmp_path):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(5_000)
        path = tmp_path / "gcc.npz"
        save_access_trace(trace, path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(StorageFormatError, match="gcc.npz"):
            load_access_trace(path)

    def test_not_an_archive_at_all(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(StorageFormatError, match="not a readable"):
            load_epoch_stream(path)

    def test_missing_file_stays_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_epoch_stream(tmp_path / "absent.npz")

    def test_missing_field_named_in_error(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(
            path,
            format_version=np.int64(1),
            kind=np.bytes_(b"epoch-stream"),
            name=np.bytes_(b"x"),
            lengths=np.array([1]),
            # tainted_counts deliberately absent
        )
        with pytest.raises(StorageFormatError, match="tainted_counts"):
            load_epoch_stream(path)

    def test_misaligned_epoch_arrays_rejected(self, tmp_path):
        path = tmp_path / "misaligned.npz"
        np.savez(
            path,
            format_version=np.int64(1),
            kind=np.bytes_(b"epoch-stream"),
            name=np.bytes_(b"x"),
            lengths=np.array([10, 20, 30]),
            tainted_counts=np.array([1]),
        )
        with pytest.raises(StorageFormatError, match="misaligned"):
            load_epoch_stream(path)

    def test_misaligned_trace_arrays_rejected(self, tmp_path):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(5_000)
        path = tmp_path / "trace.npz"
        save_access_trace(trace, path)
        with np.load(path) as archive:
            fields = dict(archive)
        fields["sizes"] = fields["sizes"][:-3]
        np.savez(path, **fields)
        with pytest.raises(StorageFormatError, match="misaligned"):
            load_access_trace(path)

    def test_bad_extents_shape_rejected(self, tmp_path):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(5_000)
        path = tmp_path / "trace.npz"
        save_access_trace(trace, path)
        with np.load(path) as archive:
            fields = dict(archive)
        fields["extents"] = np.arange(9).reshape(3, 3)
        np.savez(path, **fields)
        with pytest.raises(StorageFormatError, match="extents"):
            load_access_trace(path)
