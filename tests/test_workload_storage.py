"""Trace persistence tests."""

import numpy as np
import pytest

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.storage import (
    load_access_trace,
    load_epoch_stream,
    save_access_trace,
    save_epoch_stream,
)


class TestAccessTraceRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = WorkloadGenerator(get_profile("gcc")).access_trace(30_000)
        path = tmp_path / "gcc.npz"
        save_access_trace(trace, path)
        loaded = load_access_trace(path)
        assert loaded.name == trace.name
        assert (loaded.addresses == trace.addresses).all()
        assert (loaded.sizes == trace.sizes).all()
        assert (loaded.is_write == trace.is_write).all()
        assert (loaded.tainted == trace.tainted).all()
        assert (loaded.gap_before == trace.gap_before).all()
        assert (loaded.active_epoch == trace.active_epoch).all()
        assert loaded.layout.extents == trace.layout.extents
        assert loaded.layout.accessed_pages == trace.layout.accessed_pages

    def test_loaded_trace_feeds_simulations(self, tmp_path):
        from repro.hlatch import run_hlatch

        trace = WorkloadGenerator(get_profile("curl")).access_trace(20_000)
        path = tmp_path / "curl.npz"
        save_access_trace(trace, path)
        original = run_hlatch(trace)
        replayed = run_hlatch(load_access_trace(path))
        assert replayed.ctc_misses == original.ctc_misses
        assert replayed.tcache_misses == original.tcache_misses

    def test_recorded_trace_roundtrip(self, tmp_path):
        """TraceRecorder output survives persistence too."""
        from repro.dift.engine import DIFTEngine
        from repro.machine.tracing import TraceRecorder
        from repro.workloads.programs import file_filter

        scenario = file_filter()
        cpu = scenario.make_cpu()
        engine = DIFTEngine()
        recorder = TraceRecorder(engine)
        cpu.attach(engine)
        cpu.attach(recorder)
        cpu.run(100_000)
        trace = recorder.access_trace()
        path = tmp_path / "recorded.npz"
        save_access_trace(trace, path)
        loaded = load_access_trace(path)
        assert loaded.tainted_access_count == trace.tainted_access_count


class TestEpochStreamRoundTrip:
    def test_roundtrip(self, tmp_path):
        stream = WorkloadGenerator(get_profile("apache")).epoch_stream(500_000)
        path = tmp_path / "apache.npz"
        save_epoch_stream(stream, path)
        loaded = load_epoch_stream(path)
        assert loaded.name == stream.name
        assert (loaded.lengths == stream.lengths).all()
        assert (loaded.tainted_counts == stream.tainted_counts).all()
        assert loaded.tainted_fraction == stream.tainted_fraction


class TestFormatGuards:
    def test_kind_mismatch_rejected(self, tmp_path):
        stream = WorkloadGenerator(get_profile("gcc")).epoch_stream(100_000)
        path = tmp_path / "stream.npz"
        save_epoch_stream(stream, path)
        with pytest.raises(ValueError):
            load_access_trace(path)

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(ValueError):
            load_epoch_stream(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.int64(999),
            kind=np.bytes_(b"epoch-stream"),
            name=np.bytes_(b"x"),
            lengths=np.array([1]),
            tainted_counts=np.array([0]),
        )
        with pytest.raises(ValueError):
            load_epoch_stream(path)
