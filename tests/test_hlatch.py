"""H-LATCH tests: taint-cache geometry, filtering, update chain."""

import numpy as np
import pytest

from repro.core.latch import CheckLevel, LatchConfig
from repro.hlatch.baseline import ConventionalTaintCache, run_baseline
from repro.hlatch.system import HLatchSystem, run_hlatch
from repro.hlatch.taint_cache import (
    CONVENTIONAL_TAINT_CACHE,
    HLATCH_TAINT_CACHE,
    PreciseTaintCache,
    TaintCacheConfig,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import AccessTrace, TaintLayout


def make_trace(addresses, tainted=None, layout=None, name="t"):
    n = len(addresses)
    return AccessTrace(
        name=name,
        addresses=np.array(addresses, dtype=np.int64),
        sizes=np.full(n, 4, dtype=np.uint8),
        is_write=np.zeros(n, dtype=bool),
        tainted=np.array(tainted if tainted is not None else [False] * n),
        gap_before=np.zeros(n, dtype=np.int64),
        active_epoch=np.zeros(n, dtype=bool),
        layout=layout if layout is not None else TaintLayout(),
    )


class TestTaintCacheGeometry:
    def test_paper_configurations(self):
        assert HLATCH_TAINT_CACHE.capacity_bytes == 128
        assert HLATCH_TAINT_CACHE.lines == 32
        assert HLATCH_TAINT_CACHE.memory_coverage == 512
        assert CONVENTIONAL_TAINT_CACHE.capacity_bytes == 4096
        assert CONVENTIONAL_TAINT_CACHE.memory_coverage == 16 * 1024

    def test_line_covers_16_bytes(self):
        assert HLATCH_TAINT_CACHE.memory_coverage_per_line == 16

    def test_access_hit_miss(self):
        cache = PreciseTaintCache()
        assert not cache.access(0x100)
        assert cache.access(0x104)  # same 16-byte line
        assert not cache.access(0x110)

    def test_spanning_access_touches_two_lines(self):
        cache = PreciseTaintCache()
        cache.access(0x10E, size=4)
        assert cache.stats.accesses == 2

    def test_flush(self):
        cache = PreciseTaintCache()
        cache.access(0)
        cache.flush()
        assert not cache.access(0)


class TestBaseline:
    def test_every_access_consults_cache(self):
        trace = make_trace([0, 16, 32, 0])
        report = run_baseline(trace)
        assert report.accesses == 4
        assert report.misses == 3
        assert report.miss_percent == pytest.approx(75.0)

    def test_hot_loop_hits(self):
        trace = make_trace([0x100] * 100)
        report = run_baseline(trace)
        assert report.miss_percent == pytest.approx(1.0)


class TestFilteredStack:
    def test_clean_trace_never_reaches_tcache(self):
        trace = make_trace([0x1000, 0x2000, 0x3000] * 10)
        report = run_hlatch(trace)
        assert report.tcache_accesses == 0
        assert report.sent_to_precise == 0
        assert report.resolution_split()["tlb"] == pytest.approx(1.0)

    def test_tainted_accesses_reach_tcache(self):
        layout = TaintLayout(
            extents=[(0x1000, 64)], accessed_pages={1}
        )
        trace = make_trace(
            [0x1000, 0x1010, 0x5000], [True, True, False], layout
        )
        report = run_hlatch(trace)
        assert report.sent_to_precise == 2
        assert report.tcache_accesses >= 2

    def test_combined_miss_percent(self):
        layout = TaintLayout(extents=[(0x1000, 16)], accessed_pages={1})
        trace = make_trace([0x1000] * 100, [True] * 100, layout)
        report = run_hlatch(trace)
        # First access misses CTC and t-cache; the rest hit everywhere.
        assert report.ctc_misses == 1
        assert report.tcache_misses == 1
        assert report.combined_miss_percent == pytest.approx(2.0)

    def test_misses_avoided_metric(self):
        layout = TaintLayout(extents=[(0x1000, 16)], accessed_pages={1})
        trace = make_trace([0x1000] * 10, [True] * 10, layout)
        hlatch = run_hlatch(trace)
        baseline = run_baseline(trace)
        assert hlatch.misses_avoided_percent(baseline.misses) == pytest.approx(
            (baseline.misses - 2) / baseline.misses * 100.0
        )


class TestUpdateChain:
    def test_write_tags_sets_then_clears_coarse_state(self):
        system = HLatchSystem()
        system.write_tags(0x1000, b"\x01\x01")
        assert system.latch.ctt.is_domain_tainted(0x1000)
        assert system.access(0x1000) == CheckLevel.PRECISE
        # Clearing the last tags releases the domain immediately (Fig 12).
        system.write_tags(0x1000, b"\x00\x00")
        assert not system.latch.ctt.is_domain_tainted(0x1000)
        assert system.access(0x1000) in (CheckLevel.TLB, CheckLevel.CTC)

    def test_partial_clear_keeps_domain(self):
        system = HLatchSystem()
        system.write_tags(0x1000, b"\x01\x01")
        system.write_tags(0x1000, b"\x00")  # one byte still tainted
        assert system.latch.ctt.is_domain_tainted(0x1000)

    def test_load_taint_from_layout(self):
        layout = TaintLayout(extents=[(0x2000, 8)], accessed_pages={2})
        system = HLatchSystem()
        system.load_taint(layout)
        assert system.shadow.all_tainted(0x2000, 8)
        assert system.access(0x2000) == CheckLevel.PRECISE


class TestTable6Shape:
    """Qualitative Table 6/7 claims on generated workloads."""

    def _reports(self, name, window=150_000):
        generator = WorkloadGenerator(get_profile(name))
        trace = generator.access_trace(window)
        return run_hlatch(trace), run_baseline(trace)

    def test_filtering_eliminates_most_misses(self):
        for name in ("bzip2", "gcc", "mcf", "curl", "mySQL"):
            hlatch, baseline = self._reports(name)
            assert hlatch.misses_avoided_percent(baseline.misses) > 90, name

    def test_astar_is_the_outlier(self):
        astar_h, astar_b = self._reports("astar")
        gcc_h, gcc_b = self._reports("gcc")
        assert astar_h.combined_miss_percent > gcc_h.combined_miss_percent
        assert astar_h.misses_avoided_percent(
            astar_b.misses
        ) < gcc_h.misses_avoided_percent(gcc_b.misses)

    def test_tlb_deflects_most_accesses_for_low_taint(self):
        hlatch, _ = self._reports("bzip2")
        assert hlatch.resolution_split()["tlb"] > 0.9

    def test_combined_miss_far_below_baseline(self):
        for name in ("sphinx", "apache"):
            hlatch, baseline = self._reports(name)
            assert hlatch.combined_miss_percent < baseline.miss_percent / 2, name
