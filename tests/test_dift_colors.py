"""Taint-colour tests: per-source tags and alert provenance."""

import pytest

from repro.dift.colors import OVERFLOW_COLOR, ColorAllocator, colors_in_tags
from repro.dift.engine import DIFTEngine
from repro.dift.policy import TaintPolicy
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import DeviceTable, VirtualFile
from repro.machine.events import InputEvent


class TestAllocator:
    def test_stable_assignment(self):
        allocator = ColorAllocator()
        first = allocator.tag_for("a.txt")
        second = allocator.tag_for("b.txt")
        assert first != second
        assert allocator.tag_for("a.txt") == first
        assert allocator.allocated == 2

    def test_tags_nonzero(self):
        allocator = ColorAllocator()
        assert allocator.tag_for("x") != 0

    def test_name_lookup(self):
        allocator = ColorAllocator()
        tag = allocator.tag_for("socket:peer-1")
        assert allocator.name_for(tag) == "socket:peer-1"
        assert allocator.name_for(0) == "<untainted>"

    def test_overflow_pooling(self):
        allocator = ColorAllocator()
        for index in range(300):
            allocator.tag_for(f"source-{index}")
        assert allocator.tag_for("source-299") == OVERFLOW_COLOR
        assert allocator.name_for(OVERFLOW_COLOR) == "<multiple-sources>"

    def test_names_for_sequence(self):
        allocator = ColorAllocator()
        a = allocator.tag_for("a")
        b = allocator.tag_for("b")
        assert allocator.names_for([0, a, b, a]) == ["a", "b"]

    def test_colors_in_tags(self):
        assert colors_in_tags(b"\x00\x02\x00\x05\x02") == {2, 5}


class TestColouredEngine:
    def _input(self, name, address, data=b"xy"):
        return InputEvent(
            step_index=0,
            address=address,
            data=data,
            source_kind="file",
            source_name=name,
            tainted_hint=True,
        )

    def test_sources_get_distinct_tags(self):
        engine = DIFTEngine(TaintPolicy(color_by_source=True))
        engine.on_input(self._input("alpha", 0x100))
        engine.on_input(self._input("beta", 0x200))
        assert engine.shadow.get(0x100) != engine.shadow.get(0x200)
        assert engine.shadow.get(0x100) != 0

    def test_default_policy_uses_single_tag(self):
        engine = DIFTEngine()
        engine.on_input(self._input("alpha", 0x100))
        engine.on_input(self._input("beta", 0x200))
        assert engine.shadow.get(0x100) == engine.shadow.get(0x200) == 1

    def test_alert_attributes_source(self):
        source = """
        .data
p: .asciiz "evil.bin"
b: .space 8
        .text
_start:
    li r3, 3
    li r4, p
    syscall
    mv r10, r3
    li r3, 1
    mv r4, r10
    li r5, b
    li r6, 4
    syscall
    li r8, b
    lw r9, 0(r8)
    jalr r1, 0(r9)
    halt
"""
        devices = DeviceTable()
        devices.register_file(VirtualFile("evil.bin", b"\x00\x20\x00\x00"))
        cpu = CPU(assemble(source), devices=devices)
        engine = DIFTEngine(TaintPolicy(color_by_source=True))
        cpu.attach(engine)
        try:
            cpu.run(1000)
        except Exception:
            pass
        assert engine.alerts
        assert "evil.bin" in engine.alerts[0].detail

    def test_colours_survive_propagation(self):
        engine = DIFTEngine(TaintPolicy(color_by_source=True))
        engine.on_input(self._input("alpha", 0x100, b"\x01\x02\x03\x04"))
        tag = engine.shadow.get(0x100)
        # Propagate through a load: the register tags carry the colour.
        from repro.isa.instructions import Instruction, Opcode
        from repro.machine.events import MemoryAccess, StepEvent

        engine.on_step(
            StepEvent(
                index=0,
                pc=0,
                instruction=Instruction(Opcode.LW, rd=5, rs1=1, imm=0),
                regs_read=(1,),
                regs_written=(5,),
                reads=(MemoryAccess(0x100, 4, False),),
                next_pc=4,
            )
        )
        assert set(engine.trf.get(5)) == {tag}
        assert engine.colors.names_for(engine.trf.get(5)) == ["alpha"]
