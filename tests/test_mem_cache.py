"""Set-associative cache model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import CacheStats, SetAssociativeCache


class TestGeometry:
    def test_capacity(self):
        cache = SetAssociativeCache(num_sets=4, ways=2, line_size=16)
        assert cache.capacity_lines == 8
        assert cache.capacity_bytes == 128

    def test_line_base(self):
        cache = SetAssociativeCache(num_sets=1, ways=1, line_size=64)
        assert cache.line_base(0x12F) == 0x100
        assert cache.line_base(0x100) == 0x100

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=0, ways=1, line_size=16)
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=1, ways=1, line_size=3)
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=1, ways=1, line_size=16, policy="mru")


class TestHitsAndMisses:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(num_sets=1, ways=4, line_size=16)
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.access(0x10F)  # same line
        assert not cache.access(0x110)  # next line

    def test_stats_counted(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00)
        cache.access(0x00)
        cache.access(0x10)
        stats = cache.stats
        assert (stats.accesses, stats.hits, stats.misses) == (3, 1, 2)
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_idle_rates_are_zero(self):
        assert CacheStats().miss_rate == 0.0
        assert CacheStats().hit_rate == 0.0

    def test_loader_supplies_payload_on_miss(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x20, loader=lambda base: f"line@{base:#x}")
        assert cache.probe(0x2F).payload == "line@0x20"

    def test_write_marks_dirty(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00, write=True)
        assert cache.probe(0x00).dirty

    def test_set_indexing_separates_conflicts(self):
        cache = SetAssociativeCache(num_sets=2, ways=1, line_size=16)
        cache.access(0x00)  # set 0
        cache.access(0x10)  # set 1
        assert cache.access(0x00)
        assert cache.access(0x10)


class TestReplacement:
    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00)
        cache.access(0x10)
        cache.access(0x00)  # refresh line 0
        cache.access(0x20)  # evicts line 1 (LRU)
        assert cache.access(0x00)
        assert not cache.access(0x10)

    def test_fifo_evicts_oldest_insertion(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16, policy="fifo")
        cache.access(0x00)
        cache.access(0x10)
        cache.access(0x00)  # re-use does NOT protect under FIFO
        cache.access(0x20)  # evicts line 0
        assert not cache.access(0x00)

    def test_random_policy_deterministic_with_seed(self):
        def victims(seed):
            cache = SetAssociativeCache(
                num_sets=1, ways=2, line_size=16, policy="random", rng_seed=seed
            )
            evicted = []
            cache.on_evict = lambda base, line: evicted.append(base)
            for address in range(0, 0x100, 0x10):
                cache.access(address)
            return evicted

        assert victims(1) == victims(1)

    def test_eviction_callback_receives_base_address(self):
        evicted = []
        cache = SetAssociativeCache(
            num_sets=1,
            ways=1,
            line_size=32,
            on_evict=lambda base, line: evicted.append(base),
        )
        cache.access(0x40)
        cache.access(0x80)
        assert evicted == [0x40]

    def test_writeback_counted_for_dirty_victims(self):
        cache = SetAssociativeCache(num_sets=1, ways=1, line_size=16)
        cache.access(0x00, write=True)
        cache.access(0x10)
        assert cache.stats.writebacks == 1


class TestMutation:
    def test_install_does_not_count_access(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.install(0x00, payload="p")
        assert cache.stats.accesses == 0
        assert cache.probe(0x00).payload == "p"

    def test_install_updates_existing(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00, loader=lambda b: "old")
        cache.install(0x00, payload="new")
        assert cache.probe(0x00).payload == "new"

    def test_invalidate(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00)
        assert cache.invalidate(0x00)
        assert not cache.invalidate(0x00)
        assert 0x00 not in cache

    def test_flush_keeps_stats(self):
        cache = SetAssociativeCache(num_sets=1, ways=2, line_size=16)
        cache.access(0x00)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.stats.accesses == 1


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=8),
    )
    def test_counters_are_consistent(self, addresses, sets, ways):
        cache = SetAssociativeCache(num_sets=sets, ways=ways, line_size=16)
        for address in addresses:
            cache.access(address)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(addresses)
        assert cache.resident_lines() <= cache.capacity_lines
        assert stats.evictions == stats.misses - cache.resident_lines()

    @given(st.lists(st.integers(min_value=0, max_value=0x1FF), min_size=2, max_size=100))
    def test_repeat_of_previous_address_hits_with_enough_ways(self, addresses):
        # A fully associative cache larger than the address universe
        # never evicts, so any repeated line must hit.
        cache = SetAssociativeCache(num_sets=1, ways=64, line_size=16)
        seen = set()
        for address in addresses:
            line = cache.line_base(address)
            expected_hit = line in seen
            assert cache.access(address) == expected_hit
            seen.add(line)
