"""Virtual device tests: files, sockets, listeners, descriptor table."""

from repro.machine.devices import (
    DeviceTable,
    ListeningSocket,
    VirtualFile,
    VirtualSocket,
)


class TestVirtualFile:
    def test_read_advances_cursor(self):
        file = VirtualFile("f", b"abcdef")
        assert file.read(3) == b"abc"
        assert file.read(3) == b"def"
        assert file.read(3) == b""
        assert file.exhausted

    def test_short_read_at_end(self):
        file = VirtualFile("f", b"xy")
        assert file.read(10) == b"xy"

    def test_write_appends(self):
        file = VirtualFile("f", b"")
        assert file.write(b"one") == 3
        file.write(b"two")
        assert bytes(file.written) == b"onetwo"

    def test_tainted_default_true(self):
        assert VirtualFile("f").tainted


class TestVirtualSocket:
    def test_recv_drains_one_message_at_a_time(self):
        sock = VirtualSocket(peer="p", inbound=[b"first", b"second"])
        assert sock.recv(64) == b"first"
        assert sock.recv(64) == b"second"
        assert sock.recv(64) == b""

    def test_partial_recv_within_message(self):
        sock = VirtualSocket(peer="p", inbound=[b"abcdef"])
        assert sock.recv(2) == b"ab"
        assert sock.recv(10) == b"cdef"

    def test_recv_never_merges_messages(self):
        sock = VirtualSocket(peer="p", inbound=[b"ab", b"cd"])
        assert sock.recv(4) == b"ab"

    def test_send_recorded(self):
        sock = VirtualSocket(peer="p")
        sock.send(b"reply")
        assert sock.sent == [b"reply"]

    def test_has_data(self):
        sock = VirtualSocket(peer="p", inbound=[b"x"])
        assert sock.has_data
        sock.recv(1)
        assert not sock.has_data


class TestListeningSocket:
    def test_accept_pops_in_order(self):
        a, b = VirtualSocket(peer="a"), VirtualSocket(peer="b")
        listener = ListeningSocket(name="l", pending=[a, b])
        assert listener.accept() is a
        assert listener.accept() is b
        assert listener.accept() is None


class TestDeviceTable:
    def test_open_registered_file(self):
        table = DeviceTable()
        file = VirtualFile("data.txt", b"hi")
        table.register_file(file)
        fd = table.open_file("data.txt")
        assert table.get(fd) is file

    def test_unknown_file_raises(self):
        table = DeviceTable()
        try:
            table.open_file("missing")
            assert False
        except KeyError:
            pass

    def test_fds_are_unique_and_nonzero(self):
        table = DeviceTable()
        fd1 = table.allocate(object())
        fd2 = table.allocate(object())
        assert fd1 != fd2
        assert fd1 != DeviceTable.CONSOLE_FD

    def test_close(self):
        table = DeviceTable()
        fd = table.allocate(object())
        assert table.close(fd)
        assert table.get(fd) is None
        assert not table.close(fd)
