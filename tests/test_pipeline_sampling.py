"""Selective tracing: the HardTaint-style coverage/overhead dial.

Sampling deliberately trades *coverage* for producer overhead.  The
contract these tests pin down:

* rate == 1.0 is bit-identical to the unsampled pipeline;
* a fixed (rate, window, seed) triple is fully deterministic;
* what sampling drops only ever *shrinks* the tainted set (monitored
  events are still analysed exactly — no spurious taint, no corruption
  of the events that are kept);
* control (INPUT/OUTPUT) events bypass sampling, so sources and sinks
  are never silently lost.
"""

import pytest

from repro.pipeline import PipelineConfig, SamplingConfig, StreamingPipeline
from repro.workloads import programs

from tests.test_pipeline import run_pipeline, run_reference, signature


def run_sampled(build, rate, window=32, seed=0, **config_kwargs):
    scenario = build()
    cpu = scenario.make_cpu()
    pipeline = StreamingPipeline(cpu, config=PipelineConfig(
        sampling=SamplingConfig(rate=rate, window=window, seed=seed),
        **config_kwargs,
    ))
    cpu.run(300_000)
    pipeline.finish()
    return pipeline


class TestConfigValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            SamplingConfig(rate=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(rate=1.5)
        with pytest.raises(ValueError):
            SamplingConfig(window=0)

    def test_active_flag(self):
        assert not SamplingConfig(rate=1.0).active
        assert SamplingConfig(rate=0.5).active


class TestFullRate:
    def test_rate_one_is_bit_identical_to_unsampled(self):
        sampled = run_sampled(lambda: programs.file_filter(), rate=1.0)
        plain = run_pipeline(lambda: programs.file_filter(), None)
        assert sampled.stats.sampled_out == 0
        assert sampled.stats.enqueued == plain.stats.enqueued
        assert signature(sampled.engine) == signature(plain.engine)
        reference = run_reference(lambda: programs.file_filter(), None)
        assert signature(sampled.engine) == signature(reference)


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_fixed_seed_replays_identical_coverage(self, backend):
        first = run_sampled(
            lambda: programs.echo_server(), rate=0.3, window=32, seed=9,
            backend=backend,
        )
        second = run_sampled(
            lambda: programs.echo_server(), rate=0.3, window=32, seed=9,
            backend=backend,
        )
        assert first.stats.enqueued == second.stats.enqueued
        assert first.stats.sampled_out == second.stats.sampled_out
        assert first.sampler.windows == second.sampler.windows
        assert first.sampler.windows_skipped == second.sampler.windows_skipped
        assert signature(first.engine) == signature(second.engine)

    def test_different_seeds_usually_differ(self):
        runs = {
            seed: run_sampled(
                lambda: programs.echo_server(), rate=0.5, window=8, seed=seed,
            ).stats.sampled_out
            for seed in (1, 2, 3, 4)
        }
        assert len(set(runs.values())) > 1, (
            f"four seeds produced identical coverage {runs} — the seed "
            "is not reaching the decision stream"
        )


class TestCoverageLoss:
    def test_low_rate_only_shrinks_the_tainted_set(self):
        reference = run_reference(lambda: programs.echo_server(), None)
        sampled = run_sampled(
            lambda: programs.echo_server(), rate=0.2, window=16, seed=3,
        )
        assert sampled.stats.sampled_out > 0
        reference_bytes = set(reference.shadow.iter_tainted_bytes())
        sampled_bytes = set(sampled.engine.shadow.iter_tainted_bytes())
        assert sampled_bytes <= reference_bytes

    def test_sampled_out_counted_and_published(self):
        sampled = run_sampled(
            lambda: programs.echo_server(), rate=0.2, window=16, seed=3,
        )
        snapshot = sampled.snapshot()
        assert snapshot.get("pipeline.events.sampled_out") == (
            sampled.stats.sampled_out
        )
        assert snapshot.get("pipeline.sampling.rate") == pytest.approx(0.2)
        assert snapshot.get("pipeline.sampling.windows_skipped") == (
            sampled.sampler.windows_skipped
        )

    def test_control_events_bypass_sampling(self):
        """Even at the lowest rate, sources and sinks are all delivered."""
        plain = run_pipeline(lambda: programs.echo_server(), None)
        sampled = run_sampled(
            lambda: programs.echo_server(), rate=0.01, window=4, seed=0,
        )
        assert sampled.stats.control_events == plain.stats.control_events
        assert sampled.stats.control_drained == sampled.stats.control_events
