"""The production workload zoo: engines, schedules, replay, registry."""

import dataclasses

import numpy as np
import pytest

from repro.trace import columnar_trace_bytes, save_columnar_trace
from repro.workloads import (
    SERVICE_PROFILES,
    SERVICE_SUITE,
    DynamicWorkload,
    KeyValueWorkload,
    Phase,
    PhaseSchedule,
    TraceReplayWorkload,
    WorkloadGenerator,
    all_profiles,
    bursty_schedule,
    characterize,
    diurnal_schedule,
    engine_schedule,
    get_profile,
    make_generator,
    storm_schedule,
)
from repro.workloads.suites import EXPERIMENT_SUITES, iter_generators

EPOCH_SCALE = 300_000
TRACE_WINDOW = 15_000

_TRACE_COLUMNS = (
    "addresses", "sizes", "is_write", "tainted", "gap_before",
    "active_epoch",
)


@pytest.fixture(params=SERVICE_SUITE)
def engine(request):
    return make_generator(request.param, seed=11)


class TestEngineProperties:
    def test_epoch_stream_sums_exactly(self, engine):
        stream = engine.epoch_stream(EPOCH_SCALE)
        assert int(stream.lengths.sum()) == EPOCH_SCALE
        assert (stream.lengths >= 1).all()
        assert (stream.tainted_counts >= 0).all()
        assert (stream.tainted_counts <= stream.lengths).all()

    def test_trace_matches_layout_ground_truth(self, engine):
        trace = engine.access_trace(TRACE_WINDOW)
        layout = engine.layout()
        assert np.array_equal(
            trace.tainted, layout.bytes_tainted(trace.addresses)
        )
        # No tainted access outside a taint-active epoch, no negative
        # gaps, only architectural access sizes.
        assert not (trace.tainted & ~trace.active_epoch).any()
        assert (trace.gap_before >= 0).all()
        assert set(np.unique(trace.sizes).tolist()) <= {1, 2, 4}

    def test_coarse_flags_never_miss_taint(self, engine):
        trace = engine.access_trace(TRACE_WINDOW)
        for domain in (64, 4096):
            assert not (trace.tainted & ~trace.coarse_flags(domain)).any()

    def test_deterministic_by_seed(self, engine):
        twin = make_generator(engine.profile.name, seed=11)
        stream, twin_stream = (
            engine.epoch_stream(EPOCH_SCALE), twin.epoch_stream(EPOCH_SCALE)
        )
        assert np.array_equal(stream.lengths, twin_stream.lengths)
        assert np.array_equal(
            stream.tainted_counts, twin_stream.tainted_counts
        )
        trace, twin_trace = (
            engine.access_trace(TRACE_WINDOW), twin.access_trace(TRACE_WINDOW)
        )
        for column in _TRACE_COLUMNS:
            assert np.array_equal(
                getattr(trace, column), getattr(twin_trace, column)
            )

    def test_different_seeds_diverge(self, engine):
        other = make_generator(engine.profile.name, seed=12)
        assert not np.array_equal(
            engine.access_trace(TRACE_WINDOW).addresses,
            other.access_trace(TRACE_WINDOW).addresses,
        )

    def test_taint_fraction_tracks_profile(self, engine):
        stream = engine.epoch_stream(1_000_000)
        target = engine.profile.taint_percent / 100.0
        assert stream.tainted_fraction == pytest.approx(target, rel=0.15)


class TestServiceShape:
    def test_kv_hot_key_skew(self):
        # Zipf assignment concentrates tainted traffic: the hottest
        # extent must see far more than a uniform share.
        engine = make_generator("kv-cache", seed=2)
        trace = engine.access_trace(60_000)
        layout = engine.layout()
        starts = np.array([s for s, _ in layout.extents], dtype=np.int64)
        tainted_addresses = trace.addresses[trace.tainted]
        owner = np.searchsorted(starts, tainted_addresses, side="right") - 1
        counts = np.bincount(owner, minlength=len(starts))
        assert counts.max() > 3 * counts.mean()

    def test_parse_buffer_ring_balances_traffic(self):
        # Ring assignment recycles buffers evenly — the opposite of the
        # kv engine's Zipf skew — and the sequential scan walks every
        # byte of each recycled buffer.
        engine = make_generator("http-parse", seed=5)
        # A window wide enough for ~10 requests (600 marks each).
        trace = engine.access_trace(400_000)
        layout = engine.layout()
        starts = np.array([s for s, _ in layout.extents], dtype=np.int64)
        tainted_addresses = trace.addresses[trace.tainted]
        owner = np.searchsorted(starts, tainted_addresses, side="right") - 1
        counts = np.bincount(owner, minlength=len(starts))
        used = counts[counts > 0]
        assert len(used) > 5
        assert used.max() < 4 * used.mean()
        # Full byte coverage of at least one scanned buffer.
        hottest = int(np.argmax(counts))
        span = layout.extents[hottest][1]
        touched = np.unique(tainted_addresses[owner == hottest])
        assert len(touched) == span

    def test_img_serve_is_mostly_clean(self):
        engine = make_generator("img-serve", seed=1)
        trace = engine.access_trace(40_000)
        assert trace.tainted_access_count < 0.05 * trace.access_count


class TestPhaseSchedules:
    def test_spans_must_partition_the_run(self):
        with pytest.raises(ValueError):
            PhaseSchedule("bad", (Phase("a", 0.5),))
        with pytest.raises(ValueError):
            PhaseSchedule("bad", (Phase("a", 0.0), Phase("b", 1.0)))
        with pytest.raises(ValueError):
            PhaseSchedule("bad", ())

    def test_split_budget_is_exact(self):
        for schedule in (bursty_schedule(), diurnal_schedule(),
                         storm_schedule()):
            for total in (1, 7, 1000, 123_457):
                budget = schedule.split_budget(total)
                assert sum(budget) == total
                assert all(part >= 0 for part in budget)

    def test_offsets_land_inside_phase_windows(self):
        import random

        schedule = storm_schedule()
        offsets = schedule.offsets(500, 10.0, random.Random(3))
        assert len(offsets) == 500
        assert all(0.0 <= offset <= 10.0 for offset in offsets)
        # The storm phase (3x intensity over a 0.2 span) outdraws its
        # span share of clients.
        storm = sum(1 for o in offsets if 4.0 <= o <= 6.0)
        assert storm > 500 * 0.2

    def test_storm_multiplies_taint(self):
        calm = make_generator("kv-cache", seed=4).epoch_stream(400_000)
        storm = make_generator("kv-storm", seed=4).epoch_stream(400_000)
        assert storm.tainted_fraction > 1.5 * calm.tainted_fraction


class TestDynamicWorkload:
    def test_phases_share_one_layout(self):
        dynamic = make_generator("kv-bursty", seed=9)
        trace = dynamic.access_trace(30_000)
        assert np.array_equal(
            trace.tainted, dynamic.layout().bytes_tainted(trace.addresses)
        )

    def test_custom_schedule_wrapping(self):
        base = get_profile("kv-cache")
        schedule = PhaseSchedule("halves", (
            Phase("cold", 0.5, taint_scale=0.0),
            Phase("hot", 0.5, taint_scale=2.0),
        ))
        dynamic = DynamicWorkload(KeyValueWorkload, base, schedule, seed=3)
        stream = dynamic.epoch_stream(200_000)
        assert int(stream.lengths.sum()) == 200_000
        # The cold half emits no taint at all.
        boundary = np.searchsorted(np.cumsum(stream.lengths), 100_000)
        assert int(stream.tainted_counts[:boundary].sum()) == 0
        assert int(stream.tainted_counts[boundary:].sum()) > 0


class TestTraceReplay:
    @pytest.fixture()
    def recorded(self):
        return make_generator("http-parse", seed=21).access_trace(12_000)

    def test_one_x_replay_is_bit_identical(self, recorded, tmp_path):
        path = tmp_path / "parse.ltrace"
        save_columnar_trace(recorded, path)
        replay = TraceReplayWorkload(str(path))
        replayed = replay.access_trace(recorded.total_instructions)
        for column in _TRACE_COLUMNS:
            assert np.array_equal(
                getattr(recorded, column), getattr(replayed, column)
            )

    def test_tiling_hits_exact_totals(self, recorded):
        replay = TraceReplayWorkload(columnar_trace_bytes(recorded))
        for total in (123, recorded.total_instructions // 3,
                      2 * recorded.total_instructions + 17):
            stream = replay.epoch_stream(total)
            assert int(stream.lengths.sum()) == total
            assert (stream.lengths >= 1).all()
            trace = replay.access_trace(total)
            assert trace.total_instructions == total
            assert (trace.gap_before >= 0).all()

    def test_synthesized_profile_is_valid(self, recorded):
        replay = TraceReplayWorkload(columnar_trace_bytes(recorded))
        profile = replay.profile
        assert profile.kind == "replay"
        assert sum(profile.epoch_weights) == pytest.approx(1.0)
        assert profile.pages_tainted <= profile.pages_accessed
        assert profile.taint_percent == pytest.approx(
            100.0 * recorded.tainted_access_count
            / recorded.total_instructions,
            rel=0.05,
        )

    def test_ltrace_prefix_dispatch(self, recorded, tmp_path):
        path = tmp_path / "parse.ltrace"
        save_columnar_trace(recorded, path)
        generator = make_generator(f"ltrace:{path}")
        assert generator.profile.kind == "replay"


class TestRegistry:
    def test_profiles_registered_everywhere(self):
        names = {profile.name for profile in all_profiles()}
        assert set(SERVICE_SUITE) <= names
        for profile in SERVICE_PROFILES:
            assert get_profile(profile.name) is profile

    def test_zoo_suite_expands(self):
        groups = EXPERIMENT_SUITES["zoo"]
        workloads = {name for _, suite in groups for name in suite}
        assert workloads == set(SERVICE_SUITE)
        assert {kind for kind, _ in groups} == {
            "taint_fraction", "page_taint", "hlatch",
        }

    def test_iter_generators_dispatches_engines(self):
        pairs = dict(iter_generators(("gcc", "kv-cache"), seed=1))
        assert type(pairs["gcc"]) is WorkloadGenerator
        assert isinstance(pairs["kv-cache"], KeyValueWorkload)

    def test_make_generator_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_generator("no-such-workload")

    def test_make_generator_accepts_profile_objects(self):
        custom = dataclasses.replace(
            get_profile("kv-cache"), name="kv-cache", taint_percent=4.8
        )
        generator = make_generator(custom, seed=0)
        assert isinstance(generator, KeyValueWorkload)
        assert generator.profile.taint_percent == 4.8

    def test_engine_schedule_lookup(self):
        assert engine_schedule("kv-bursty").name == "bursty"
        with pytest.raises(KeyError):
            engine_schedule("kv-cache")


class TestCharacterize:
    def test_zoo_rows(self):
        rows = characterize(
            SERVICE_SUITE, epoch_scale=100_000, trace_window=5_000
        )
        assert set(rows) == set(SERVICE_SUITE)
        for row in rows.values():
            assert row["epochs"] >= 1
            assert row["requests"] >= 1
            assert 0.0 < row["taint_percent"] < 100.0
            assert row["pages_tainted"] <= row["pages_accessed"]


class TestRunnerIntegration:
    def test_engine_profile_through_runner_jobs(self):
        from repro.runner import JobSpec, Runner, RunnerConfig

        runner = Runner(config=RunnerConfig(max_workers=1))
        results = runner.run([
            JobSpec.make("taint_fraction", "kv-cache", epoch_scale=50_000),
            JobSpec.make("page_taint", "kv-bursty"),
            JobSpec.make("hlatch", "http-parse", trace_window=2_000),
        ])
        for result in results.values():
            assert result.ok, result.error
