"""Reuse-distance tests, including equivalence with the LRU cache model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.reuse import (
    COLD,
    ReuseProfile,
    lru_hit_rate,
    reuse_distances,
)
from repro.mem.cache import SetAssociativeCache


class TestDistances:
    def test_first_touch_is_cold(self):
        distances = reuse_distances(np.array([0, 16, 32]), granularity=16)
        assert (distances == COLD).all()

    def test_immediate_reuse_distance_zero(self):
        distances = reuse_distances(np.array([0, 0]), granularity=16)
        assert distances[1] == 0

    def test_one_intervening_granule(self):
        distances = reuse_distances(np.array([0, 16, 0]), granularity=16)
        assert distances[2] == 1

    def test_duplicate_intervening_counts_once(self):
        # A B B A: only one distinct granule between the As.
        distances = reuse_distances(np.array([0, 16, 16, 0]), granularity=16)
        assert distances[3] == 1

    def test_same_line_different_bytes(self):
        distances = reuse_distances(np.array([0, 5, 15]), granularity=16)
        assert distances[1] == 0 and distances[2] == 0

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            reuse_distances(np.array([0]), granularity=0)


class TestHitRate:
    def test_cold_accesses_never_hit(self):
        distances = np.array([COLD, COLD, 0, 5])
        assert lru_hit_rate(distances, capacity_lines=8) == pytest.approx(0.5)

    def test_capacity_threshold(self):
        distances = np.array([3, 4])
        assert lru_hit_rate(distances, 4) == pytest.approx(0.5)
        assert lru_hit_rate(distances, 5) == pytest.approx(1.0)

    def test_empty(self):
        assert lru_hit_rate(np.array([], dtype=np.int64), 4) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=0x7FF),
            min_size=1,
            max_size=250,
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_predicts_fully_associative_lru_exactly(self, addresses, capacity):
        """The stack-distance prediction equals a real LRU simulation."""
        array = np.array(addresses, dtype=np.int64)
        distances = reuse_distances(array, granularity=16)
        predicted = lru_hit_rate(distances, capacity)

        cache = SetAssociativeCache(num_sets=1, ways=capacity, line_size=16)
        for address in addresses:
            cache.access(int(address))
        simulated = cache.stats.hit_rate
        assert predicted == pytest.approx(simulated)


class TestProfile:
    def test_histogram_partitions_accesses(self):
        trace = np.array([0, 0, 16, 0, 512, 0] * 10, dtype=np.int64)
        distances = reuse_distances(trace, granularity=16)
        profile = ReuseProfile.from_distances(distances, granularity=16)
        assert sum(profile.histogram.values()) == profile.accesses
        assert 0.0 <= profile.cold_fraction <= 1.0

    def test_workload_locality_ordering(self):
        """Hot-loop traffic has shorter reuse distances than scans."""
        hot = np.tile(np.arange(0, 64, 4, dtype=np.int64), 50)
        scan = np.arange(0, 12800, 4, dtype=np.int64)
        hot_profile = ReuseProfile.from_distances(
            reuse_distances(hot, 16), 16
        )
        scan_profile = ReuseProfile.from_distances(
            reuse_distances(scan, 16), 16
        )
        assert hot_profile.cold_fraction < scan_profile.cold_fraction
