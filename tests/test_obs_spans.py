"""Span tracing: context propagation, flight recorder, shard safety.

Covers the cross-process tracing contract end to end: spans nest and
carry parent/trace ids, a :class:`TraceContext` survives the wire, the
flight recorder dumps on crash and SIGTERM, shard files tolerate
truncated tails, and a traced runner run (serial *and* pool) produces a
healthy span tree whose worker spans hang under the scheduler's job
spans — with bit-identical results to an untraced run.
"""

import json
import os
import signal

import pytest

from repro.obs import (
    FlightRecorder,
    SpanTracer,
    TraceContext,
    Tracer,
)
from repro.obs.chrometrace import merge_shards, validate_spans
from repro.obs.spans import activate, current_tracer, emit_event, maybe_span
from repro.obs.tracer import read_jsonl
from repro.runner import (
    ResultCache,
    Runner,
    RunnerConfig,
    TraceCache,
    suite_jobs,
)

EPOCH_SCALE = 120_000
TRACE_WINDOW = 3_000


def _smoke_jobs(seed=0):
    return suite_jobs(
        "smoke", epoch_scale=EPOCH_SCALE, trace_window=TRACE_WINDOW, seed=seed
    )


def _deterministic_tracer(sink, prefix="s", **kwargs):
    wall = iter(float(i) for i in range(1, 1000))
    mono = iter(float(i) for i in range(1, 1000))
    ids = iter(f"{prefix}{i:03d}" for i in range(1000))
    return SpanTracer(
        sink,
        wall_clock=lambda: next(wall),
        mono_clock=lambda: next(mono),
        id_factory=lambda: next(ids),
        pid=4242,
        **kwargs,
    )


class TestTraceContext:
    def test_wire_roundtrip(self):
        context = TraceContext(trace_id="abc123", span_id="def456")
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_wire_roundtrip_without_span(self):
        context = TraceContext.new()
        wire = context.to_wire()
        assert "span_id" not in wire
        assert TraceContext.from_wire(wire) == context

    def test_from_wire_rejects_garbage(self):
        with pytest.raises(ValueError):
            TraceContext.from_wire("not a dict")
        with pytest.raises(ValueError):
            TraceContext.from_wire({"span_id": "x"})  # no trace_id

    def test_new_contexts_are_distinct(self):
        assert TraceContext.new().trace_id != TraceContext.new().trace_id


class TestSpanTracer:
    def test_nested_spans_carry_parent_chain(self):
        sink = Tracer()
        spans = _deterministic_tracer(sink)
        with spans.span("outer") as outer:
            with spans.span("inner") as inner:
                spans.event("tick", detail=1)
        records = sink.records()
        begins = {r["name"]: r for r in records if r["type"] == "span_begin"}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == outer.span_id
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["span"] == inner.span_id
        assert {r["trace"] for r in records} == {spans.trace_id}
        assert {r["pid"] for r in records} == {4242}

    def test_close_records_duration_and_fields(self):
        sink = Tracer()
        spans = _deterministic_tracer(sink)
        handle = spans.begin("job", kind="async", job="hlatch:gcc")
        spans.finish(handle, status="ok")
        begin, close = sink.records()
        assert begin["kind"] == "async"
        assert begin["job"] == "hlatch:gcc"
        assert close["type"] == "span_close"
        assert close["status"] == "ok"
        assert close["duration"] == pytest.approx(1.0)  # ticks 1 -> 2

    def test_finish_is_idempotent(self):
        sink = Tracer()
        spans = _deterministic_tracer(sink)
        handle = spans.begin("job")
        spans.finish(handle)
        spans.finish(handle)
        assert len(sink.records()) == 2

    def test_manual_spans_overlap_freely(self):
        sink = Tracer()
        spans = _deterministic_tracer(sink)
        first = spans.begin("job", kind="async")
        second = spans.begin("job", kind="async")
        spans.finish(first)
        spans.finish(second)
        assert first.span_id != second.span_id
        assert validate_spans(sink.records()) == []

    def test_context_resumes_across_tracers(self):
        scheduler_sink = Tracer()
        scheduler = _deterministic_tracer(scheduler_sink)
        handle = scheduler.begin("runner.job", kind="async")
        wire = scheduler.context(handle).to_wire()

        worker_sink = Tracer()
        worker = _deterministic_tracer(
            worker_sink, prefix="w", context=TraceContext.from_wire(wire)
        )
        with worker.span("worker.job"):
            pass
        scheduler.finish(handle)

        merged = scheduler_sink.records() + worker_sink.records()
        assert validate_spans(merged) == []
        worker_begin = [
            r for r in worker_sink.records() if r["type"] == "span_begin"
        ][0]
        assert worker_begin["parent"] == handle.span_id
        assert worker_begin["trace"] == scheduler.trace_id


class TestAmbientTracing:
    def test_no_active_tracer_is_a_noop(self):
        assert current_tracer() is None
        with maybe_span("anything") as handle:
            assert handle is None
        emit_event("anything")  # must not raise

    def test_activate_routes_to_tracer(self):
        sink = Tracer()
        spans = _deterministic_tracer(sink)
        with activate(spans) as active:
            assert current_tracer() is active
            with maybe_span("phase", workload="gcc") as handle:
                assert handle is not None
                emit_event("kernels.batch", items=7)
        assert current_tracer() is None
        names = [r["name"] for r in sink.records()]
        assert names == ["phase", "kernels.batch", "phase"]

    def test_activation_nests(self):
        a = _deterministic_tracer(Tracer())
        b = _deterministic_tracer(Tracer())
        with activate(a):
            with activate(b):
                assert current_tracer() is b
            assert current_tracer() is a


class TestFlightRecorder:
    def test_ring_drops_oldest(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record({"n": index})
        assert [r["n"] for r in flight.snapshot()] == [2, 3, 4]
        assert flight.dropped == 2
        assert len(flight) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_is_self_describing(self, tmp_path):
        path = tmp_path / "flight.1.json"
        flight = FlightRecorder(capacity=2, path=str(path))
        flight.record({"n": 1})
        written = flight.dump(reason="unit-test")
        payload = json.loads(path.read_text())
        assert written == str(path)
        assert payload["reason"] == "unit-test"
        assert payload["pid"] == os.getpid()
        assert payload["dropped"] == 0
        assert payload["records"] == [{"n": 1}]

    def test_dump_without_path_raises(self):
        with pytest.raises(ValueError):
            FlightRecorder().dump()

    def test_guard_dumps_on_exception_and_reraises(self, tmp_path):
        path = tmp_path / "flight.2.json"
        flight = FlightRecorder(path=str(path))
        flight.record({"n": 7})
        with pytest.raises(RuntimeError, match="boom"):
            with flight.guard("job x"):
                raise RuntimeError("boom")
        payload = json.loads(path.read_text())
        assert "boom" in payload["reason"]
        assert "job x" in payload["reason"]

    def test_guard_without_failure_writes_nothing(self, tmp_path):
        path = tmp_path / "flight.3.json"
        with FlightRecorder(path=str(path)).guard("quiet"):
            pass
        assert not path.exists()

    def test_sigterm_dumps_then_exits(self, tmp_path):
        path = tmp_path / "flight.4.json"
        flight = FlightRecorder(path=str(path))
        flight.record({"last": "words"})
        assert flight.install() is True
        try:
            with pytest.raises(SystemExit) as excinfo:
                os.kill(os.getpid(), signal.SIGTERM)
            assert excinfo.value.code == 128 + signal.SIGTERM
        finally:
            flight.uninstall()
        payload = json.loads(path.read_text())
        assert payload["reason"] == f"signal:{signal.SIGTERM}"
        assert payload["records"] == [{"last": "words"}]

    def test_spantracer_tees_into_flight(self):
        flight = FlightRecorder(capacity=8)
        spans = _deterministic_tracer(Tracer(), flight=flight)
        with spans.span("phase"):
            spans.event("tick")
        assert [r["name"] for r in flight.snapshot()] == [
            "phase", "tick", "phase",
        ]


class TestShardTracer:
    def test_writes_per_pid_shard(self, tmp_path):
        with Tracer(shard_dir=str(tmp_path)) as tracer:
            tracer.write({"ts": 1.0, "type": "event", "name": "x"})
        shard = tmp_path / f"run.{os.getpid()}.jsonl"
        assert shard.exists()
        assert read_jsonl(str(shard)) == [
            {"ts": 1.0, "type": "event", "name": "x"}
        ]

    def test_path_and_shard_dir_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer(path=str(tmp_path / "a.jsonl"), shard_dir=str(tmp_path))

    def test_two_writers_one_file_interleave_whole_lines(self, tmp_path):
        first = Tracer(shard_dir=str(tmp_path))
        second = Tracer(shard_dir=str(tmp_path))
        for index in range(50):
            first.write({"writer": 1, "n": index})
            second.write({"writer": 2, "n": index})
        first.close()
        second.close()
        records = read_jsonl(str(tmp_path / f"run.{os.getpid()}.jsonl"))
        assert len(records) == 100
        for writer in (1, 2):
            ours = [r["n"] for r in records if r["writer"] == writer]
            assert ours == list(range(50))


class TestReadJsonlTruncation:
    def test_truncated_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "run.1.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n{"n": 3, "tru')
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            records = read_jsonl(str(path))
        assert records == [{"n": 1}, {"n": 2}]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "run.2.jsonl"
        path.write_text('{"n": 1}\n{broken\n{"n": 3}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))

    def test_strict_mode_raises_on_truncated_tail(self, tmp_path):
        path = tmp_path / "run.3.jsonl"
        path.write_text('{"n": 1}\n{"n": 2, "tru')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path), strict=True)


def _traced_runner(tmp_path, workers, trace_subdir):
    trace_dir = tmp_path / trace_subdir
    sink = Tracer(shard_dir=str(trace_dir))
    spans = SpanTracer(sink)
    runner = Runner(
        cache=ResultCache(tmp_path / "cache"),
        trace_cache=TraceCache(tmp_path / "cache"),
        config=RunnerConfig(
            max_workers=workers, backoff_base=0.0, backoff_max=0.0
        ),
        spans=spans,
    )
    return runner, sink, trace_dir


class TestRunnerPropagation:
    def _assert_healthy_tree(self, records):
        assert validate_spans(records) == []
        job_spans = {
            r["span"] for r in records
            if r["type"] == "span_begin" and r["name"] == "runner.job"
        }
        worker_begins = [
            r for r in records
            if r["type"] == "span_begin" and r["name"] == "worker.job"
        ]
        assert worker_begins, "worker.job spans missing from the trace"
        for begin in worker_begins:
            assert begin["parent"] in job_spans
        traces = {r["trace"] for r in records if "trace" in r}
        assert len(traces) == 1

    def test_serial_run_produces_healthy_tree(self, tmp_path):
        runner, sink, trace_dir = _traced_runner(tmp_path, 1, "trace")
        results = runner.run(_smoke_jobs())
        sink.close()
        assert all(r.ok for r in results.values())
        self._assert_healthy_tree(merge_shards(str(trace_dir)))

    def test_pool_run_produces_healthy_tree(self, tmp_path):
        runner, sink, trace_dir = _traced_runner(tmp_path, 2, "trace")
        results = runner.run(_smoke_jobs())
        sink.close()
        assert all(r.ok for r in results.values())
        records = merge_shards(str(trace_dir))
        self._assert_healthy_tree(records)
        pids = {r["pid"] for r in records}
        assert len(pids) >= 2, "expected worker processes in the trace"

    def test_cache_hits_traced_without_job_spans(self, tmp_path):
        warm_runner, _, _ = _traced_runner(tmp_path, 1, "cold")
        warm_runner.run(_smoke_jobs())
        runner, sink, trace_dir = _traced_runner(tmp_path, 1, "warm")
        results = runner.run(_smoke_jobs())
        sink.close()
        assert all(r.from_cache for r in results.values())
        records = merge_shards(str(trace_dir))
        assert validate_spans(records) == []
        hits = [r for r in records if r.get("name") == "runner.cache_hit"]
        assert len(hits) == len(results)
        assert not [r for r in records if r.get("name") == "runner.job"]

    def test_tracing_does_not_change_results(self, tmp_path):
        plain = Runner(
            config=RunnerConfig(max_workers=1, backoff_base=0.0,
                                backoff_max=0.0),
        )
        baseline = plain.run(_smoke_jobs())
        traced_runner, sink, _ = _traced_runner(tmp_path, 1, "trace")
        traced = traced_runner.run(_smoke_jobs())
        sink.close()
        assert sorted(baseline) == sorted(traced)
        for job_id in baseline:
            assert (
                baseline[job_id].snapshot.to_dict()
                == traced[job_id].snapshot.to_dict()
            )
