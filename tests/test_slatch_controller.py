"""Functional S-LATCH tests: mode switching, screening, ISA hooks."""

import dataclasses

from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.slatch.controller import Mode, SLatchSystem
from repro.slatch.costs import SLatchCostModel
from repro.workloads.programs import file_filter, phased_compute


def make_system(scenario, timeout=1000):
    cpu = scenario.make_cpu()
    costs = dataclasses.replace(SLatchCostModel(), timeout_instructions=timeout)
    system = SLatchSystem(cpu, costs=costs)
    return cpu, system


class TestModeSwitching:
    def test_starts_in_hardware_mode(self):
        cpu, system = make_system(phased_compute())
        assert system.mode == Mode.HARDWARE

    def test_clean_program_never_traps(self):
        cpu = CPU(assemble("li r1, 5\nli r2, 6\nadd r3, r1, r2\nhalt"))
        system = SLatchSystem(cpu)
        cpu.run()
        assert system.counters.traps == 0
        assert system.counters.sw_instructions == 0
        assert system.counters.hw_instructions == 4 + 2  # li expands to 2

    def test_taint_trap_and_timeout_return(self):
        cpu, system = make_system(phased_compute(), timeout=300)
        cpu.run()
        counters = system.counters
        assert counters.traps == 1
        assert counters.returns == 1
        assert counters.hw_instructions > 0
        assert counters.sw_instructions > 0
        assert system.mode == Mode.HARDWARE

    def test_phases_mostly_hardware(self):
        cpu, system = make_system(phased_compute(clean_iterations=2000), timeout=200)
        cpu.run()
        assert system.counters.sw_fraction < 0.25

    def test_no_timeout_keeps_software_mode(self):
        # Huge timeout: once trapped, execution stays in software.
        cpu, system = make_system(phased_compute(), timeout=10**9)
        cpu.run()
        assert system.counters.returns == 0
        assert system.mode == Mode.SOFTWARE

    def test_total_instruction_conservation(self):
        cpu, system = make_system(phased_compute())
        cpu.run()
        counters = system.counters
        assert counters.total_instructions == cpu.step_count


class TestPrecisionMaintenance:
    def test_reconcile_clears_on_return(self):
        # phased_compute clears its buffer before phase 3, so the return
        # to hardware must reconcile those domains.
        cpu, system = make_system(phased_compute(), timeout=300)
        cpu.run()
        assert system.counters.reconciled_domains >= 1
        assert system.engine.shadow.tainted_byte_count == 0

    def test_false_positive_screening(self):
        # Touch a clean byte inside a tainted domain from hardware mode.
        source = """
        .data
path: .asciiz "f"
buf:  .space 128
        .text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r10, r3
    li   r3, 1
    mv   r4, r10
    li   r5, buf
    li   r6, 4          # taints buf[0..4)
    syscall
    li   r7, 0
wait:                   # burn instructions so the timeout elapses in SW
    addi r7, r7, 1
    slti r8, r7, 600
    bne  r8, r0, wait
    li   r8, buf
    lbu  r9, 32(r8)     # clean byte, same 64-byte domain: FP in HW mode
    halt
"""
        from repro.machine.devices import DeviceTable, VirtualFile

        devices = DeviceTable()
        devices.register_file(VirtualFile("f", b"XXXX"))
        cpu = CPU(assemble(source), devices=devices)
        costs = dataclasses.replace(SLatchCostModel(), timeout_instructions=100)
        system = SLatchSystem(cpu, costs=costs)
        cpu.run()
        assert system.counters.false_positives >= 1
        # The FP did not flip the system into software mode.
        assert system.mode == Mode.HARDWARE

    def test_hardware_mode_clears_stale_register_taint(self):
        cpu, system = make_system(file_filter(), timeout=50)
        cpu.run()
        # After the run, registers written by clean instructions in
        # hardware mode are clean in both TRFs.
        for register in range(16):
            if system.latch.trf.is_tainted(register):
                assert system.engine.trf.is_tainted(register)

    def test_final_taint_matches_reference(self):
        scenario = file_filter()
        cpu, system = make_system(scenario, timeout=100)
        cpu.run()

        from repro.dift.engine import DIFTEngine

        reference_scenario = file_filter()
        reference_cpu = reference_scenario.make_cpu()
        reference = DIFTEngine()
        reference_cpu.attach(reference)
        reference_cpu.run()

        assert (
            list(system.engine.shadow.iter_tainted_bytes())
            == list(reference.shadow.iter_tainted_bytes())
        )


class TestIsaHooks:
    def test_stnt_updates_both_layers(self):
        cpu = CPU(assemble("li r1, 0x3000\nli r2, 1\nstnt r1, r2\nhalt"))
        system = SLatchSystem(cpu)
        cpu.run()
        assert system.engine.shadow.get(0x3000) == 1
        assert system.latch.ctt.is_domain_tainted(0x3000)

    def test_strf_loads_trf(self):
        cpu = CPU(assemble("li r1, 0x30\nstrf r1\nhalt"))
        system = SLatchSystem(cpu)
        cpu.run()
        assert system.latch.trf.is_tainted(4)
        assert system.latch.trf.is_tainted(5)

    def test_ltnt_returns_exception_address(self):
        cpu = CPU(assemble("li r1, 0x3000\nli r2, 1\nstnt r1, r2\n"
                           "lw r3, 0(r1)\nltnt r4\nhalt"))
        system = SLatchSystem(cpu)
        cpu.run()
        assert cpu.registers[4] == 0x3000

    def test_estimated_overhead_positive_when_trapping(self):
        cpu, system = make_system(phased_compute(), timeout=300)
        cpu.run()
        assert system.estimated_overhead(libdft_slowdown=5.0) > 0
