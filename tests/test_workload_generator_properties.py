"""Property-based tests of the workload generator over random profiles.

Hypothesis constructs arbitrary (valid) workload profiles; the generator
must uphold its structural invariants for all of them — not just the 27
calibrated ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import EPOCH_BUCKETS, WorkloadProfile
from repro.workloads.trace import PAGE_SIZE


@st.composite
def profiles(draw):
    """An arbitrary valid WorkloadProfile."""
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=len(EPOCH_BUCKETS),
            max_size=len(EPOCH_BUCKETS),
        ).filter(lambda values: sum(values) > 0.05)
    )
    total = sum(weights)
    weights = tuple(value / total for value in weights)
    # Renormalise exactly (float dust breaks the profile validator).
    weights = weights[:-1] + (1.0 - sum(weights[:-1]),)
    pages = draw(st.integers(min_value=4, max_value=2000))
    tainted = draw(st.integers(min_value=0, max_value=pages))
    run = draw(st.sampled_from([4, 16, 64, 256, 4096]))
    gap = draw(st.sampled_from([0, 16, 128, 1024]))
    return WorkloadProfile(
        name=draw(st.sampled_from(["fuzz-a", "fuzz-b", "fuzz-c"])),
        kind="spec",
        taint_percent=draw(
            st.floats(min_value=0.0, max_value=30.0).map(lambda v: round(v, 3))
        ),
        pages_accessed=pages,
        pages_tainted=tainted,
        epoch_weights=weights,
        taint_run_bytes=run,
        taint_gap_bytes=gap,
        baseline_tcache_miss_percent=draw(
            st.floats(min_value=0.5, max_value=40.0)
        ),
        libdft_slowdown=draw(st.floats(min_value=1.5, max_value=12.0)),
        taint_density=draw(st.sampled_from([0.25, 0.5, 0.9])),
    )


@settings(max_examples=40, deadline=None)
@given(profiles(), st.integers(min_value=10_000, max_value=500_000))
def test_epoch_stream_invariants(profile, total):
    stream = WorkloadGenerator(profile, seed=1).epoch_stream(total)
    assert stream.total_instructions == total
    assert (stream.lengths > 0).all()
    assert (stream.tainted_counts >= 0).all()
    assert (stream.tainted_counts <= stream.lengths).all()
    # The realised taint fraction respects the ceiling implied by the
    # generation (never wildly above the profile's target).
    if profile.taint_percent == 0:
        assert stream.tainted_instructions <= 1
    else:
        assert stream.tainted_fraction <= profile.taint_fraction * 3 + 1e-3


@settings(max_examples=30, deadline=None)
@given(profiles())
def test_layout_invariants(profile):
    layout = WorkloadGenerator(profile, seed=2).layout()
    assert len(layout.accessed_pages) == profile.pages_accessed
    assert len(layout.tainted_pages()) == profile.pages_tainted
    previous_end = -1
    for start, length in layout.extents:
        assert length > 0
        assert start > previous_end
        previous_end = start + length - 1


@settings(max_examples=25, deadline=None)
@given(profiles(), st.integers(min_value=5_000, max_value=60_000))
def test_access_trace_invariants(profile, window):
    trace = WorkloadGenerator(profile, seed=3).access_trace(window)
    n = trace.access_count
    if n == 0:
        return
    assert len(trace.tainted) == len(trace.active_epoch) == n
    # Tainted accesses only in active epochs; all flags consistent with
    # the layout (spot check a sample).
    assert not (trace.tainted & ~trace.active_epoch).any()
    layout = trace.layout
    sample = np.random.default_rng(0).choice(n, size=min(n, 80), replace=False)
    for index in sample:
        address = int(trace.addresses[index])
        assert layout.byte_is_tainted(address) == bool(trace.tainted[index])
    # Addresses stay within the accessed footprint.
    pages = layout.accessed_pages | layout.tainted_pages()
    assert set((trace.addresses[sample] // PAGE_SIZE).tolist()) <= pages
