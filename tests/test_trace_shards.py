"""Property battery for sharded columnar replay.

The merge algebra's contract is *exactness for any split*: run-
compressed shard summaries fed through one carry-over LRU state must
reproduce the single-core scalar replay bit for bit, no matter where
the cuts land.  hypothesis is deliberately not a dependency here, so
the randomized splits are hand-rolled with seeded ``random.Random``
generators — failures print the seed and the plan, which is all a
reproduction needs.

Coverage:

* seeded random shard plans over the golden gcc/curl windows, including
  empty shards, single-access shards, and cut points at 0/1/n-1/n;
* scalar-backend and vector-backend object replays as the references —
  the columnar result must match both;
* the 32-bit wrap-around reproducers from ``tests/corpus/`` (address
  masking straddles shard boundaries there);
* the planner's partition/snapping invariants and the
  ``REPRO_TRACE_SHARDS`` environment knob;
* the pool fan-out (``replay_columnar_pooled``), which must agree with
  the in-process merge.
"""

from __future__ import annotations

import random
from pathlib import Path

import numpy as np
import pytest

from repro.check.corpus import load_corpus
from repro.check.oracle import run_reference
from repro.hlatch.system import HLATCH_LATCH_CONFIG, HLatchSystem, run_hlatch
from repro.hlatch.baseline import run_baseline
from repro.hlatch.taint_cache import (
    CONVENTIONAL_TAINT_CACHE,
    HLATCH_TAINT_CACHE,
)
from repro.kernels.replay import replay_check_memory
from repro.trace.convert import columnar_trace_bytes, save_columnar_trace
from repro.trace.replay import (
    ShardPartial,
    merge_partials,
    replay_baseline_columnar,
    replay_columnar,
    replay_columnar_pooled,
    shard_partial,
)
from repro.trace.shard import (
    SHARDS_ENV_VAR,
    explicit_plan,
    plan_shards,
    resolve_shard_count,
)
from repro.workloads.storage import load_access_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
CORPUS_DIR = Path(__file__).parent / "corpus"
WORKLOADS = ("gcc", "curl")


def _golden(name):
    return load_access_trace(GOLDEN_DIR / f"{name}_w2000_s0.npz")


def _random_plan(rng, n):
    """A seeded adversarial plan: random cuts plus injected empty shards."""
    cuts = [rng.randrange(0, n + 1) for _ in range(rng.randrange(0, 8))]
    cuts += rng.sample([0, 1, max(0, n - 1), n], k=2)
    plan = explicit_plan(n, cuts)
    if plan and rng.random() < 0.5:
        at = rng.randrange(len(plan))
        plan.insert(at, (plan[at][0], plan[at][0]))  # empty shard
    return plan or [(0, n)]


class TestPlanner:
    @pytest.mark.parametrize("seed", range(20))
    def test_plan_partitions_window(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 5000)
        shards = rng.randrange(1, 40)
        epochs = sorted(
            rng.sample(range(n), k=min(n, rng.randrange(0, 12)))
        ) or None
        plan = plan_shards(n, shards, epochs)
        assert plan[0][0] == 0 and plan[-1][1] == n
        for (_, stop), (start, _) in zip(plan, plan[1:]):
            assert stop == start
        assert all(start < stop for start, stop in plan)
        assert len(plan) <= shards

    def test_cuts_snap_to_epoch_starts(self):
        plan = plan_shards(100, 4, epoch_starts=[0, 10, 90])
        interior = {start for start, _ in plan[1:]}
        assert interior <= {10, 90}

    def test_degenerate_windows(self):
        assert plan_shards(0, 4) == []
        assert plan_shards(5, 1) == [(0, 5)]
        assert plan_shards(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_explicit_plan_dedupes_and_clamps(self):
        assert explicit_plan(10, [3, 3, 0, 10, 7]) == [(0, 3), (3, 7), (7, 10)]
        assert explicit_plan(0, [1, 2]) == []

    def test_resolve_shard_count(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
        assert resolve_shard_count() == 1
        assert resolve_shard_count(6) == 6
        assert resolve_shard_count("auto") >= 1
        monkeypatch.setenv(SHARDS_ENV_VAR, "3")
        assert resolve_shard_count() == 3
        assert resolve_shard_count(2) == 2  # argument wins
        monkeypatch.setenv(SHARDS_ENV_VAR, "auto")
        assert resolve_shard_count() >= 1
        monkeypatch.setenv(SHARDS_ENV_VAR, "zero")
        with pytest.raises(ValueError, match=SHARDS_ENV_VAR):
            resolve_shard_count()
        with pytest.raises(ValueError, match="positive"):
            resolve_shard_count(0)


class TestShardedEqualsScalar:
    """Sharded merge == object-path replay on the golden windows."""

    @pytest.fixture(scope="class")
    def scalar_snapshots(self):
        snapshots = {}
        for name in WORKLOADS:
            trace = _golden(name)
            system = HLatchSystem()
            system.load_taint(trace.layout)
            for index in range(trace.access_count):
                system.access(
                    int(trace.addresses[index]),
                    int(trace.sizes[index]),
                    bool(trace.is_write[index]),
                )
            snapshots[name] = system.snapshot().to_dict()["metrics"]
        return snapshots

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_plans_bit_identical(self, name, seed, scalar_snapshots):
        trace = _golden(name)
        blob = columnar_trace_bytes(trace)
        rng = random.Random(seed * 1000 + len(name))
        plan = _random_plan(rng, trace.access_count)
        result = replay_columnar(blob, plan=plan, baseline_config=None)
        assert (
            result.system.snapshot().to_dict()["metrics"]
            == scalar_snapshots[name]
        ), f"seed={seed} plan={plan}"

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("backend", ("scalar", "vector"))
    def test_report_matches_both_object_backends(self, name, backend):
        trace = _golden(name)
        object_report = run_hlatch(trace, backend=backend)
        columnar = replay_columnar(
            columnar_trace_bytes(trace), shards=5, baseline_config=None
        )
        assert columnar.hlatch == object_report

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("backend", ("scalar", "vector"))
    def test_baseline_matches_both_object_backends(self, name, backend):
        trace = _golden(name)
        object_report = run_baseline(trace, backend=backend)
        columnar = replay_baseline_columnar(
            columnar_trace_bytes(trace), shards=7
        )
        assert columnar == object_report

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_single_epoch_trace_collapses_to_one_shard(self, name):
        trace = _golden(name)
        with_epochs = replay_columnar(
            columnar_trace_bytes(trace), shards=4, baseline_config=None
        )
        serial = replay_columnar(
            columnar_trace_bytes(trace), shards=1, baseline_config=None
        )
        # Snapping may reduce the shard count; whatever plan emerges,
        # the counters must not move.
        assert 1 <= with_epochs.shard_count <= 4
        assert serial.shard_count == 1
        assert with_epochs.hlatch == serial.hlatch

    def test_shard_env_var_drives_default(self, monkeypatch):
        trace = _golden("gcc")
        blob = columnar_trace_bytes(trace)
        monkeypatch.setenv(SHARDS_ENV_VAR, "3")
        sharded = replay_columnar(blob, baseline_config=None)
        monkeypatch.setenv(SHARDS_ENV_VAR, "1")
        serial = replay_columnar(blob, baseline_config=None)
        assert serial.shard_count == 1
        assert sharded.hlatch == serial.hlatch

    def test_wire_partials_survive_serialisation(self):
        trace = _golden("gcc")
        blob = columnar_trace_bytes(trace)
        n = trace.access_count
        plan = explicit_plan(n, [n // 2])
        system = HLatchSystem()
        system.load_taint(trace.layout)
        partials = [
            shard_partial(
                trace.addresses[start:stop],
                trace.sizes[start:stop],
                trace.is_write[start:stop],
                system.latch,
                HLATCH_TAINT_CACHE,
                CONVENTIONAL_TAINT_CACHE,
            )
            for start, stop in plan
        ]
        rebuilt = [ShardPartial.from_wire(p.to_wire()) for p in partials]
        merge_partials(rebuilt, system)
        direct = replay_columnar(blob, plan=plan)
        assert (
            system.snapshot().to_dict()["metrics"]
            == direct.system.snapshot().to_dict()["metrics"]
        )


class TestCorpusWrapStraddles:
    """32-bit wrap reproducers with shard cuts through the wrap point.

    The corpus programs were shrunk from real masking bugs; their access
    streams hit addresses near 2**32.  Shard boundaries are driven
    through every access index, so the masked (screen/probe) vs
    unmasked (taint-cache) address handling is exercised on both sides
    of every cut.
    """

    @pytest.fixture(scope="class")
    def corpus_traces(self):
        traces = []
        for cp in load_corpus(CORPUS_DIR):
            engine, collector = run_reference(cp)
            if collector.addresses:
                traces.append((cp, engine, collector))
        assert traces, "corpus must contain programs with memory accesses"
        return traces

    def test_corpus_reaches_wrap_addresses(self, corpus_traces):
        top = max(
            max(collector.addresses)
            for _, _, collector in corpus_traces
        )
        assert top >= 0xFFFF_0000  # the straddles are actually exercised

    @pytest.mark.parametrize("seed", range(6))
    def test_sharded_matches_scalar_stack(self, seed, corpus_traces):
        rng = random.Random(seed)
        for cp, engine, collector in corpus_traces:
            n = len(collector.addresses)
            plan = _random_plan(rng, n)

            def fresh():
                system = HLatchSystem(cp.config, HLATCH_TAINT_CACHE)
                system.latch.bulk_load_from_shadow(engine.shadow)
                return system

            scalar = fresh()
            for address, size, write in zip(
                collector.addresses, collector.sizes, collector.writes
            ):
                scalar.access(address, size, write)

            sharded = fresh()
            addresses = np.asarray(collector.addresses, dtype=np.int64)
            sizes = np.asarray(collector.sizes, dtype=np.int64)
            writes = np.asarray(collector.writes, dtype=bool)
            partials = [
                shard_partial(
                    addresses[start:stop], sizes[start:stop],
                    writes[start:stop], sharded.latch, HLATCH_TAINT_CACHE,
                )
                for start, stop in plan
            ]
            merge_partials(partials, sharded)
            assert (
                sharded.snapshot().to_dict()["metrics"]
                == scalar.snapshot().to_dict()["metrics"]
            ), f"{cp.name} seed={seed} plan={plan}"
            assert (
                sharded.latch.last_exception_address
                == scalar.latch.last_exception_address
            )

    def test_every_cut_point_exhaustively(self, corpus_traces):
        # Exhaustive single-cut sweep: the boundary crosses *every*
        # access index of every wrap reproducer.
        for cp, engine, collector in corpus_traces:
            addresses = np.asarray(collector.addresses, dtype=np.int64)
            sizes = np.asarray(collector.sizes, dtype=np.int64)
            writes = np.asarray(collector.writes, dtype=bool)
            n = len(addresses)
            if n > 40:  # keep the sweep bounded; random plans cover big ones
                continue

            def latch_counters(latch):
                stats = latch.stats
                return (
                    stats.memory_checks, stats.resolved_by_tlb,
                    stats.resolved_by_ctc, stats.sent_to_precise,
                    latch.last_exception_address,
                    latch.ctc.stats.accesses, latch.ctc.stats.hits,
                )

            from repro.core.latch import LatchModule

            reference = LatchModule(cp.config)
            reference.bulk_load_from_shadow(engine.shadow)
            replay_check_memory(reference, addresses, sizes)
            want = latch_counters(reference)

            for cut in range(n + 1):
                system = HLatchSystem(cp.config, HLATCH_TAINT_CACHE)
                system.latch.bulk_load_from_shadow(engine.shadow)
                partials = [
                    shard_partial(
                        addresses[start:stop], sizes[start:stop],
                        writes[start:stop], system.latch, HLATCH_TAINT_CACHE,
                    )
                    for start, stop in ((0, cut), (cut, n))
                ]
                merge_partials(partials, system)
                assert latch_counters(system.latch) == want, (
                    f"{cp.name} cut={cut}"
                )


class TestPooledReplay:
    def test_pool_matches_in_process(self, tmp_path):
        from repro.runner import Runner, RunnerConfig

        trace = _golden("gcc")
        path = tmp_path / "gcc.ltrace"
        save_columnar_trace(trace, path)
        local = replay_columnar(path, shards=3)
        runner = Runner(
            config=RunnerConfig(
                max_workers=2, backoff_base=0.0, backoff_max=0.0
            )
        )
        pooled = replay_columnar_pooled(path, shards=3, runner=runner)
        assert pooled.shard_count == local.shard_count
        assert pooled.hlatch == local.hlatch
        assert pooled.baseline == local.baseline
        assert (
            pooled.system.snapshot().to_dict()["metrics"]
            == local.system.snapshot().to_dict()["metrics"]
        )

    def test_single_shard_plan_skips_pool(self, tmp_path):
        trace = _golden("curl")
        path = tmp_path / "curl.ltrace"
        save_columnar_trace(trace, path)
        result = replay_columnar_pooled(path, shards=1, runner=None)
        assert result.shard_count == 1
        assert result.hlatch == replay_columnar(path, shards=1).hlatch


class TestHLatchConfigCoverage:
    def test_no_tlb_bits_config(self):
        # The merge must also hold when the TLB screen is disabled
        # (tlb_bits is None → every access goes to the CTC).
        import dataclasses

        trace = _golden("gcc")
        config = dataclasses.replace(HLATCH_LATCH_CONFIG, use_tlb_bits=False)
        blob = columnar_trace_bytes(trace)
        sharded = replay_columnar(
            blob, latch_config=config, shards=4, baseline_config=None
        )
        serial = replay_columnar(
            blob, latch_config=config, plan=[(0, trace.access_count)],
            baseline_config=None,
        )
        assert (
            sharded.system.snapshot().to_dict()["metrics"]
            == serial.system.snapshot().to_dict()["metrics"]
        )
