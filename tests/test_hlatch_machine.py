"""Functional H-LATCH tests: live machine, filtered caching, no accuracy loss."""

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.policy import leak_detection_policy
from repro.hlatch.machine import ConventionalMonitor, HLatchMonitor
from repro.workloads import attacks, programs

SCENARIOS = [
    ("file-filter", lambda: programs.file_filter(), None),
    ("checksum", lambda: programs.checksum(), None),
    ("cipher", lambda: programs.substitution_cipher(), None),
    ("phased", lambda: programs.phased_compute(), None),
    ("overflow", lambda: attacks.buffer_overflow(hijack=True), None),
    ("leak", lambda: attacks.data_leak(leak=True), leak_detection_policy),
]


def run_monitored(build, policy_factory, monitor_class):
    scenario = build()
    cpu = scenario.make_cpu()
    monitor = monitor_class(
        cpu, policy=policy_factory() if policy_factory else None
    )
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return monitor


def run_reference(build, policy_factory):
    scenario = build()
    cpu = scenario.make_cpu()
    engine = DIFTEngine(policy_factory() if policy_factory else None)
    cpu.attach(engine)
    try:
        cpu.run(300_000)
    except Exception:
        pass
    return engine


def signature(engine):
    return (
        [(alert.kind, alert.pc) for alert in engine.alerts],
        list(engine.shadow.iter_tainted_bytes()),
    )


@pytest.mark.parametrize(
    "name,build,policy", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_hlatch_monitor_matches_reference(name, build, policy):
    """Filtering the taint cache cannot change detection behaviour."""
    reference = run_reference(build, policy)
    monitor = run_monitored(build, policy, HLatchMonitor)
    assert signature(monitor.engine) == signature(reference)


@pytest.mark.parametrize(
    "name,build,policy", SCENARIOS[:3], ids=[s[0] for s in SCENARIOS[:3]]
)
def test_conventional_monitor_matches_reference(name, build, policy):
    reference = run_reference(build, policy)
    monitor = run_monitored(build, policy, ConventionalMonitor)
    assert signature(monitor.engine) == signature(reference)


class TestCacheAccounting:
    def test_every_memory_operand_checked(self):
        monitor = run_monitored(lambda: programs.file_filter(), None, HLatchMonitor)
        report = monitor.report()
        assert report.accesses > 0
        split = report.resolution_split()
        assert abs(sum(split.values()) - 1.0) < 1e-9

    def test_clean_program_never_touches_precise_cache(self):
        monitor = run_monitored(
            lambda: programs.file_filter(tainted=False), None, HLatchMonitor
        )
        report = monitor.report()
        assert report.sent_to_precise == 0
        assert report.tcache_accesses == 0

    def test_figure12_clears_release_domains(self):
        # phased_compute clears its buffer; the immediate-update chain
        # must release the coarse state before the run ends.
        monitor = run_monitored(lambda: programs.phased_compute(), None, HLatchMonitor)
        assert monitor.engine.shadow.tainted_byte_count == 0
        assert monitor.stack.latch.ctt.tainted_domain_count() == 0

    def test_conventional_baseline_miss_rate(self):
        monitor = run_monitored(
            lambda: programs.file_filter(), None, ConventionalMonitor
        )
        assert 0.0 <= monitor.miss_percent <= 100.0
        assert monitor.tcache.stats.accesses > 0

    def test_coarse_state_superset_throughout(self):
        monitor = run_monitored(lambda: programs.checksum(), None, HLatchMonitor)
        for address in monitor.engine.shadow.iter_tainted_bytes():
            assert monitor.stack.latch.ctt.is_domain_tainted(address)
