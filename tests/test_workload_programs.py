"""Tests for the runnable toy-ISA scenarios and attacks."""

import pytest

from repro.dift.engine import DIFTEngine
from repro.dift.events import AlertKind
from repro.dift.policy import leak_detection_policy
from repro.workloads import attacks, programs


def run_with_dift(scenario, policy=None, max_steps=300_000):
    cpu = scenario.make_cpu()
    engine = DIFTEngine(policy)
    cpu.attach(engine)
    try:
        cpu.run(max_steps)
    except Exception:
        pass
    return cpu, engine


class TestFileFilter:
    def test_output_is_uppercased(self):
        scenario = programs.file_filter(payload=b"abc xyz 123")
        cpu, _ = run_with_dift(scenario)
        assert cpu.halted and cpu.exit_code == 0
        out = scenario.devices.lookup_file("output.dat").written
        assert bytes(out) == b"ABC XYZ 123"

    def test_taint_flows_to_output_buffer(self):
        scenario = programs.file_filter()
        _, engine = run_with_dift(scenario)
        assert engine.shadow.tainted_byte_count > 0
        assert engine.stats.tainted_fraction > 0

    def test_untainted_input_produces_no_taint(self):
        scenario = programs.file_filter(tainted=False)
        _, engine = run_with_dift(scenario)
        assert engine.shadow.tainted_byte_count == 0
        assert engine.stats.tainted_instructions == 0


class TestChecksum:
    def test_checksum_register_tainted(self):
        cpu, engine = run_with_dift(programs.checksum())
        assert cpu.halted
        # The exit code is the checksum, computed from tainted bytes.
        assert engine.stats.tainted_fraction > 0.2

    def test_checksum_deterministic(self):
        cpu1, _ = run_with_dift(programs.checksum(payload=b"abc"))
        cpu2, _ = run_with_dift(programs.checksum(payload=b"abc"))
        assert cpu1.exit_code == cpu2.exit_code
        cpu3, _ = run_with_dift(programs.checksum(payload=b"abd"))
        assert cpu1.exit_code != cpu3.exit_code


class TestSubstitutionCipher:
    def test_output_not_tainted(self):
        """The bzip2/TLS pattern: table lookups strip taint."""
        scenario = programs.substitution_cipher()
        cpu, engine = run_with_dift(scenario)
        assert cpu.halted
        out = scenario.devices.lookup_file("cipher.out")
        assert len(out.written) > 0
        output_base = scenario.program.address_of("obuf")
        assert not engine.shadow.any_tainted(output_base, 64)

    def test_input_buffer_is_tainted(self):
        scenario = programs.substitution_cipher()
        _, engine = run_with_dift(scenario)
        input_base = scenario.program.address_of("buf")
        assert engine.shadow.any_tainted(input_base, 8)

    def test_cipher_actually_translates(self):
        scenario = programs.substitution_cipher(payload=b"\x00\x01")
        cpu, _ = run_with_dift(scenario)
        out = scenario.devices.lookup_file("cipher.out").written
        assert bytes(out) == bytes([(0 * 7 + 13) % 256, (1 * 7 + 13) % 256])


class TestEchoServer:
    def test_all_requests_echoed(self):
        scenario = programs.echo_server(requests=[b"aa", b"bb"])
        cpu, _ = run_with_dift(scenario)
        assert cpu.halted

    def test_trusted_connections_leave_no_taint(self):
        scenario = programs.echo_server(
            requests=[b"hello"], trusted_flags=[True]
        )
        _, engine = run_with_dift(scenario)
        assert engine.shadow.tainted_byte_count == 0

    def test_untrusted_connections_taint_buffer(self):
        scenario = programs.echo_server(
            requests=[b"hello"], trusted_flags=[False]
        )
        _, engine = run_with_dift(scenario)
        assert engine.shadow.tainted_byte_count > 0

    def test_mismatched_flags_rejected(self):
        with pytest.raises(ValueError):
            programs.echo_server(requests=[b"a"], trusted_flags=[True, False])


class TestPhasedCompute:
    def test_taint_cleared_at_end(self):
        _, engine = run_with_dift(programs.phased_compute())
        assert engine.shadow.tainted_byte_count == 0

    def test_low_overall_taint_fraction(self):
        _, engine = run_with_dift(programs.phased_compute(clean_iterations=800))
        assert engine.stats.tainted_fraction < 0.05


class TestAttacks:
    def test_hijack_detected_benign_not(self):
        _, malicious = run_with_dift(attacks.buffer_overflow(hijack=True))
        _, benign = run_with_dift(attacks.buffer_overflow(hijack=False))
        assert AlertKind.TAINTED_JUMP in [a.kind for a in malicious.alerts]
        assert benign.alerts == []

    def test_overflow_payload_shapes(self):
        benign = attacks.overflow_payload(False, 16)
        evil = attacks.overflow_payload(True, 16)
        assert len(benign) < 16
        assert len(evil) == 20
        assert evil[16:] == attacks.HIJACK_TARGET.to_bytes(4, "little")

    def test_leak_detected_benign_not(self):
        _, leaking = run_with_dift(
            attacks.data_leak(leak=True), leak_detection_policy()
        )
        _, clean = run_with_dift(
            attacks.data_leak(leak=False), leak_detection_policy()
        )
        assert AlertKind.TAINTED_OUTPUT in [a.kind for a in leaking.alerts]
        assert clean.alerts == []

    def test_hijack_diverts_control_flow(self):
        scenario = attacks.buffer_overflow(hijack=True)
        cpu, _ = run_with_dift(scenario)
        # The hijacked program never reaches the clean exit path.
        assert not (cpu.halted and cpu.exit_code == 0)
