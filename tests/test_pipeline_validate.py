"""Measured pipeline vs analytic queue model (Section 5.2 closure).

``repro.platch.queue_sim`` predicts producer stalls from an *assumed*
event stream; the streaming pipeline measures them while running real
programs.  ``validate_against_model`` replays the measured stream
through the analytic model, and these tests pin the agreement contract:
exact at ``model_epoch == 1``, within the documented tolerance at
coarser epochs.
"""

import pytest

from repro.pipeline import PipelineConfig, StreamingPipeline, validate_against_model
from repro.workloads import programs

from tests.test_pipeline import run_pipeline


def run_with_epoch(build, model_epoch, **config_kwargs):
    scenario = build()
    cpu = scenario.make_cpu()
    pipeline = StreamingPipeline(cpu, config=PipelineConfig(
        model_epoch=model_epoch, **config_kwargs,
    ))
    cpu.run(300_000)
    pipeline.finish()
    return pipeline


SATURATED = dict(queue_capacity=4, drain_batch=64)


class TestExactReplay:
    def test_epoch_one_is_exact_on_saturated_queue(self):
        pipeline = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=1, **SATURATED
        )
        assert pipeline.model.stall_cycles > 0, "need real backpressure"
        validation = pipeline.validate_model()
        assert validation.exact
        assert validation.predicted_stall_cycles == (
            validation.measured_stall_cycles
        )

    def test_epoch_one_exact_across_queue_depths(self):
        for queue_capacity in (4, 8, 16):
            pipeline = run_with_epoch(
                lambda: programs.echo_server(), model_epoch=1,
                queue_capacity=queue_capacity, drain_batch=64,
            )
            validation = validate_against_model(pipeline)
            assert validation.exact, (
                f"q={queue_capacity}: predicted "
                f"{validation.predicted_stall_cycles} != measured "
                f"{validation.measured_stall_cycles}"
            )

    def test_clean_run_is_trivially_exact(self):
        pipeline = run_with_epoch(
            lambda: programs.file_filter(tainted=False), model_epoch=1
        )
        validation = pipeline.validate_model()
        assert validation.exact
        assert validation.measured_stall_cycles == 0
        assert validation.relative_error == 0.0


class TestEventAccounting:
    def test_model_sees_every_queued_event(self):
        pipeline = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=1, **SATURATED
        )
        validation = pipeline.validate_model()
        queued = pipeline.stats.enqueued + pipeline.stats.control_events
        assert pipeline.model.events == queued
        assert validation.measured_events == queued
        assert validation.predicted_events == queued
        assert validation.instructions == pipeline.stats.instructions

    def test_measured_stream_shape(self):
        pipeline = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=100, **SATURATED
        )
        stream = pipeline.measured_stream()
        assert stream.total_instructions == pipeline.stats.instructions
        assert int(sum(stream.tainted_counts)) == pipeline.model.events


class TestCoarseEpochTolerance:
    def test_coarse_epoch_within_documented_tolerance(self):
        pipeline = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=1000, **SATURATED
        )
        validation = pipeline.validate_model()
        assert validation.within_tolerance, (
            f"error {validation.absolute_error} exceeds budget "
            f"{validation.tolerance_cycles}"
        )

    def test_tolerance_tightens_with_epoch(self):
        coarse = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=1000, **SATURATED
        ).validate_model()
        fine = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=10, **SATURATED
        ).validate_model()
        assert fine.tolerance_cycles < coarse.tolerance_cycles
        assert fine.within_tolerance

    def test_stall_rel_error_published(self):
        pipeline = run_with_epoch(
            lambda: programs.echo_server(), model_epoch=1, **SATURATED
        )
        snapshot = pipeline.snapshot()
        assert snapshot.get("pipeline.model.predicted_stall_cycles") == (
            pipeline.validate_model().predicted_stall_cycles
        )
        assert snapshot.get("pipeline.model.stall_rel_error") == 0.0
