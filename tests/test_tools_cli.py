"""CLI tool tests: asm, disasm, run, trace, stats."""

import json

import pytest

from repro.tools.asm import main as asm_main
from repro.tools.disasm import main as disasm_main
from repro.tools.run import main as run_main
from repro.tools.stats import main as stats_main
from repro.tools.trace import main as trace_main

PROGRAM = """
.data
path:   .asciiz "in.txt"
buf:    .space 32
msg:    .ascii "done\\n"
.text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 32
    syscall
    li   r3, 2
    li   r4, 0
    li   r5, msg
    li   r6, 5
    syscall
    li   r3, 0
    li   r4, 7
    syscall
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return path


@pytest.fixture
def payload_file(tmp_path):
    path = tmp_path / "payload.bin"
    path.write_bytes(b"external data")
    return path


class TestAsm:
    def test_assemble_to_binary(self, source_file, tmp_path, capsys):
        output = tmp_path / "prog.bin"
        assert asm_main([str(source_file), "-o", str(output)]) == 0
        blob = output.read_bytes()
        assert len(blob) % 4 == 0 and len(blob) > 0
        assert "instructions" in capsys.readouterr().out

    def test_meta_sidecar(self, source_file, tmp_path):
        meta = tmp_path / "prog.json"
        asm_main([str(source_file), "-o", str(tmp_path / "p.bin"),
                  "--meta", str(meta)])
        payload = json.loads(meta.read_text())
        assert "symbols" in payload and "_start" in payload["symbols"]
        assert bytes.fromhex(payload["data"]).endswith(b"done\n")

    def test_listing(self, source_file, tmp_path, capsys):
        asm_main([str(source_file), "-o", str(tmp_path / "p.bin"), "--listing"])
        out = capsys.readouterr().out
        assert "syscall" in out

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate r1\n")
        assert asm_main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        assert asm_main([str(tmp_path / "missing.s")]) == 2


class TestDisasm:
    def test_roundtrip(self, source_file, tmp_path, capsys):
        binary = tmp_path / "prog.bin"
        asm_main([str(source_file), "-o", str(binary)])
        capsys.readouterr()
        assert disasm_main([str(binary)]) == 0
        out = capsys.readouterr().out
        assert "syscall" in out and "0x00001000" in out

    def test_bad_binary(self, tmp_path, capsys):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00\x01\x02")  # not a multiple of 4
        assert disasm_main([str(path)]) == 1


class TestRun:
    def test_plain_run(self, source_file, payload_file, capsys):
        code = run_main(
            [str(source_file), "--file", f"in.txt={payload_file}"]
        )
        assert code == 7
        out = capsys.readouterr().out
        assert "done" in out and "exit code 7" in out

    def test_dift_monitoring(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "dift",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "tainted instructions" in out
        assert "13 tainted bytes" in out

    def test_untainted_flag(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "dift",
             "--file", f"in.txt={payload_file}:untainted"]
        )
        out = capsys.readouterr().out
        assert "0 tainted bytes" in out

    def test_slatch_monitoring(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "slatch", "--timeout", "50",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "s-latch" in out and "traps" in out

    def test_platch_monitoring(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "platch",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "p-latch" in out
        assert "events enqueued" in out and "queue stalls" in out

    def test_budget_exhaustion_exit_code(self, tmp_path, capsys):
        loop = tmp_path / "loop.s"
        loop.write_text("spin: j spin\n")
        assert run_main([str(loop), "--max-steps", "100"]) == 124
        assert "budget exhausted" in capsys.readouterr().out

    def test_bad_file_spec(self, source_file, capsys):
        assert run_main([str(source_file), "--file", "nonsense"]) == 2


class TestTrace:
    def test_trace_marks_tainted_instructions(
        self, source_file, payload_file, capsys
    ):
        assert trace_main(
            [str(source_file), "--file", f"in.txt={payload_file}"]
        ) == 0
        out = capsys.readouterr().out
        assert "+ input 13 bytes" in out
        assert "syscall" in out
        assert "touched taint" in out

    def test_only_tainted_filter(self, source_file, payload_file, capsys):
        trace_main(
            [str(source_file), "--only-tainted",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        body = [
            line for line in out.splitlines()
            if line and line[0].isspace() is False and line.startswith(" ") is False
        ]
        # Every instruction line shown carries the taint marker.
        instruction_lines = [
            line for line in out.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        for line in instruction_lines:
            assert " T " in line

    def test_limit(self, source_file, payload_file, capsys):
        trace_main(
            [str(source_file), "--limit", "3",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "3 lines shown" in out

    def test_trace_bad_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("bogus r1\n")
        assert trace_main([str(bad)]) == 2


#: Like PROGRAM, but touches the tainted buffer after reading it so the
#: S-LATCH monitor actually traps and the LATCH module performs checks.
STATS_PROGRAM = """
.data
path:   .asciiz "in.txt"
buf:    .space 32
.text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 32
    syscall
    li   r8, buf
    lbu  r9, 0(r8)
    addi r9, r9, 1
    sb   r9, 1(r8)
    lbu  r10, 2(r8)
    halt
"""


@pytest.fixture
def stats_source_file(tmp_path):
    path = tmp_path / "stats_prog.s"
    path.write_text(STATS_PROGRAM)
    return path


class TestStats:
    def test_program_markdown(self, stats_source_file, payload_file, capsys):
        code = stats_main(
            [str(stats_source_file), "--file", f"in.txt={payload_file}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("slatch.traps", "ctc.hit_rate", "cpu.instructions",
                     "slatch.epoch.hw_duration"):
            assert name in out, name

    def test_program_json_snapshot(self, stats_source_file, payload_file, capsys):
        from repro.obs import StatsSnapshot

        assert stats_main(
            [str(stats_source_file), "--format", "json",
             "--file", f"in.txt={payload_file}"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.meta["mode"] == "program"
        assert snapshot.meta["monitor"] == "slatch"
        assert snapshot.meta["halted"] is True
        assert snapshot.get("cpu.instructions") > 0
        assert snapshot.get("latch.memory_checks") > 0

    def test_dift_monitor(self, stats_source_file, payload_file, capsys):
        from repro.obs import StatsSnapshot

        assert stats_main(
            [str(stats_source_file), "--monitor", "dift", "--format", "json",
             "--file", f"in.txt={payload_file}"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.get("dift.taint_source_bytes") == 13
        assert snapshot.get("dift.instructions") == snapshot.get(
            "cpu.instructions"
        )

    def test_platch_monitor_with_knobs(
        self, stats_source_file, payload_file, capsys
    ):
        from repro.obs import StatsSnapshot

        assert stats_main(
            [str(stats_source_file), "--monitor", "platch",
             "--format", "json", "--file", f"in.txt={payload_file}",
             "--queue-capacity", "8", "--gate-batch", "4",
             "--backend", "scalar",
             "--sample-rate", "1.0", "--sample-seed", "7"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.meta["monitor"] == "platch"
        assert snapshot.meta["backend"] == "scalar"
        assert snapshot.meta["queue_capacity"] == 8
        assert snapshot.meta["gate_batch"] == 4
        assert snapshot.meta["sample_seed"] == 7
        assert snapshot.get("pipeline.instructions") > 0
        assert snapshot.get("pipeline.events.enqueued") > 0
        assert "pipeline.queue.stall_cycles" in snapshot
        assert "dift.instructions" in snapshot

    def test_platch_trace_stream(
        self, stats_source_file, payload_file, tmp_path, capsys
    ):
        from repro.obs import read_jsonl

        trace_path = tmp_path / "pipeline.jsonl"
        assert stats_main(
            [str(stats_source_file), "--monitor", "platch",
             "--file", f"in.txt={payload_file}",
             "--queue-capacity", "1", "--gate-batch", "1",
             "--trace", str(trace_path), "-o", str(tmp_path / "out.md")]
        ) == 0
        capsys.readouterr()
        events = read_jsonl(str(trace_path))
        assert any(e["name"] == "pipeline.stall" for e in events)

    def test_output_file_and_trace(
        self, stats_source_file, payload_file, tmp_path, capsys
    ):
        from repro.obs import read_jsonl

        out_path = tmp_path / "stats.md"
        trace_path = tmp_path / "trace.jsonl"
        assert stats_main(
            [str(stats_source_file), "--file", f"in.txt={payload_file}",
             "--timeout", "5", "-o", str(out_path),
             "--trace", str(trace_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert "slatch.traps" in out_path.read_text()
        events = read_jsonl(str(trace_path))
        assert any(e["name"] == "slatch.trap" for e in events)

    def test_profile_mode_json(self, capsys):
        from repro.obs import StatsSnapshot

        assert stats_main(
            ["--profile", "wget", "--epoch-scale", "200000",
             "--trace-window", "5000", "--format", "json"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.meta == {
            "mode": "profile", "profile": "wget",
            "epoch_scale": 200000, "trace_window": 5000,
        }
        for name in ("ctc.hit_rate", "tlb.screened_frac",
                     "workload.tainted_fraction",
                     "workload.epoch.taint_free_duration",
                     "slatch.model.overhead"):
            assert name in snapshot, name

    def test_list_profiles(self, capsys):
        assert stats_main(["--list-profiles"]) == 0
        out = capsys.readouterr().out
        assert "wget" in out and "astar" in out and "(network)" in out

    def test_usage_errors(self, stats_source_file, capsys):
        assert stats_main([]) == 2
        assert stats_main([str(stats_source_file), "--profile", "wget"]) == 2
        assert stats_main(["--profile", "no-such-profile"]) == 2
        assert "error" in capsys.readouterr().err

    def test_console_entry_point_declared(self):
        import pathlib

        text = (
            pathlib.Path(__file__).parent.parent / "pyproject.toml"
        ).read_text()
        assert 'repro-stats = "repro.tools.stats:cli"' in text

    def test_record_trace_then_ltrace_replay(
        self, stats_source_file, payload_file, tmp_path, capsys
    ):
        from repro.dift.engine import DIFTEngine
        from repro.obs import StatsSnapshot
        from repro.trace.record import replay_events

        event_path = tmp_path / "run.ltrace"
        assert stats_main(
            [str(stats_source_file), "--monitor", "dift", "--format", "json",
             "--file", f"in.txt={payload_file}",
             "--record-trace", str(event_path)]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.meta["recorded_trace"] == str(event_path)
        # The recorded container replays to the same instruction count
        # and taint outcome the live run reported.
        engine = DIFTEngine()
        steps = replay_events(event_path, engine)
        assert steps == snapshot.get("cpu.instructions")
        assert (
            len(list(engine.shadow.iter_tainted_bytes())) > 0
        ) == (snapshot.get("dift.taint_source_bytes") > 0)

    def test_ltrace_mode_json(self, tmp_path, capsys):
        from pathlib import Path as _Path

        from repro.obs import StatsSnapshot
        from repro.trace.convert import save_columnar_trace
        from repro.workloads.storage import load_access_trace

        golden = _Path(__file__).parent / "golden" / "gcc_w2000_s0.npz"
        trace_path = tmp_path / "gcc.ltrace"
        source = load_access_trace(golden)
        save_columnar_trace(source, trace_path)
        assert stats_main(
            ["--ltrace", str(trace_path), "--shards", "3",
             "--format", "json"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)
        assert snapshot.meta["mode"] == "ltrace"
        assert snapshot.meta["workload"] == "gcc"
        assert snapshot.meta["accesses"] == source.access_count
        assert 1 <= snapshot.meta["shards"] <= 3
        for name in ("latch.memory_checks", "trace.replays", "trace.shards",
                     "trace.mmap.bytes", "trace.merge.seconds",
                     "baseline.miss_percent"):
            assert name in snapshot, name
        assert snapshot.get("latch.memory_checks") == source.access_count

    def test_ltrace_mode_excludes_other_modes(self, stats_source_file,
                                              tmp_path, capsys):
        assert stats_main(
            [str(stats_source_file), "--ltrace", str(tmp_path / "x.ltrace")]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_agrees_with_harness_pipeline(self, capsys):
        """repro-stats output matches the benchmark-harness measurement
        recomputed independently, to within 1e-9."""
        import math

        from repro.core.latch import LatchConfig, LatchModule
        from repro.obs import StatsSnapshot
        from repro.slatch.simulator import measure_hw_rates
        from repro.workloads import WorkloadGenerator, get_profile

        epoch_scale, trace_window = 200000, 5000
        assert stats_main(
            ["--profile", "sphinx", "--epoch-scale", str(epoch_scale),
             "--trace-window", str(trace_window), "--format", "json"]
        ) == 0
        snapshot = StatsSnapshot.from_json(capsys.readouterr().out)

        # Recompute with the same deterministic pipeline the Figure 13/14
        # harness uses.
        profile = get_profile("sphinx")
        generator = WorkloadGenerator(profile)
        trace = generator.access_trace(trace_window)
        stream = generator.epoch_stream(epoch_scale)
        latch = LatchModule(LatchConfig())
        measure_hw_rates(trace, latch=latch)

        ctc = latch.ctc.stats
        assert snapshot.get("ctc.hit_rate") == pytest.approx(
            ctc.hits / ctc.accesses, abs=1e-9
        )
        fractions = latch.stats.level_fractions()
        assert snapshot.get("tlb.screened_frac") == pytest.approx(
            fractions["tlb"], abs=1e-9
        )
        assert snapshot.get("workload.tainted_fraction") == pytest.approx(
            stream.tainted_fraction, abs=1e-9
        )
        lengths = stream.taint_free_lengths().tolist()
        hist = snapshot.get("workload.epoch.taint_free_duration")
        assert hist["count"] == len(lengths)
        assert hist["sum"] == pytest.approx(math.fsum(lengths), abs=1e-9)
        assert hist["mean"] == pytest.approx(
            math.fsum(lengths) / len(lengths), abs=1e-9
        )
