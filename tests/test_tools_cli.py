"""CLI tool tests: asm, disasm, run."""

import json

import pytest

from repro.tools.asm import main as asm_main
from repro.tools.disasm import main as disasm_main
from repro.tools.run import main as run_main
from repro.tools.trace import main as trace_main

PROGRAM = """
.data
path:   .asciiz "in.txt"
buf:    .space 32
msg:    .ascii "done\\n"
.text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r7, r3
    li   r3, 1
    mv   r4, r7
    li   r5, buf
    li   r6, 32
    syscall
    li   r3, 2
    li   r4, 0
    li   r5, msg
    li   r6, 5
    syscall
    li   r3, 0
    li   r4, 7
    syscall
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return path


@pytest.fixture
def payload_file(tmp_path):
    path = tmp_path / "payload.bin"
    path.write_bytes(b"external data")
    return path


class TestAsm:
    def test_assemble_to_binary(self, source_file, tmp_path, capsys):
        output = tmp_path / "prog.bin"
        assert asm_main([str(source_file), "-o", str(output)]) == 0
        blob = output.read_bytes()
        assert len(blob) % 4 == 0 and len(blob) > 0
        assert "instructions" in capsys.readouterr().out

    def test_meta_sidecar(self, source_file, tmp_path):
        meta = tmp_path / "prog.json"
        asm_main([str(source_file), "-o", str(tmp_path / "p.bin"),
                  "--meta", str(meta)])
        payload = json.loads(meta.read_text())
        assert "symbols" in payload and "_start" in payload["symbols"]
        assert bytes.fromhex(payload["data"]).endswith(b"done\n")

    def test_listing(self, source_file, tmp_path, capsys):
        asm_main([str(source_file), "-o", str(tmp_path / "p.bin"), "--listing"])
        out = capsys.readouterr().out
        assert "syscall" in out

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate r1\n")
        assert asm_main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        assert asm_main([str(tmp_path / "missing.s")]) == 2


class TestDisasm:
    def test_roundtrip(self, source_file, tmp_path, capsys):
        binary = tmp_path / "prog.bin"
        asm_main([str(source_file), "-o", str(binary)])
        capsys.readouterr()
        assert disasm_main([str(binary)]) == 0
        out = capsys.readouterr().out
        assert "syscall" in out and "0x00001000" in out

    def test_bad_binary(self, tmp_path, capsys):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00\x01\x02")  # not a multiple of 4
        assert disasm_main([str(path)]) == 1


class TestRun:
    def test_plain_run(self, source_file, payload_file, capsys):
        code = run_main(
            [str(source_file), "--file", f"in.txt={payload_file}"]
        )
        assert code == 7
        out = capsys.readouterr().out
        assert "done" in out and "exit code 7" in out

    def test_dift_monitoring(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "dift",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "tainted instructions" in out
        assert "13 tainted bytes" in out

    def test_untainted_flag(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "dift",
             "--file", f"in.txt={payload_file}:untainted"]
        )
        out = capsys.readouterr().out
        assert "0 tainted bytes" in out

    def test_slatch_monitoring(self, source_file, payload_file, capsys):
        run_main(
            [str(source_file), "--monitor", "slatch", "--timeout", "50",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "s-latch" in out and "traps" in out

    def test_budget_exhaustion_exit_code(self, tmp_path, capsys):
        loop = tmp_path / "loop.s"
        loop.write_text("spin: j spin\n")
        assert run_main([str(loop), "--max-steps", "100"]) == 124
        assert "budget exhausted" in capsys.readouterr().out

    def test_bad_file_spec(self, source_file, capsys):
        assert run_main([str(source_file), "--file", "nonsense"]) == 2


class TestTrace:
    def test_trace_marks_tainted_instructions(
        self, source_file, payload_file, capsys
    ):
        assert trace_main(
            [str(source_file), "--file", f"in.txt={payload_file}"]
        ) == 0
        out = capsys.readouterr().out
        assert "+ input 13 bytes" in out
        assert "syscall" in out
        assert "touched taint" in out

    def test_only_tainted_filter(self, source_file, payload_file, capsys):
        trace_main(
            [str(source_file), "--only-tainted",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        body = [
            line for line in out.splitlines()
            if line and line[0].isspace() is False and line.startswith(" ") is False
        ]
        # Every instruction line shown carries the taint marker.
        instruction_lines = [
            line for line in out.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        for line in instruction_lines:
            assert " T " in line

    def test_limit(self, source_file, payload_file, capsys):
        trace_main(
            [str(source_file), "--limit", "3",
             "--file", f"in.txt={payload_file}"]
        )
        out = capsys.readouterr().out
        assert "3 lines shown" in out

    def test_trace_bad_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("bogus r1\n")
        assert trace_main([str(bad)]) == 2
