"""Perf-regression watchdog: format handling, thresholds, CLI gates.

The synthetic cases pin the contract (a 2x slowdown is flagged at the
default 1.5x threshold, noise under the floor is not); the final test
runs the real committed kernel baseline against itself through the
exact CLI invocation CI uses, so the checked-in file can never go
stale-incompatible silently.
"""

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    DEFAULT_THRESHOLD,
    Regression,
    compare,
    extract_means,
    main,
)

BASELINE = Path(__file__).parent.parent / "benchmarks" / "baseline_kernels.json"


def _pytest_payload(**means):
    return {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }


def _runner_payload(**jobs):
    return {
        "jobs": {
            name: {"status": "ok", "from_cache": False, "duration": duration}
            for name, duration in jobs.items()
        }
    }


class TestExtractMeans:
    def test_pytest_benchmark_format(self):
        means = extract_means(_pytest_payload(scalar=0.2, vector=0.01))
        assert means == {"scalar": 0.2, "vector": 0.01}

    def test_runner_report_format(self):
        payload = _runner_payload(a=1.5, b=0.5)
        payload["jobs"]["cached"] = {
            "status": "ok", "from_cache": True, "duration": 0.0,
        }
        assert extract_means(payload) == {"a": 1.5, "b": 0.5}

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            extract_means({"something": "else"})

    def test_entries_without_mean_skipped(self):
        payload = {"benchmarks": [{"name": "x", "stats": {}}]}
        assert extract_means(payload) == {}


class TestCompare:
    def test_two_x_slowdown_flagged(self):
        regressions, compared = compare(
            {"kernel": 0.1}, {"kernel": 0.2}, threshold=DEFAULT_THRESHOLD
        )
        assert compared == ["kernel"]
        (regression,) = regressions
        assert regression.name == "kernel"
        assert regression.ratio == pytest.approx(2.0)
        assert "2.00x" in regression.describe()

    def test_slowdown_within_threshold_passes(self):
        regressions, _ = compare({"kernel": 0.1}, {"kernel": 0.12})
        assert regressions == []

    def test_speedup_passes(self):
        regressions, _ = compare({"kernel": 0.2}, {"kernel": 0.05})
        assert regressions == []

    def test_min_seconds_floor_mutes_tiny_timings(self):
        regressions, _ = compare(
            {"jitter": 1e-6}, {"jitter": 5e-6}, min_seconds=1e-3
        )
        assert regressions == []

    def test_floor_does_not_mute_slow_entries(self):
        regressions, _ = compare(
            {"real": 0.5}, {"real": 2.0}, min_seconds=1e-3
        )
        assert len(regressions) == 1

    def test_only_common_entries_compared(self):
        regressions, compared = compare(
            {"a": 0.1, "old": 0.1}, {"a": 0.1, "new": 9.9}
        )
        assert compared == ["a"]
        assert regressions == []

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare({"a": 1.0}, {"a": 1.0}, threshold=1.0)

    def test_normalize_cancels_machine_speed(self):
        baseline = {"scalar": 0.2, "vector": 0.01}
        slower_machine = {"scalar": 0.4, "vector": 0.02}  # uniformly 2x
        regressions, compared = compare(
            baseline, slower_machine, normalize_by="scalar"
        )
        assert compared == ["vector"]
        assert regressions == []

    def test_normalize_still_catches_relative_regression(self):
        baseline = {"scalar": 0.2, "vector": 0.01}
        vector_only_regression = {"scalar": 0.2, "vector": 0.04}
        regressions, _ = compare(
            baseline, vector_only_regression, normalize_by="scalar"
        )
        (regression,) = regressions
        assert regression.name == "vector"
        assert regression.ratio == pytest.approx(4.0)

    def test_normalize_missing_reference_raises(self):
        with pytest.raises(ValueError, match="not present"):
            compare({"a": 1.0}, {"a": 1.0}, normalize_by="ghost")


class TestCli:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _pytest_payload(k=0.1))
        cur = self._write(tmp_path / "c.json", _pytest_payload(k=0.11))
        assert main(["--baseline", base, "--current", cur]) == 0
        assert "ok: no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _pytest_payload(k=0.1))
        cur = self._write(tmp_path / "c.json", _pytest_payload(k=0.2))
        assert main(["--baseline", base, "--current", cur]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        cur = self._write(tmp_path / "c.json", _pytest_payload(k=0.1))
        status = main([
            "--baseline", str(tmp_path / "missing.json"), "--current", cur,
        ])
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_disjoint_entries_exit_two(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _pytest_payload(old=0.1))
        cur = self._write(tmp_path / "c.json", _pytest_payload(new=0.1))
        assert main(["--baseline", base, "--current", cur]) == 2
        assert "no common" in capsys.readouterr().err

    def test_mixed_formats_compare(self, tmp_path):
        base = self._write(tmp_path / "b.json", _runner_payload(job=1.0))
        cur = self._write(tmp_path / "c.json", _pytest_payload(job=0.9))
        assert main(["--baseline", base, "--current", cur]) == 0


class TestCommittedBaseline:
    def test_baseline_parses(self):
        means = extract_means(json.loads(BASELINE.read_text()))
        assert "test_bench_scalar_replay" in means
        assert "test_bench_vector_replay" in means
        assert all(mean > 0 for mean in means.values())

    def test_baseline_against_itself_passes_ci_invocation(self):
        status = main([
            "--baseline", str(BASELINE),
            "--current", str(BASELINE),
            "--normalize-by", "test_bench_scalar_replay",
        ])
        assert status == 0
