"""Delta-debugging shrinker (repro.check.shrink)."""

from repro.check.generator import generate_program
from repro.check.mutation import BuggyLatchModule
from repro.check.oracle import check_program
from repro.check.shrink import ddmin, make_predicate, shrink_program


class TestDdmin:
    def test_single_culprit(self):
        items = list(range(20))
        result = ddmin(items, lambda subset: 13 in subset)
        assert result == [13]

    def test_pair_of_culprits(self):
        items = list(range(16))
        result = ddmin(items, lambda subset: 3 in subset and 11 in subset)
        assert sorted(result) == [3, 11]

    def test_preserves_order(self):
        items = ["a", "b", "c", "d", "e"]
        result = ddmin(items, lambda s: "d" in s and "b" in s)
        assert result == ["b", "d"]

    def test_already_minimal(self):
        assert ddmin(["x"], lambda s: "x" in s) == ["x"]


class TestShrinkProgram:
    def test_shrinks_mutant_failure_to_minimum(self):
        # Find a seed the planted bug fails on, then shrink it.
        for seed in range(50):
            cp = generate_program(seed)
            report = check_program(
                cp, paths=("core",), latch_cls=BuggyLatchModule
            )
            if not report.ok:
                break
        else:
            raise AssertionError("no failing seed for the mutant")
        violation = report.violations[0]
        shrunk = shrink_program(
            cp, violation, paths=("core",), latch_cls=BuggyLatchModule
        )
        assert len(shrunk.body) <= len(cp.body)
        assert shrunk.instruction_count() <= 25
        # The shrunk program still reproduces the same violation kind...
        predicate = make_predicate(
            violation, paths=("core",), latch_cls=BuggyLatchModule
        )
        assert predicate(shrunk)
        # ...and is 1-minimal: removing any one remaining op loses it.
        for index in range(len(shrunk.body)):
            reduced = shrunk.with_body(
                shrunk.body[:index] + shrunk.body[index + 1 :]
            )
            assert not predicate(reduced) or not reduced.body

    def test_non_reproducing_input_returned_unchanged(self):
        cp = generate_program(0)
        report = check_program(cp, paths=("core",), latch_cls=BuggyLatchModule)
        assert not report.ok
        # Predicate is built from the violation, but the candidate passes
        # on the *real* module — shrink must refuse to touch it.
        shrunk = shrink_program(cp, report.violations[0], paths=("core",))
        assert shrunk == cp
