"""End-to-end server behaviour: bit-identity, isolation, overload.

Every test runs a real :class:`TaintServer` on an ephemeral port via
:func:`running_server` and drives it with the blocking client — the
same path ``repro-serve selftest`` exercises.
"""

import socket
import struct
import time

import pytest

from repro.obs import MetricsRegistry, SpanTracer, Tracer
from repro.obs.spans import TraceContext
from repro.serve import (
    RetryExhausted,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantLimits,
    local_reference,
    record_trace,
    running_server,
)
from repro.serve.protocol import canonical_json, encode_frame
from repro.workloads import programs

SCENARIOS = ("checksum", "file_filter", "substitution_cipher")


def _factory(name):
    builder = getattr(programs, name)
    return lambda: builder().make_cpu()


@pytest.fixture(scope="module")
def traces():
    """Shared wire traces + local references (recorded once)."""
    prepared = {}
    for name in SCENARIOS:
        factory = _factory(name)
        prepared[name] = (record_trace(factory), local_reference(factory))
    return prepared


def _no_sleep(_seconds):
    pass


class TestBitIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_served_stream_matches_local_platch(self, traces, scenario):
        events, reference = traces[scenario]
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="ident") as client:
                result = client.check_trace(events)
        assert canonical_json(result.signature) == canonical_json(
            reference["signature"]
        )
        assert canonical_json(result.stats) == canonical_json(
            reference["stats"]
        )
        assert result.halted

    def test_batch_size_does_not_change_the_verdict(self, traces):
        events, reference = traces["checksum"]
        results = []
        with running_server() as (_server, (host, port)):
            for batch_size in (1, 7, 512):
                with ServeClient(host, port, tenant="chunks") as client:
                    results.append(
                        client.check_trace(events, batch_size=batch_size)
                    )
        for result in results:
            assert canonical_json(result.signature) == canonical_json(
                reference["signature"]
            )
            assert canonical_json(result.stats) == canonical_json(
                reference["stats"]
            )

    JOB_SOURCE = """
    .data
path:   .asciiz "job.bin"
buf:    .space 32
    .text
_start:
    li   r3, 3
    li   r4, path
    syscall
    mv   r10, r3
    li   r3, 1
    mv   r4, r10
    li   r5, buf
    li   r6, 32
    syscall
    li   r8, buf
    lbu  r9, 0(r8)
    addi r9, r9, 1
    sw   r9, 4(r8)
    li   r3, 0
    mv   r4, r9
    syscall
"""

    def _job_cpu(self):
        from repro.isa.assembler import assemble
        from repro.machine.cpu import CPU
        from repro.machine.devices import DeviceTable, VirtualFile

        devices = DeviceTable()
        devices.register_file(
            VirtualFile("job.bin", b"\x05taint", tainted=True)
        )
        return CPU(assemble(self.JOB_SOURCE), devices=devices)

    def test_submitted_job_matches_local_platch(self):
        # Whole-job mode: server assembles and runs the program itself.
        import base64

        reference = local_reference(self._job_cpu)
        job = {
            "source": self.JOB_SOURCE,
            "files": [{
                "name": "job.bin",
                "data": base64.b64encode(b"\x05taint").decode("ascii"),
                "tainted": True,
            }],
        }
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="jobs") as client:
                result = client.submit_job(job)
        assert canonical_json(result.signature) == canonical_json(
            reference["signature"]
        )
        assert result.halted

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_submitted_columnar_trace_matches_local_platch(
        self, traces, scenario
    ):
        # Whole-trace mode: the client records once on its machine and
        # ships the .ltrace container; no assembly or CPU on the server.
        import base64

        from repro.trace.record import TraceRecorder

        cpu = _factory(scenario)()
        recorder = TraceRecorder(name=scenario)
        cpu.attach(recorder)
        cpu.run(200_000)
        _, reference = traces[scenario]
        job = {
            "trace": base64.b64encode(recorder.to_bytes()).decode("ascii")
        }
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="coljobs") as client:
                result = client.submit_job(job)
        assert canonical_json(result.signature) == canonical_json(
            reference["signature"]
        )
        assert result.halted
        assert result.stats is not None

    def test_corrupt_trace_is_a_protocol_error_not_a_crash(self):
        import base64

        from repro.serve import ServeError

        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="coljobs") as client:
                with pytest.raises(ServeError, match="bad trace"):
                    client.submit_job({
                        "trace": base64.b64encode(
                            b"LTRCgarbage" + b"\0" * 64
                        ).decode("ascii"),
                    })
                with pytest.raises(ServeError, match="trace"):
                    client.submit_job({"trace": "!!! not base64 !!!"})
                # The connection survives: protocol errors are answers.
                assert client.ping()


class TestTenantIsolation:
    def test_interleaved_tenants_never_share_taint(self, traces):
        # Two tenants stream different workloads through one server,
        # interleaving batch by batch on separate connections.  Each
        # must get exactly the result of its own trace: any cross-tenant
        # leak of shadow memory, TRF state, or alerts breaks the
        # signature comparison.
        events_a, ref_a = traces["checksum"]
        events_b, ref_b = traces["substitution_cipher"]
        with running_server() as (server, (host, port)):
            a = ServeClient(host, port, tenant="alpha")
            b = ServeClient(host, port, tenant="beta")
            try:
                stream_a, _ = a.open_stream()
                stream_b, _ = b.open_stream()
                index_a = index_b = 0
                while index_a < len(events_a) or index_b < len(events_b):
                    if index_a < len(events_a):
                        a.send_events(
                            stream_a, events_a[index_a:index_a + 32]
                        )
                        index_a += 32
                    if index_b < len(events_b):
                        b.send_events(
                            stream_b, events_b[index_b:index_b + 32]
                        )
                        index_b += 32
                result_a = a.close_stream(stream_a)
                result_b = b.close_stream(stream_b)
            finally:
                a.close()
                b.close()
            snapshot = server.snapshot()
        assert canonical_json(result_a["signature"]) == canonical_json(
            ref_a["signature"]
        )
        assert canonical_json(result_b["signature"]) == canonical_json(
            ref_b["signature"]
        )
        # Metrics land in per-tenant namespaces, not on shared names.
        assert snapshot.get("serve.tenant.alpha.results") == 1
        assert snapshot.get("serve.tenant.beta.results") == 1
        assert snapshot.get(
            "serve.tenant.alpha.pipeline.events.enqueued"
        ) is not None
        assert snapshot.get(
            "serve.tenant.beta.pipeline.events.enqueued"
        ) is not None

    def test_same_tenant_parallel_streams_are_private(self, traces):
        # Even within one tenant, every stream owns its structures.
        events, reference = traces["checksum"]
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="gamma") as client:
                first, _ = client.open_stream()
                second, _ = client.open_stream()
                client.send_events(first, events)
                client.send_events(second, events[:50])
                result_first = client.close_stream(first)
                result_second = client.close_stream(second)
        assert canonical_json(result_first["signature"]) == canonical_json(
            reference["signature"]
        )
        # The truncated stream saw 50 events, not the full trace.
        assert result_second["events"] == 50
        assert result_first["signature"] != result_second["signature"]


class TestOverload:
    def test_inflight_full_retries_then_admits_after_release(self):
        # Fill the 1-slot table with an idle stream from one tenant;
        # a second tenant (bucket full, totally idle) must get RETRY
        # with reason=inflight, then admit once the slot frees.
        config = ServeConfig(max_inflight=1)
        with running_server(config) as (server, (host, port)):
            holder = ServeClient(host, port, tenant="holder")
            waiter = ServeClient(
                host, port, tenant="waiter", max_retries=2,
                sleep=_no_sleep,
            )
            try:
                held, _ = holder.open_stream()
                with pytest.raises(RetryExhausted) as excinfo:
                    waiter.open_stream()
                assert excinfo.value.reason == "inflight"
                holder.close_stream(held)
                stream, retries = waiter.open_stream()
                assert stream
                snapshot = server.snapshot()
                assert snapshot.get(
                    "serve.tenant.waiter.rejected.inflight"
                ) >= 2
            finally:
                holder.close()
                waiter.close()

    def test_zero_capacity_tenant_always_retry_never_error(self, traces):
        config = ServeConfig(tenant_overrides={
            "paused": TenantLimits(rate=0.0, burst=0.0),
        })
        with running_server(config) as (server, (host, port)):
            client = ServeClient(
                host, port, tenant="paused", max_retries=3,
                sleep=_no_sleep,
            )
            try:
                # The welcome already advertises no admissible batch.
                assert client.limits["max_batch"] == 0
                with pytest.raises(RetryExhausted) as excinfo:
                    client.open_stream()
                assert excinfo.value.reason == "rate"
                # check_trace refuses up front rather than spinning.
                with pytest.raises(ServeError):
                    client.check_trace(traces["checksum"][0])
            finally:
                client.close()
            snapshot = server.snapshot()
            assert snapshot.get("serve.tenant.paused.rejected.rate") >= 4
            assert snapshot.get("serve.tenant.paused.results") == 0

    def test_event_burst_beyond_bucket_gets_retry_not_drop(self, traces):
        events, reference = traces["checksum"]
        # Burst smaller than the trace: the client must hit RETRY at
        # least once and still land a bit-identical result (no drops).
        # Refilling one 64-event batch takes ~13ms at this rate — far
        # slower than the local round trip, so RETRY must fire.
        config = ServeConfig(default_limits=TenantLimits(
            rate=5_000.0, burst=64.0,
        ))
        with running_server(config) as (server, (host, port)):
            with ServeClient(host, port, tenant="bursty") as client:
                result = client.check_trace(events)
            snapshot = server.snapshot()
        assert result.retries > 0
        assert snapshot.get("serve.tenant.bursty.rejected.rate") > 0
        assert canonical_json(result.signature) == canonical_json(
            reference["signature"]
        )
        assert canonical_json(result.stats) == canonical_json(
            reference["stats"]
        )


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestDisconnects:
    def test_client_vanishing_mid_batch_releases_everything(self, traces):
        events, _reference = traces["checksum"]
        with running_server() as (server, (host, port)):
            raw = socket.create_connection((host, port), timeout=5.0)
            raw.sendall(encode_frame(
                {"type": "hello", "proto": 1, "tenant": "ghost"}
            ))
            raw.sendall(encode_frame({"type": "stream_open"}))
            # Wait for welcome + stream_ack so the slot is truly held.
            from repro.serve.protocol import FrameDecoder

            decoder = FrameDecoder()
            replies = []
            while len(replies) < 2:
                data = raw.recv(65536)
                assert data, "server closed during handshake"
                replies.extend(decoder.feed(data))
            assert replies[1]["type"] == "stream_ack"
            stream_id = replies[1]["stream"]
            assert len(server.inflight) == 1
            # Half an events frame: a complete header announcing more
            # bytes than we will ever send, then vanish.
            frame = encode_frame(
                {"type": "events", "stream": stream_id,
                 "batch": events[:64]}
            )
            raw.sendall(frame[:len(frame) // 2])
            raw.close()

            # The handler must notice, drain the session idempotently,
            # and give the in-flight slot back.
            assert _wait_until(lambda: len(server.inflight) == 0)
            snapshot = server.snapshot()
            assert snapshot.get("serve.tenant.ghost.disconnects") == 1

            # The server stays fully serviceable afterwards.
            with ServeClient(host, port, tenant="ghost") as client:
                result = client.check_trace(events)
            assert result.halted

    def test_double_close_and_unknown_stream_are_clean_errors(self, traces):
        events, _ = traces["checksum"]
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="dup") as client:
                stream, _ = client.open_stream()
                client.send_events(stream, events[:10])
                client.close_stream(stream)
                # Closed streams are forgotten: further traffic errors
                # without wedging the connection.
                with pytest.raises(ServeError):
                    client.close_stream(stream)
                with pytest.raises(ServeError):
                    client.send_events(stream, events[:10])
                assert client.ping()


class TestQueriesAndProtocol:
    def test_online_query_reflects_acknowledged_events(self, traces):
        events, reference = traces["checksum"]
        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="q") as client:
                stream, _ = client.open_stream()
                client.send_events(stream, events)
                tainted = sorted(reference["signature"]["tainted"])
                assert tainted, "scenario must taint something"
                answer = client.query(stream, tainted[0], 1)
                assert answer["tainted"] is True
                assert answer["tags"][0]
                miss = client.query(stream, 0x7FF0, 4)
                assert miss["tainted"] is False
                # Querying does not perturb the final signature.
                result = client.close_stream(stream)
        assert canonical_json(result["signature"]) == canonical_json(
            reference["signature"]
        )

    def test_protocol_violations_answer_errors(self):
        with running_server() as (_server, (host, port)):
            raw = socket.create_connection((host, port), timeout=5.0)
            decoder_buf = []

            def roundtrip(message):
                from repro.serve.protocol import FrameDecoder

                raw.sendall(encode_frame(message))
                decoder = FrameDecoder()
                while True:
                    data = raw.recv(65536)
                    assert data, "server closed unexpectedly"
                    messages = decoder.feed(data)
                    if messages:
                        return messages[0]

            # Requests before hello are refused.
            reply = roundtrip({"type": "stream_open"})
            assert reply["type"] == "error" and reply["code"] == "state"
            # Wrong protocol revision.
            reply = roundtrip({"type": "hello", "proto": 99, "tenant": "x"})
            assert reply["type"] == "error" and reply["code"] == "proto"
            raw.close()

        with running_server() as (_server, (host, port)):
            with ServeClient(host, port, tenant="p") as client:
                # Unknown message type.
                client._send({"type": "warp"})
                assert client._recv()["code"] == "type"
                # Unknown pipeline knob is rejected at stream-open.
                client._send({"type": "stream_open",
                              "pipeline": {"warp_factor": 9}})
                assert client._recv()["code"] == "config"
                # Oversized batch (beyond the server's max_batch).
                stream, _ = client.open_stream()
                big = [{"k": "h", "i": index} for index in range(513)]
                client._send({"type": "events", "stream": stream,
                              "batch": big})
                assert client._recv()["code"] == "events"
                assert client.ping()

    def test_invalid_tenant_name_refused_at_hello(self):
        with running_server() as (_server, (host, port)):
            with pytest.raises(ServeError):
                ServeClient(host, port, tenant="no spaces allowed")


class TestSpanReconstruction:
    def test_server_spans_parent_onto_client_context(self, traces):
        # The client opens a span, propagates its TraceContext through
        # hello, and the server's serve.stream span must appear as a
        # child in the merged record set — the repro-trace contract.
        events, _ = traces["checksum"]
        client_sink = Tracer()
        client_spans = SpanTracer(client_sink)
        server_sink = Tracer()
        server_spans = SpanTracer(server_sink)

        with running_server(spans=server_spans) as (_server, (host, port)):
            with client_spans.span("client.check") as handle:
                wire = client_spans.context(handle).to_wire()
                with ServeClient(
                    host, port, tenant="traced", trace_context=wire
                ) as client:
                    client.check_trace(events)

        merged = client_sink.records() + server_sink.records()
        begins = {
            record["name"]: record
            for record in merged if record["type"] == "span_begin"
        }
        assert "serve.stream" in begins
        client_span = begins["client.check"]
        server_span = begins["serve.stream"]
        assert server_span["parent"] == client_span["span"]
        closes = [
            record for record in merged
            if record["type"] == "span_close"
            and record["name"] == "serve.stream"
        ]
        assert closes and closes[0]["outcome"] == "result"

    def test_retry_events_are_traced(self):
        server_spans = SpanTracer(sink := Tracer())
        config = ServeConfig(tenant_overrides={
            "paused": TenantLimits(rate=0.0, burst=0.0),
        })
        with running_server(config, spans=server_spans) as (_s, (host, port)):
            client = ServeClient(
                host, port, tenant="paused", max_retries=1,
                sleep=_no_sleep,
            )
            try:
                with pytest.raises(RetryExhausted):
                    client.open_stream()
            finally:
                client.close()
        retries = [
            record for record in sink.records()
            if record["type"] == "event" and record["name"] == "serve.retry"
        ]
        assert retries
        assert retries[0]["tenant"] == "paused"
        assert retries[0]["reason"] == "rate"


class TestServerLifecycle:
    def test_registry_survives_two_servers_in_one_process(self):
        # Two servers sharing one registry must not collide on metric
        # registration (the satellite-1 regression: second pipeline in
        # one process).
        registry = MetricsRegistry()
        with running_server(registry=registry) as (_a, (host_a, port_a)):
            with ServeClient(host_a, port_a, tenant="one") as client:
                assert client.ping()
        with running_server(registry=registry) as (_b, (host_b, port_b)):
            with ServeClient(host_b, port_b, tenant="one") as client:
                assert client.ping()

    def test_config_from_env(self):
        env = {
            "REPRO_SERVE_HOST": "127.0.0.1",
            "REPRO_SERVE_PORT": "0",
            "REPRO_SERVE_MAX_INFLIGHT": "7",
            "REPRO_SERVE_RATE": "123.0",
            "REPRO_SERVE_BURST": "456.0",
            "REPRO_SERVE_MAX_BATCH": "99",
        }
        config = ServeConfig.from_env(env)
        assert config.max_inflight == 7
        assert config.max_batch == 99
        assert config.default_limits.rate == 123.0
        assert config.default_limits.burst == 456.0

    def test_frame_length_header_is_bounded(self):
        with running_server() as (_server, (host, port)):
            raw = socket.create_connection((host, port), timeout=5.0)
            raw.sendall(struct.pack(">I", 1 << 30))
            chunks = b""
            while True:
                data = raw.recv(65536)
                if not data:
                    break
                chunks += data
            raw.close()
        assert b"exceeds" in chunks
