"""Golden-trace regression tests.

The ``tests/golden/`` directory pins committed workload artefacts and
the exact replay results they must produce (see ``tests/golden/regen.py``
for provenance).  These tests serve two purposes:

* **cross-version drift** — a change to the workload generator, the
  cache models, or the kernels that moves any published counter fails
  loudly against numbers produced by an earlier build, not just against
  code in the same working tree;
* **storage hardening** — the committed ``corrupt.npz`` is a real
  truncated archive on disk, so the :class:`StorageFormatError` path is
  exercised against genuine zip corruption rather than a synthetic
  monkeypatched error.

Both kernel backends replay every golden trace and must match the
golden snapshot *and* each other byte for byte.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.temporal import epoch_duration_profile
from repro.hlatch.baseline import run_baseline
from repro.hlatch.system import HLatchSystem
from repro.kernels import replay_hlatch_window
from repro.workloads.storage import (
    StorageFormatError,
    load_access_trace,
    load_epoch_stream,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
WORKLOADS = ("gcc", "curl")
BACKENDS = ("scalar", "vector")

EXPECTED = json.loads((GOLDEN_DIR / "expected.json").read_text())


def _trace_path(name):
    return GOLDEN_DIR / f"{name}_w2000_s0.npz"


def _replay_snapshot(trace, backend):
    system = HLatchSystem()
    system.load_taint(trace.layout)
    if backend == "vector":
        replay_hlatch_window(
            system, trace.addresses, trace.sizes, trace.is_write
        )
    else:
        for index in range(trace.access_count):
            system.access(
                int(trace.addresses[index]),
                int(trace.sizes[index]),
                bool(trace.is_write[index]),
            )
    return system.snapshot()


class TestGoldenReplay:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hlatch_snapshot_matches_golden(self, name, backend):
        trace = load_access_trace(_trace_path(name))
        snapshot = _replay_snapshot(trace, backend)
        golden = EXPECTED[name]["hlatch_snapshot"]
        assert snapshot.to_dict()["metrics"] == golden["metrics"]

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_baseline_matches_golden(self, name, backend):
        trace = load_access_trace(_trace_path(name))
        report = run_baseline(trace, backend=backend)
        golden = EXPECTED[name]["baseline"]
        assert report.accesses == golden["accesses"]
        assert report.misses == golden["misses"]

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_epoch_profile_matches_golden(self, name, backend):
        stream = load_epoch_stream(GOLDEN_DIR / f"{name}_epochs_s0.npz")
        profile = epoch_duration_profile(stream, backend=backend)
        golden = EXPECTED[name]["epoch_profile"]
        # The golden floats were serialised through json, so comparing
        # their round-trips checks exact bit patterns, not tolerances.
        assert {str(k): v for k, v in profile.items()} == golden

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_trace_roundtrip_metadata(self, name):
        trace = load_access_trace(_trace_path(name))
        assert trace.name == name
        # The window argument counts instructions; accesses are a subset.
        assert trace.total_instructions == 2_000
        assert 0 < trace.access_count <= 2_000
        assert trace.layout.extents  # golden workloads carry taint


class TestStorageCorruption:
    def test_truncated_archive_raises_storage_error(self):
        path = GOLDEN_DIR / "corrupt.npz"
        with pytest.raises(StorageFormatError) as excinfo:
            load_access_trace(path)
        # The error names the offending file so a failed sweep is
        # actionable without a debugger.
        assert "corrupt.npz" in str(excinfo.value)

    def test_wrong_kind_raises_storage_error(self):
        # An epoch-stream archive is a valid .npz but the wrong kind.
        path = GOLDEN_DIR / "gcc_epochs_s0.npz"
        with pytest.raises(StorageFormatError, match="access-trace"):
            load_access_trace(path)

    def test_missing_file_is_not_masked(self):
        with pytest.raises(FileNotFoundError):
            load_access_trace(GOLDEN_DIR / "does_not_exist.npz")
