"""Golden-program tests: real algorithms on the toy machine.

Each program computes something with a known answer, exercising loops,
subroutines, the stack, and memory addressing together — the substrate
confidence tests that back every simulation above it.
"""

import pytest

from repro.isa.assembler import assemble
from repro.machine.cpu import CPU


def run(source: str, max_steps: int = 500_000) -> CPU:
    cpu = CPU(assemble(source))
    cpu.run(max_steps)
    assert cpu.halted, "program did not halt"
    return cpu


class TestArithmeticPrograms:
    def test_fibonacci_iterative(self):
        cpu = run("""
_start:
    li   r4, 20          # n
    li   r5, 0           # fib(0)
    li   r6, 1           # fib(1)
loop:
    beqz r4, done
    add  r7, r5, r6
    mv   r5, r6
    mv   r6, r7
    addi r4, r4, -1
    j    loop
done:
    li   r3, 0
    mv   r4, r5
    syscall
""")
        assert cpu.exit_code == 6765  # fib(20)

    def test_gcd_euclid(self):
        cpu = run("""
_start:
    li   r4, 1071
    li   r5, 462
loop:
    beqz r5, done
    rem  r6, r4, r5
    mv   r4, r5
    mv   r5, r6
    j    loop
done:
    li   r3, 0
    syscall
""")
        assert cpu.exit_code == 21

    def test_collatz_steps(self):
        cpu = run("""
_start:
    li   r4, 27          # notoriously long trajectory
    li   r5, 0           # step counter
loop:
    li   r6, 1
    beq  r4, r6, done
    andi r7, r4, 1
    beqz r7, even
    li   r8, 3
    mul  r4, r4, r8
    addi r4, r4, 1
    j    count
even:
    srli r4, r4, 1
count:
    addi r5, r5, 1
    j    loop
done:
    li   r3, 0
    mv   r4, r5
    syscall
""")
        assert cpu.exit_code == 111

    def test_integer_sqrt(self):
        cpu = run("""
_start:
    li   r4, 1000000     # find floor(sqrt(x))
    li   r5, 0
loop:
    addi r6, r5, 1
    mul  r7, r6, r6
    bltu r4, r7, done    # (r5+1)^2 > x
    mv   r5, r6
    j    loop
done:
    li   r3, 0
    mv   r4, r5
    syscall
""")
        assert cpu.exit_code == 1000


class TestMemoryPrograms:
    def test_bubble_sort(self):
        source = """
.data
arr:    .word 9, 3, 7, 1, 8, 2, 6, 4, 5, 0
.text
_start:
    li   r4, 10          # n
    li   r14, arr
outer:
    li   r5, 1           # swapped = false -> use as flag
    li   r6, 0           # i
    li   r5, 0
inner:
    addi r7, r4, -1
    bge  r6, r7, check
    slli r8, r6, 2
    add  r8, r8, r14
    lw   r9, 0(r8)
    lw   r10, 4(r8)
    bge  r10, r9, next   # already ordered
    sw   r10, 0(r8)
    sw   r9, 4(r8)
    li   r5, 1           # swapped
next:
    addi r6, r6, 1
    j    inner
check:
    bnez r5, outer
    # checksum: sum(arr[i] * (i+1))
    li   r6, 0
    li   r9, 0
sum:
    bge  r6, r4, done
    slli r8, r6, 2
    add  r8, r8, r14
    lw   r10, 0(r8)
    addi r11, r6, 1
    mul  r10, r10, r11
    add  r9, r9, r10
    addi r6, r6, 1
    j    sum
done:
    li   r3, 0
    mv   r4, r9
    syscall
"""
        cpu = run(source)
        # sorted arr = 0..9; checksum = sum(i * (i+1)) for i in 0..9
        assert cpu.exit_code == sum(i * (i + 1) for i in range(10))

    def test_string_reverse(self):
        source = """
.data
text:   .asciiz "reproduction"
out:    .space 16
.text
_start:
    li   r4, text
    li   r5, 0           # length
strlen:
    add  r6, r4, r5
    lbu  r7, 0(r6)
    beqz r7, copy
    addi r5, r5, 1
    j    strlen
copy:
    li   r8, out
    li   r6, 0
rev:
    bge  r6, r5, done
    sub  r7, r5, r6
    addi r7, r7, -1
    add  r9, r4, r7
    lbu  r10, 0(r9)
    add  r9, r8, r6
    sb   r10, 0(r9)
    addi r6, r6, 1
    j    rev
done:
    li   r3, 0
    li   r4, 0
    syscall
"""
        cpu = run(source)
        out = cpu.memory.read_cstring(
            cpu.program.address_of("out")
        )
        assert out == b"noitcudorper"


class TestSubroutinePrograms:
    def test_recursive_factorial_with_stack(self):
        source = """
_start:
    li   r4, 10
    call fact
    li   r3, 0
    mv   r4, r5
    syscall

fact:                     # r4 = n -> r5 = n!
    li   r6, 2
    bge  r4, r6, recurse
    li   r5, 1
    ret
recurse:
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   r4, 4(sp)
    addi r4, r4, -1
    call fact
    lw   r4, 4(sp)
    lw   ra, 0(sp)
    addi sp, sp, 8
    mul  r5, r5, r4
    ret
"""
        cpu = run(source)
        assert cpu.exit_code == 3628800

    def test_mutual_calls_preserve_stack_discipline(self):
        source = """
_start:
    li   r4, 6
    call is_even          # parity of 6 -> 1
    mv   r9, r5
    li   r4, 7
    call is_even          # parity of 7 -> 0
    slli r9, r9, 1
    or   r9, r9, r5       # encode both answers
    li   r3, 0
    mv   r4, r9
    syscall

is_even:                  # r4 = n -> r5 = (n % 2 == 0)
    beqz r4, yes
    addi sp, sp, -4
    sw   ra, 0(sp)
    addi r4, r4, -1
    call is_odd
    lw   ra, 0(sp)
    addi sp, sp, 4
    ret
yes:
    li   r5, 1
    ret

is_odd:                   # r4 = n -> r5 = (n % 2 == 1)
    beqz r4, no
    addi sp, sp, -4
    sw   ra, 0(sp)
    addi r4, r4, -1
    call is_even
    lw   ra, 0(sp)
    addi sp, sp, 4
    ret
no:
    li   r5, 0
    ret
"""
        cpu = run(source)
        assert cpu.exit_code == 0b10
