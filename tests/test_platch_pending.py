"""Pending-update FIFO tests (the Section 5.2 false-negative guard)."""

import pytest
from hypothesis import given, strategies as st

from repro.platch.pending import PendingUpdateTracker


class TestBasics:
    def test_empty_covers_nothing(self):
        tracker = PendingUpdateTracker()
        assert not tracker.covers(0x1000, 4)
        assert len(tracker) == 0

    def test_push_makes_range_pending(self):
        tracker = PendingUpdateTracker()
        tracker.push(0x1000, 4)
        assert tracker.covers(0x1000, 1)
        assert tracker.covers(0x1003, 1)
        assert not tracker.covers(0x1004, 1)

    def test_overlap_detection(self):
        tracker = PendingUpdateTracker()
        tracker.push(0x1000, 4)
        assert tracker.covers(0x0FFE, 4)  # straddles the start
        assert not tracker.covers(0x0FFE, 2)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PendingUpdateTracker(capacity=0)


class TestRetirement:
    def test_retire_in_order(self):
        tracker = PendingUpdateTracker()
        first = tracker.push(0x1000, 4)
        second = tracker.push(0x2000, 4)
        assert tracker.retire(first) == 1
        assert not tracker.covers(0x1000, 4)
        assert tracker.covers(0x2000, 4)
        assert tracker.retire(second) == 1

    def test_retire_drains_head_run(self):
        tracker = PendingUpdateTracker()
        tracker.push(0x1000, 4)
        tracker.push(0x2000, 4)
        last = tracker.push(0x3000, 4)
        assert tracker.retire(last) == 3
        assert len(tracker) == 0

    def test_retire_callback_invalidates_lines(self):
        retired = []
        tracker = PendingUpdateTracker(
            on_retire=lambda address, size: retired.append((address, size))
        )
        sequence = tracker.push(0x1000, 8)
        tracker.retire(sequence)
        assert retired == [(0x1000, 8)]

    def test_retire_all(self):
        tracker = PendingUpdateTracker()
        for offset in range(5):
            tracker.push(0x1000 + offset * 16, 4)
        assert tracker.retire_all() == 5
        assert tracker.retire_all() == 0


class TestBackpressure:
    def test_full_fifo_stalls(self):
        tracker = PendingUpdateTracker(capacity=2)
        assert tracker.push(0, 4) is not None
        assert tracker.push(16, 4) is not None
        assert tracker.push(32, 4) is None
        assert tracker.stalls == 1
        tracker.retire_all()
        assert tracker.push(32, 4) is not None

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFF),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=64,
        )
    )
    def test_conservative_coverage_property(self, operations):
        """While pending, every pushed byte is covered (no false
        negatives from queue lag)."""
        tracker = PendingUpdateTracker(capacity=128)
        for address, size in operations:
            tracker.push(address, size)
        for address, size in operations:
            assert tracker.covers(address, size)
        tracker.retire_all()
        for address, size in operations:
            assert not tracker.covers(address, size)
